//! The forwarding graph against the raw stage structs: identical
//! decision streams (admitted routes + wire sequence numbers, reorder
//! events, paced ACKs, delay-equalizer holds) under the same seeds, and
//! the PR 5 allocation discipline — the graph's steady state must not
//! allocate per packet (the pool's growth counter freezes after warm-up).
//!
//! The *simulator-level* gate lives in `crates/sim/tests/equivalence.rs`
//! (byte-identical `SimReport`s + telemetry manifests over the seeded
//! corpus); this one isolates the datapath crate itself.

use empower_datapath::{
    AckCollector, AdmitOutcome, DatapathConfig, DelayEqConfig, FlowDatapath, IfaceId, Outbox,
    PktPool, ReorderConfig, ReorderEvent, RouteChoice, SchedulerConfig, SourceRoute,
};
use empower_model::rng::{SeedableRng, StdRng};

fn route(ids: &[u16]) -> SourceRoute {
    let hops: Vec<IfaceId> = ids.iter().map(|&i| IfaceId(i)).collect();
    SourceRoute::new(&hops).unwrap()
}

fn routes() -> Vec<SourceRoute> {
    vec![route(&[1, 2]), route(&[3, 4])]
}

fn sched_cfg() -> SchedulerConfig {
    SchedulerConfig::for_routes(2).initial_rates(&[3.0, 5.0])
}

#[test]
fn graph_decisions_match_the_raw_stage_structs() {
    let cfg = DatapathConfig::for_routes(2).scheduler(sched_cfg()).with_delay_eq();
    let mut dp = FlowDatapath::new(&cfg, routes(), None);
    let mut raw_sched = sched_cfg().build();
    let mut raw_reorder = ReorderConfig::for_routes(2).build();
    let mut raw_acks = AckCollector::new(2);
    let mut raw_eq = DelayEqConfig::for_routes(2).build();

    // Same seed, same offered load: the full (route, seq) admission
    // stream must match draw for draw.
    let mut rng_graph = StdRng::seed_from_u64(99);
    let mut rng_raw = StdRng::seed_from_u64(99);
    let mut pool = PktPool::new();
    let mut out = Outbox::new();
    let mut graph_stream: Vec<(usize, u32)> = Vec::new();
    let mut raw_stream: Vec<(usize, u32)> = Vec::new();
    // 12 kbit frames fit the default bucket depth; 1 ms pacing offers
    // 12 Mbps against 8 Mbps admitted, so both admissions and refusals
    // appear in the stream.
    let bits = 12_000;
    let mut now = 0.0;
    for _ in 0..500 {
        now += 0.001;
        match dp.admit(&mut pool, &mut rng_graph, now, bits, &mut out) {
            AdmitOutcome::Admitted { pkt, route } => {
                graph_stream.push((route, pool.get(pkt).header.seq));
                pool.release(pkt);
            }
            AdmitOutcome::Dropped => {}
        }
        match raw_sched.offer(&mut rng_raw, now, bits) {
            RouteChoice::Route(r) => raw_stream.push((r, raw_sched.next_seq())),
            RouteChoice::Drop => {}
        }
    }
    assert!(graph_stream.len() > 100, "the load admits plenty of packets");
    assert_eq!(graph_stream, raw_stream, "admission decisions diverged");

    // Replay the admitted stream into both receive sides with a
    // deterministic loss pattern: reorder events, delivery counts and the
    // paced ACK must match.
    let mut graph_events: Vec<ReorderEvent> = Vec::new();
    let mut raw_events: Vec<ReorderEvent> = Vec::new();
    let mut graph_delivered = 0u64;
    for &(r, seq) in &graph_stream {
        if seq % 17 == 3 {
            continue; // network loss
        }
        let price = 0.1 * (r as f64 + 1.0);
        graph_delivered += dp.accept(r, seq, price, &mut graph_events);
        raw_acks.observe_price(r, price);
        for ev in raw_reorder.accept(r, seq) {
            if matches!(ev, ReorderEvent::Deliver(_)) {
                raw_acks.count_delivery();
            }
            raw_events.push(ev);
        }
    }
    assert_eq!(graph_events, raw_events, "reorder streams diverged");
    assert!(graph_delivered > 0);
    let graph_ack = dp.maybe_ack(1000.0).expect("ack due");
    let raw_ack = raw_acks.maybe_ack(1000.0).expect("ack due");
    assert_eq!(graph_ack, raw_ack, "paced ACKs diverged");

    // Delay equalization: the graph's hold matches the raw equalizer's
    // for the same delay observations.
    for i in 0..200u32 {
        let r = (i % 2) as usize;
        let delay = 0.010 + 0.005 * f64::from(i % 7);
        assert_eq!(dp.arrival_hold(r, delay), raw_eq.on_arrival(r, delay), "arrival {i}");
    }
}

#[test]
fn graph_steady_state_does_not_allocate_per_packet() {
    let cfg = DatapathConfig::for_routes(2).scheduler(sched_cfg());
    let mut dp = FlowDatapath::new(&cfg, routes(), None);
    let mut rng = StdRng::seed_from_u64(7);
    let mut pool = PktPool::new();
    let mut out = Outbox::new();
    let mut now = 0.0;
    let mut warm_grows = 0;
    let mut admitted = 0u64;
    for i in 0..10_000 {
        now += 0.001;
        if let AdmitOutcome::Admitted { pkt, .. } =
            dp.admit(&mut pool, &mut rng, now, 12_000, &mut out)
        {
            dp.stamp(&mut pool, &mut rng, now, pkt, 0.25, &mut out);
            admitted += 1;
            pool.release(pkt);
        }
        if i == 100 {
            warm_grows = pool.grows();
        }
    }
    assert!(admitted > 5_000, "the load admits a steady stream");
    // The pool's growth counter is the graph's only allocation-class
    // event; after warm-up it must freeze while packets keep churning.
    assert_eq!(pool.grows(), warm_grows, "graph steady state allocated per packet");
    assert!(pool.hits() > 5_000, "slots recycle");
}
