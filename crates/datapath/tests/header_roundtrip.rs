//! Property tests of the 20-byte wire codec: encode/decode round-trips
//! with both encoders (up to max-hop routes), f32 price accumulation, and
//! truncated/corrupted-buffer error paths. Randomized cases come from a
//! deterministic seed sweep (the in-tree RNG replaces proptest; the
//! failing case index is in the assertion message).

use empower_datapath::{EmpowerHeader, HeaderError, IfaceId, SourceRoute, HEADER_LEN, MAX_HOPS};
use empower_model::rng::{Rng, SeedableRng, StdRng};

const CASES: u64 = 256;

fn random_route(rng: &mut StdRng, n_hops: usize) -> SourceRoute {
    let hops: Vec<IfaceId> = (0..n_hops).map(|_| IfaceId(rng.gen_range(1u16..=u16::MAX))).collect();
    SourceRoute::new(&hops).unwrap()
}

#[test]
fn both_encoders_round_trip_all_route_lengths() {
    let mut rng = StdRng::seed_from_u64(0xE6C0);
    for case in 0..CASES {
        let n_hops = rng.gen_range(1..=MAX_HOPS);
        let mut h = EmpowerHeader::new(random_route(&mut rng, n_hops), rng.gen());
        h.price = rng.gen_range(0.0f64..1000.0) as f32;
        let mut fixed = [0u8; HEADER_LEN];
        h.encode_into(&mut fixed);
        let mut appended = Vec::new();
        h.encode(&mut appended);
        assert_eq!(appended.as_slice(), &fixed, "case {case}: encoders disagree");
        let back = EmpowerHeader::decode(&mut &fixed[..]).unwrap();
        assert_eq!(back, h, "case {case}");
    }
}

#[test]
fn max_hop_routes_survive_the_wire() {
    let mut rng = StdRng::seed_from_u64(0xE6C1);
    for case in 0..CASES {
        let h = EmpowerHeader::new(random_route(&mut rng, MAX_HOPS), rng.gen());
        let mut bytes = [0u8; HEADER_LEN];
        h.encode_into(&mut bytes);
        let back = EmpowerHeader::decode(&mut &bytes[..]).unwrap();
        assert_eq!(back.route.len(), MAX_HOPS, "case {case}");
        assert_eq!(back, h, "case {case}");
    }
}

#[test]
fn price_accumulation_round_trips_bit_exactly() {
    // Per-hop contributions fold in f32 (the wire width); whatever the
    // source and the forwarders accumulated must decode to the same bits.
    let mut rng = StdRng::seed_from_u64(0xE6C2);
    for case in 0..CASES {
        let mut h = EmpowerHeader::new(random_route(&mut rng, 2), case as u32);
        let mut expected = 0.0f32;
        for _ in 0..rng.gen_range(1usize..=8) {
            let c = rng.gen_range(0.0f64..10.0);
            h.add_price(c);
            expected += c as f32;
        }
        let mut bytes = [0u8; HEADER_LEN];
        h.encode_into(&mut bytes);
        let back = EmpowerHeader::decode(&mut &bytes[..]).unwrap();
        assert_eq!(back.price.to_bits(), expected.to_bits(), "case {case}");
    }
}

#[test]
fn truncated_buffers_report_their_length() {
    let mut rng = StdRng::seed_from_u64(0xE6C3);
    let h = EmpowerHeader::new(random_route(&mut rng, 3), 7);
    let mut bytes = [0u8; HEADER_LEN];
    h.encode_into(&mut bytes);
    for got in 0..HEADER_LEN {
        let err = EmpowerHeader::decode(&mut &bytes[..got]).unwrap_err();
        assert_eq!(err, HeaderError::Truncated { got }, "prefix of {got} bytes");
    }
}

#[test]
fn decode_of_arbitrary_bytes_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xE6C4);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u32>() as u8).collect();
        let _ = EmpowerHeader::decode(&mut bytes.as_slice());
    }
}

#[test]
fn route_gaps_are_rejected() {
    // A set hop after an empty slot is malformed on the wire.
    let mut bytes = [0u8; HEADER_LEN];
    bytes[4..6].copy_from_slice(&55u16.to_be_bytes());
    assert_eq!(EmpowerHeader::decode(&mut &bytes[..]), Err(HeaderError::NonContiguousRoute));
}
