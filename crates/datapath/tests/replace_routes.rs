#![forbid(unsafe_code)]
//! Mid-burst route replacement (`CtrlMsg::ReplaceRoutes`, §3.2 route
//! recomputation): packets admitted on the old route set are still in
//! flight when the flow re-keys to a smaller one. The reorder stage must
//! drop the ones referencing retired route indices (`DropReason::Stale`)
//! *through the graph*, so their pool slots are released — a stranded
//! handle here is a leak the simulator's allocation-free hot path would
//! turn into unbounded growth. The whole run is seeded, so the per-node
//! counter manifest must also be byte-identical across identical runs.

use std::collections::VecDeque;

use empower_datapath::{
    ChainResult, CtrlMsg, Disposition, DropReason, FlowGraph, GraphCtx, GraphNode, IfaceId, Outbox,
    PktPool, PriceStampNode, ReorderConfig, ReorderEvent, ReorderNode, RouteChoiceNode,
    SchedulerConfig, SourceRoute,
};
use empower_model::rng::{SeedableRng, StdRng};
use empower_telemetry::{Manifest, Telemetry};

const FRAME_BITS: u64 = 12_000;
/// Packets stay "on the wire" for this many admissions before reaching
/// the destination-side reorder stage.
const IN_FLIGHT: usize = 6;
/// Admission at which the route set shrinks from two routes to one.
const REKEY_AT: usize = 25;
const OFFERS: usize = 60;

fn route(ids: &[u16]) -> SourceRoute {
    let hops: Vec<IfaceId> = ids.iter().map(|&i| IfaceId(i)).collect();
    SourceRoute::new(&hops).unwrap()
}

/// Outcome of one seeded burst-with-rekey run.
struct BurstOutcome {
    delivered: u64,
    stale_drops: u64,
    live_after: usize,
    manifest: String,
}

/// Drives `RouteChoice → PriceStamp → … wire … → Reorder` with a fixed
/// in-flight window, re-keying 2 → 1 routes mid-burst, and returns the
/// delivery/drop tallies plus the rendered counter manifest.
fn run_burst(seed: u64) -> BurstOutcome {
    let tel = Telemetry::enabled();
    let scope = tel.scope("flow/0");
    let mut graph = FlowGraph::new();
    let sched = SchedulerConfig::for_routes(2).initial_rates(&[10.0, 10.0]);
    let rc = graph.push(
        GraphNode::RouteChoice(RouteChoiceNode::new(&sched, vec![route(&[1, 2]), route(&[3, 4])])),
        Some(&scope),
    );
    let ps = graph.push(GraphNode::PriceStamp(PriceStampNode), Some(&scope));
    let ro = graph
        .push(GraphNode::Reorder(ReorderNode::new(&ReorderConfig::for_routes(2))), Some(&scope));

    let mut pool = PktPool::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Outbox::new();
    let mut in_flight = VecDeque::new();
    let mut delivered = 0u64;
    let mut stale_drops = 0u64;
    let mut t = 0.0;

    let mut deliver = |graph: &mut FlowGraph,
                       pool: &mut PktPool,
                       rng: &mut StdRng,
                       out: &mut Outbox,
                       now: f64,
                       pkt| {
        out.clear();
        let mut ctx = GraphCtx { now, pool, rng, price_contribution: 0.0, out };
        match graph.run_from(ro, pkt, &mut ctx) {
            ChainResult::Consumed => {
                delivered += ctx
                    .out
                    .reorder
                    .iter()
                    .filter(|e| matches!(e, ReorderEvent::Deliver(_)))
                    .count() as u64;
            }
            ChainResult::Dropped(DropReason::Stale) => stale_drops += 1,
            other => panic!("unexpected destination-side outcome: {other:?}"),
        }
    };

    for i in 0..OFFERS {
        t += 0.01;
        if i == REKEY_AT {
            // Route recomputation: one surviving route, fresh rates (the
            // scheduler zeroes them on re-key). Packets already in flight
            // still carry old route indices.
            graph.post(CtrlMsg::ReplaceRoutes(vec![route(&[5, 6])]));
            graph.post(CtrlMsg::SetRates(vec![10.0]));
            graph.tick();
        }
        let pkt = pool.insert_with(|p| {
            p.reset();
            p.size_bits = FRAME_BITS;
            p.created_at = t;
        });
        out.clear();
        let mut ctx = GraphCtx {
            now: t,
            pool: &mut pool,
            rng: &mut rng,
            price_contribution: 0.02,
            out: &mut out,
        };
        // Source side only: `RouteChoice` then `PriceStamp`. The packet is
        // then "on the wire" until `IN_FLIGHT` later admissions happen.
        match graph.step(rc, pkt, &mut ctx) {
            Disposition::Next => {
                assert_eq!(graph.step(ps, pkt, &mut ctx), Disposition::Next);
                in_flight.push_back(pkt);
            }
            Disposition::Drop(DropReason::NoTokens) => {}
            other => panic!("unexpected source-side outcome: {other:?}"),
        }
        while in_flight.len() > IN_FLIGHT {
            let pkt = in_flight.pop_front().unwrap();
            deliver(&mut graph, &mut pool, &mut rng, &mut out, t, pkt);
        }
    }
    // Drain the wire.
    while let Some(pkt) = in_flight.pop_front() {
        t += 0.01;
        deliver(&mut graph, &mut pool, &mut rng, &mut out, t, pkt);
    }

    let mut m = Manifest::new("replace_routes_burst");
    m.set("seed", seed).attach_counters(&tel);
    BurstOutcome { delivered, stale_drops, live_after: pool.live(), manifest: m.render() }
}

#[test]
fn rekey_mid_burst_strands_no_pool_handles() {
    let out = run_burst(0xEB);
    assert!(out.delivered > 0, "in-order deliveries before and after the re-key");
    assert!(
        out.stale_drops > 0,
        "packets in flight across the re-key reference retired route indices"
    );
    assert_eq!(out.live_after, 0, "every pool handle was delivered or released on drop");
}

#[test]
fn rekey_mid_burst_counters_are_stable_across_runs() {
    let a = run_burst(0xEB);
    let b = run_burst(0xEB);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.stale_drops, b.stale_drops);
    assert_eq!(
        a.manifest, b.manifest,
        "per-node in/out/drop counters must be byte-identical for identical runs"
    );
}
