//! Loopback demo: two OS processes forward real EMPoWER frames over UDP
//! through the same forwarding-graph node code the simulator drives.
//!
//! ```text
//! terminal 1: cargo run -p empower-datapath --example udp_forward -- recv 127.0.0.1:0
//!             (prints `listening 127.0.0.1:<port>` with the bound port)
//! terminal 2: cargo run -p empower-datapath --example udp_forward -- send 127.0.0.1:<port>
//! ```
//!
//! Binding port 0 asks the OS for a free ephemeral port, so parallel CI
//! jobs never collide; the receiver's `listening` line advertises the
//! actual address for the sender to target. A fixed port still works —
//! pass it explicitly, or export `EMPOWER_UDP_PORT` for ci.sh.
//!
//! The sender runs `RouteChoice → PriceStamp → Encap` over a
//! [`UdpBackend`] and stamps a fixed per-route path price (0.25 on route
//! 0, 0.5 on route 1 — in the simulator this accumulates hop by hop); the
//! receiver runs `Decap → Reorder` and reports in-order delivery plus the
//! per-route prices its paced ACK would carry. Time is a synthetic clock
//! (5 ms per frame): the demo exercises the wire format and the graph,
//! not wall-clock pacing. Delay equalization is skipped — it needs the
//! one-way delay, which plain UDP frames carry no timestamp for.

use std::io::Write;

use empower_datapath::backend::udp::UdpBackend;
use empower_datapath::{
    DestEndpoint, IfaceId, ReorderConfig, ReorderEvent, SchedulerConfig, SourceEndpoint,
    SourceRoute,
};

const FRAMES: u32 = 64;
const STEP_SECS: f64 = 0.005;

fn routes() -> Vec<SourceRoute> {
    vec![
        SourceRoute::new(&[IfaceId(1), IfaceId(2)]).unwrap(),
        SourceRoute::new(&[IfaceId(3), IfaceId(4)]).unwrap(),
    ]
}

fn send(peer: &str) {
    let io = UdpBackend::bind("127.0.0.1:0", peer).expect("bind sender socket");
    // 4 + 4 Mbps against ~29 kbit/s offered load: every offer is admitted.
    let cfg = SchedulerConfig::for_routes(2).initial_rates(&[4.0, 4.0]);
    let mut src = SourceEndpoint::new(io, &cfg, routes(), vec![0.25, 0.5], 42, None);
    let mut now = 0.0;
    for _ in 0..FRAMES {
        now += STEP_SECS;
        src.offer(now, b"empower-udp-demo").expect("send frame");
        // Keep loopback socket buffers comfortable.
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(src.sent(), u64::from(FRAMES), "the token bucket admits every offer at this pace");
    println!("sent {} frames on 2 routes", src.sent());
}

fn recv(addr: &str) {
    let io = UdpBackend::bind(addr, "127.0.0.1:1").expect("bind receiver socket");
    // Report the address the OS actually assigned (addr may name port 0).
    let bound = io.local_addr().expect("query bound address");
    let mut dst = DestEndpoint::new(io, &ReorderConfig::for_routes(2), routes(), None);
    println!("listening {}", bound);
    std::io::stdout().flush().expect("flush stdout");
    let mut events: Vec<ReorderEvent> = Vec::new();
    let mut now = 0.0;
    // Each empty poll blocks ~5 ms in the socket timeout; bail out after
    // ~30 s without the full frame count.
    let mut idle_budget = 6000u32;
    while (events.len() as u32) < FRAMES && idle_budget > 0 {
        now += STEP_SECS;
        if !dst.poll(now, &mut events).expect("poll") {
            idle_budget -= 1;
        }
    }
    let delivered: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            ReorderEvent::Deliver(s) => Some(*s),
            ReorderEvent::Lost(_) => None,
        })
        .collect();
    let in_order = delivered == (0..FRAMES).collect::<Vec<u32>>();
    println!(
        "delivered {} of {} frames, in order: {}",
        delivered.len(),
        FRAMES,
        if in_order { "yes" } else { "NO" }
    );
    if let Some(ack) = dst.maybe_ack(now + 1.0) {
        println!("ack: {} delivered, route prices {:?}", ack.delivered_packets, ack.route_prices);
    }
    if !in_order {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("send") if args.len() == 3 => send(&args[2]),
        Some("recv") if args.len() == 3 => recv(&args[2]),
        _ => {
            eprintln!("usage: udp_forward send <peer-addr> | recv <bind-addr>");
            std::process::exit(2);
        }
    }
}
