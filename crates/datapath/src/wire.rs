//! Minimal byte-cursor traits for the wire formats.
//!
//! A drop-in, in-tree replacement for the subset of the `bytes` crate the
//! header and IEEE 1905.1 codecs use: big-endian getters/putters over an
//! advancing `&[u8]` cursor and an appending `Vec<u8>`.

/// A readable byte cursor. Getters advance past what they read and panic
/// on underflow — callers bound reads with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// An appendable byte sink; putters use network (big-endian) byte order.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian() {
        let mut v = Vec::new();
        v.put_u8(0xab);
        v.put_u16(0x1234);
        v.put_u32(0xdead_beef);
        v.put_f32(1.5);
        assert_eq!(v.len(), 11);
        assert_eq!(&v[1..3], &[0x12, 0x34]); // network byte order

        let mut cur: &[u8] = &v;
        assert_eq!(cur.remaining(), 11);
        assert_eq!(cur.get_u8(), 0xab);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_f32(), 1.5);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1u8];
        let _ = cur.get_u16();
    }
}
