//! Layer-2.5 interface identifiers.
//!
//! The implementation "uses short hashes of the interfaces' MAC addresses as
//! identifiers at layer 2.5" (§6.1), 2 bytes each. We synthesize a stable
//! MAC per (node, medium) pair, hash it with FNV-1a to 16 bits, and resolve
//! the (rare) collisions by linear probing inside the registry so that
//! forwarding in the simulator is never ambiguous — a real deployment would
//! simply re-roll its locally-administered MAC.

use std::collections::BTreeMap;

use empower_model::{Medium, Network, NodeId};

/// A 2-byte interface identifier. Zero is reserved as "empty route slot".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u16);

impl IfaceId {
    /// The reserved empty value.
    pub const EMPTY: IfaceId = IfaceId(0);

    /// True if this slot holds a real interface.
    pub fn is_set(self) -> bool {
        self.0 != 0
    }
}

/// Synthesizes the MAC address of a (node, medium) interface: a
/// locally-administered OUI plus node id and medium tag.
pub fn synthetic_mac(node: NodeId, medium: Medium) -> [u8; 6] {
    let tag = medium.tag();
    [
        0x02, // locally administered, unicast
        0xe5, // "EMPoWER"
        (node.0 >> 8) as u8,
        node.0 as u8,
        (tag >> 8) as u8,
        tag as u8,
    ]
}

/// FNV-1a over the MAC, folded to 16 bits.
fn short_hash(mac: &[u8; 6]) -> u16 {
    let mut h: u32 = 0x811c9dc5;
    for &b in mac {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    ((h >> 16) ^ (h & 0xffff)) as u16
}

/// Bidirectional map between (node, medium) interfaces and their 2-byte ids.
#[derive(Debug, Clone, Default)]
pub struct IfaceRegistry {
    by_iface: BTreeMap<(NodeId, Medium), IfaceId>,
    by_id: BTreeMap<IfaceId, (NodeId, Medium)>,
}

impl IfaceRegistry {
    /// Registers every interface of `net`.
    pub fn for_network(net: &Network) -> Self {
        let mut reg = IfaceRegistry::default();
        for node in net.nodes() {
            for &m in &node.mediums {
                reg.register(node.id, m);
            }
        }
        reg
    }

    /// Registers one interface, probing past hash collisions and the
    /// reserved zero value.
    pub fn register(&mut self, node: NodeId, medium: Medium) -> IfaceId {
        if let Some(&id) = self.by_iface.get(&(node, medium)) {
            return id;
        }
        let mut candidate = short_hash(&synthetic_mac(node, medium));
        loop {
            let id = IfaceId(candidate);
            if id.is_set() && !self.by_id.contains_key(&id) {
                self.by_iface.insert((node, medium), id);
                self.by_id.insert(id, (node, medium));
                return id;
            }
            candidate = candidate.wrapping_add(1);
        }
    }

    /// Looks up an interface id.
    pub fn id_of(&self, node: NodeId, medium: Medium) -> Option<IfaceId> {
        self.by_iface.get(&(node, medium)).copied()
    }

    /// Reverse lookup.
    pub fn iface_of(&self, id: IfaceId) -> Option<(NodeId, Medium)> {
        self.by_id.get(&id).copied()
    }

    /// Number of registered interfaces.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no interface is registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;

    #[test]
    fn macs_are_unique_and_local() {
        let a = synthetic_mac(NodeId(1), Medium::WIFI1);
        let b = synthetic_mac(NodeId(1), Medium::WIFI2);
        let c = synthetic_mac(NodeId(2), Medium::WIFI1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[0] & 0x02, 0x02, "locally administered bit");
        assert_eq!(a[0] & 0x01, 0, "unicast");
    }

    #[test]
    fn registry_round_trips() {
        let t = testbed22(1);
        let reg = IfaceRegistry::for_network(&t.net);
        assert_eq!(reg.len(), 22 * 3);
        for node in t.net.nodes() {
            for &m in &node.mediums {
                let id = reg.id_of(node.id, m).unwrap();
                assert!(id.is_set());
                assert_eq!(reg.iface_of(id), Some((node.id, m)));
            }
        }
    }

    #[test]
    fn ids_are_unique_even_under_collisions() {
        // Register a large population to force probe activity.
        let mut reg = IfaceRegistry::default();
        let mut seen = std::collections::HashSet::new();
        for n in 0..5000u32 {
            let id = reg.register(NodeId(n), Medium::WIFI1);
            assert!(seen.insert(id), "duplicate id {id:?}");
        }
    }

    #[test]
    fn register_is_idempotent() {
        let mut reg = IfaceRegistry::default();
        let a = reg.register(NodeId(7), Medium::Plc);
        let b = reg.register(NodeId(7), Medium::Plc);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn zero_is_never_assigned() {
        let mut reg = IfaceRegistry::default();
        for n in 0..2000u32 {
            assert!(reg.register(NodeId(n), Medium::Plc).is_set());
        }
    }
}
