//! Price acknowledgements (§4.2/§6.1).
//!
//! The destination reads the accumulated `q_r` from each data packet's
//! header, remembers the latest value per route, and sends it back to the
//! source in dedicated acknowledgements "at most 10 times per second, using
//! the best single-path" with prioritized queues. One ACK carries the prices
//! of *all* routes of the flow.

/// ACK pacing: at most one per 100 ms per flow.
pub const ACK_INTERVAL_SECS: f64 = 0.1;

/// An EMPoWER acknowledgement: the per-route prices observed since the last
/// ACK, plus cumulative delivery feedback usable for throughput accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Ack {
    /// Latest accumulated price `q_r` per route (`None` = no packet seen on
    /// that route during the window).
    pub route_prices: Vec<Option<f64>>,
    /// Packets delivered in order to the upper layer since flow start.
    pub delivered_packets: u64,
    /// Emission time, seconds.
    pub sent_at: f64,
}

/// Destination-side collector producing paced ACKs.
#[derive(Debug, Clone)]
pub struct AckCollector {
    latest_price: Vec<Option<f64>>,
    delivered_packets: u64,
    last_ack_at: f64,
}

impl AckCollector {
    /// Collector for a flow with `route_count` routes.
    pub fn new(route_count: usize) -> Self {
        AckCollector {
            latest_price: vec![None; route_count],
            delivered_packets: 0,
            // Allow an ACK as soon as the first packet arrives.
            last_ack_at: f64::NEG_INFINITY,
        }
    }

    /// Records the header price of a packet that arrived on `route`.
    pub fn observe_price(&mut self, route: usize, q: f64) {
        self.latest_price[route] = Some(q);
    }

    /// Records an in-order delivery to the upper layer.
    pub fn count_delivery(&mut self) {
        self.delivered_packets += 1;
    }

    /// Total in-order deliveries so far.
    pub fn delivered(&self) -> u64 {
        self.delivered_packets
    }

    /// Produces an ACK if the pacing interval has elapsed. Prices are kept
    /// (not cleared): the controller always acts on the freshest known `q_r`.
    pub fn maybe_ack(&mut self, now: f64) -> Option<Ack> {
        if now - self.last_ack_at < ACK_INTERVAL_SECS {
            return None;
        }
        if self.latest_price.iter().all(|p| p.is_none()) && self.delivered_packets == 0 {
            return None; // nothing to report yet
        }
        self.last_ack_at = now;
        Some(Ack {
            route_prices: self.latest_price.clone(),
            delivered_packets: self.delivered_packets,
            sent_at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acks_are_paced_at_100ms() {
        let mut c = AckCollector::new(2);
        c.observe_price(0, 0.5);
        assert!(c.maybe_ack(0.0).is_some());
        c.observe_price(0, 0.6);
        assert!(c.maybe_ack(0.05).is_none());
        assert!(c.maybe_ack(0.1).is_some());
    }

    #[test]
    fn ack_carries_latest_price_per_route() {
        let mut c = AckCollector::new(2);
        c.observe_price(0, 0.5);
        c.observe_price(0, 0.7);
        c.observe_price(1, 0.2);
        let ack = c.maybe_ack(0.0).unwrap();
        assert_eq!(ack.route_prices, vec![Some(0.7), Some(0.2)]);
    }

    #[test]
    fn silent_flow_sends_no_acks() {
        let mut c = AckCollector::new(2);
        assert!(c.maybe_ack(10.0).is_none());
    }

    #[test]
    fn unseen_route_reports_none() {
        let mut c = AckCollector::new(3);
        c.observe_price(1, 0.4);
        let ack = c.maybe_ack(1.0).unwrap();
        assert_eq!(ack.route_prices, vec![None, Some(0.4), None]);
    }

    #[test]
    fn delivery_counter_is_cumulative() {
        let mut c = AckCollector::new(1);
        c.observe_price(0, 0.1);
        for _ in 0..5 {
            c.count_delivery();
        }
        assert_eq!(c.maybe_ack(0.0).unwrap().delivered_packets, 5);
        for _ in 0..3 {
            c.count_delivery();
        }
        assert_eq!(c.maybe_ack(0.2).unwrap().delivered_packets, 8);
    }
}
