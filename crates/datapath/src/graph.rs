//! The per-flow forwarding graph.
//!
//! The datapath is structured as a chain of typed nodes
//! (`Decap → RouteChoice → PriceStamp → DelayEq → Reorder → Encap`, see
//! [`crate::nodes`]) over a shared packet [`Pool`](crate::pool::Pool):
//! packets move through the graph as 4-byte [`PktHandle`]s, each node
//! mutates the pooled packet in place and returns a [`Disposition`], and
//! per-node telemetry counters (`<scope>/<node>/{in,out,drops}`) record
//! every step. Control-plane changes — new rate vectors from the
//! congestion controller, route replacement after a failure, probe-floor
//! tuning — arrive as typed [`CtrlMsg`] values posted to the graph and
//! drained at [`FlowGraph::tick`], replacing the ad-hoc `&mut` setter
//! sprawl the stages used to expose.
//!
//! Handle ownership: the graph releases a packet's pool slot when a node
//! drops it; a node that returns [`Disposition::Consumed`] has taken
//! ownership (released the slot itself or parked the handle for later
//! re-injection); [`Disposition::Next`] passes ownership to the next node,
//! and off the end of the chain back to the driver.

use empower_telemetry::{Counter, CounterType, Scope};

use empower_model::rng::StdRng;

use crate::ack::Ack;
use crate::config::DatapathConfig;
use crate::header::SourceRoute;
use crate::nodes::{
    DecapNode, DelayEqNode, EncapNode, PriceStampNode, ReorderNode, RouteChoiceNode,
};
use crate::pool::{PktHandle, PktPool};
use crate::reorder::ReorderEvent;

/// A typed control-plane message, posted to a graph and drained (in post
/// order, to every node) at the next [`FlowGraph::tick`].
#[derive(Debug, Clone, PartialEq)]
pub enum CtrlMsg {
    /// New per-route rates `x_r` (Mbps) from the congestion controller.
    SetRates(Vec<f64>),
    /// New price-probing floor, Mbps (zero disables probing).
    SetProbeFloor(f64),
    /// Replace the flow's route set (route recomputation after a failure,
    /// §3.2). Stages re-key: the scheduler zeroes its rates but keeps the
    /// wire sequence counter; the reorder buffer keeps buffered packets but
    /// restarts its per-route high-water marks.
    ReplaceRoutes(Vec<SourceRoute>),
}

/// Why a node dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The token bucket is empty: the flow's admitted rate is exhausted.
    NoTokens,
    /// The header's source route is not in the flow's route table.
    NoRoute,
    /// The frame failed to parse as an EMPoWER packet.
    Malformed,
    /// The packet references a route index retired by a route replacement.
    Stale,
}

/// What a node did with the packet it was handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Pass the packet to the next node in the chain.
    Next,
    /// The node took ownership (delivered upward, parked for re-injection):
    /// the chain ends here, successfully.
    Consumed,
    /// Drop the packet; the graph releases its pool slot.
    Drop(DropReason),
}

/// Where a full chain run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainResult {
    /// The packet ran off the end of the chain; the driver owns the handle
    /// (and, after an `Encap` tail, finds the wire frame in the outbox).
    Egress(PktHandle),
    /// A node consumed the packet.
    Consumed,
    /// A node dropped the packet (slot already released).
    Dropped(DropReason),
}

/// Side-channel outputs a node hands back to the driver, with reusable
/// buffers so the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Reorder releases (deliveries and loss declarations), in order.
    pub reorder: Vec<ReorderEvent>,
    /// Set by `DelayEq` when it consumes a packet: re-inject after this
    /// many seconds.
    pub hold_secs: Option<f64>,
    /// The serialized wire frame produced by `Encap`.
    pub frame: Vec<u8>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Clears all outputs, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.reorder.clear();
        self.hold_secs = None;
        self.frame.clear();
    }
}

/// Everything a node sees besides its own state: the driver's clock, the
/// shared packet pool, the deterministic RNG, the current hop's price
/// contribution, and the outbox for side-channel outputs.
#[derive(Debug)]
pub struct GraphCtx<'a> {
    /// Current time, seconds of the driver's clock.
    pub now: f64,
    /// The shared packet pool handles point into.
    pub pool: &'a mut PktPool,
    /// Deterministic RNG (route draws).
    pub rng: &'a mut StdRng,
    /// The current hop's price contribution (Eq. (9) summand), consumed by
    /// `PriceStamp`.
    pub price_contribution: f64,
    /// Side-channel outputs back to the driver.
    pub out: &'a mut Outbox,
}

/// One stage of the forwarding graph.
///
/// Object-safe so drivers can extend the chain with [`GraphNode::Custom`]
/// stages; the built-in nodes live in [`crate::nodes`].
pub trait Node {
    /// Short stable name, used as the telemetry scope segment.
    fn name(&self) -> &'static str;
    /// Processes one pooled packet (see the module docs for the handle-
    /// ownership contract).
    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition;
    /// Reacts to a control-plane message; the default ignores it.
    fn handle_ctrl(&mut self, _msg: &CtrlMsg) {}
}

/// A node slotted into a [`FlowGraph`]: the built-in stages as enum
/// variants (static dispatch on the hot path), or a boxed custom stage.
pub enum GraphNode {
    /// Ingress parsing.
    Decap(DecapNode),
    /// Admission + route selection.
    RouteChoice(RouteChoiceNode),
    /// Price accumulation.
    PriceStamp(PriceStampNode),
    /// Destination-side delay equalization.
    DelayEq(DelayEqNode),
    /// Destination-side reordering + ACKs.
    Reorder(ReorderNode),
    /// Egress framing.
    Encap(EncapNode),
    /// A driver-provided stage.
    Custom(Box<dyn Node>),
}

impl GraphNode {
    fn as_node_mut(&mut self) -> &mut dyn Node {
        match self {
            GraphNode::Decap(n) => n,
            GraphNode::RouteChoice(n) => n,
            GraphNode::PriceStamp(n) => n,
            GraphNode::DelayEq(n) => n,
            GraphNode::Reorder(n) => n,
            GraphNode::Encap(n) => n,
            GraphNode::Custom(n) => n.as_mut(),
        }
    }

    /// The stage's telemetry name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphNode::Decap(n) => n.name(),
            GraphNode::RouteChoice(n) => n.name(),
            GraphNode::PriceStamp(n) => n.name(),
            GraphNode::DelayEq(n) => n.name(),
            GraphNode::Reorder(n) => n.name(),
            GraphNode::Encap(n) => n.name(),
            GraphNode::Custom(n) => n.name(),
        }
    }
}

impl std::fmt::Debug for GraphNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-node telemetry bundle: `<scope>/<node>/{in,out,drops}`.
/// No-op counters (zero-cost) when the graph is built without a scope.
#[derive(Debug, Clone)]
pub struct NodeCounters {
    /// Packets handed to the node.
    pub pkts_in: Counter,
    /// Packets the node passed on or consumed successfully.
    pub pkts_out: Counter,
    /// Packets the node dropped.
    pub drops: Counter,
}

impl NodeCounters {
    /// Registers the bundle under `scope/<node>` — or builds no-op
    /// counters when `scope` is `None`.
    pub fn for_node(scope: Option<&Scope>, node: &str) -> Self {
        match scope {
            Some(s) => {
                let ns = s.scope(node);
                NodeCounters {
                    pkts_in: ns.counter("in", CounterType::Packets),
                    pkts_out: ns.counter("out", CounterType::Packets),
                    drops: ns.counter("drops", CounterType::Packets),
                }
            }
            None => NodeCounters {
                pkts_in: Counter::noop(),
                pkts_out: Counter::noop(),
                drops: Counter::noop(),
            },
        }
    }
}

#[derive(Debug)]
struct GraphEntry {
    node: GraphNode,
    tele: NodeCounters,
}

/// An ordered chain of nodes plus the control-plane mailbox.
#[derive(Debug, Default)]
pub struct FlowGraph {
    nodes: Vec<GraphEntry>,
    ctrl: Vec<CtrlMsg>,
}

impl FlowGraph {
    /// An empty graph.
    pub fn new() -> Self {
        FlowGraph { nodes: Vec::new(), ctrl: Vec::new() }
    }

    /// Appends a node, registering its telemetry bundle under `scope`
    /// (no-op counters when `None`), and returns its slot index.
    pub fn push(&mut self, node: GraphNode, scope: Option<&Scope>) -> usize {
        let tele = NodeCounters::for_node(scope, node.name());
        self.nodes.push(GraphEntry { node, tele });
        self.nodes.len() - 1
    }

    /// Number of nodes in the chain.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the chain has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mutable access to the node in `slot`.
    pub fn node_mut(&mut self, slot: usize) -> &mut GraphNode {
        &mut self.nodes[slot].node
    }

    /// Runs one packet through the single node in `slot`, maintaining the
    /// node's counters and releasing the pool slot on a drop.
    pub fn step(&mut self, slot: usize, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        let entry = &mut self.nodes[slot];
        entry.tele.pkts_in.inc();
        let d = entry.node.as_node_mut().process(pkt, ctx);
        match d {
            Disposition::Next | Disposition::Consumed => entry.tele.pkts_out.inc(),
            Disposition::Drop(_) => {
                entry.tele.drops.inc();
                ctx.pool.release(pkt);
            }
        }
        d
    }

    /// Runs one packet through the chain from `entry` to the end.
    pub fn run_from(
        &mut self,
        entry: usize,
        pkt: PktHandle,
        ctx: &mut GraphCtx<'_>,
    ) -> ChainResult {
        for slot in entry..self.nodes.len() {
            match self.step(slot, pkt, ctx) {
                Disposition::Next => {}
                Disposition::Consumed => return ChainResult::Consumed,
                Disposition::Drop(r) => return ChainResult::Dropped(r),
            }
        }
        ChainResult::Egress(pkt)
    }

    /// Runs one packet through the whole chain.
    pub fn run(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> ChainResult {
        self.run_from(0, pkt, ctx)
    }

    /// Posts a control-plane message for the next [`FlowGraph::tick`].
    pub fn post(&mut self, msg: CtrlMsg) {
        self.ctrl.push(msg);
    }

    /// Drains posted control messages, delivering each (in post order) to
    /// every node in chain order. The mailbox's capacity is kept.
    pub fn tick(&mut self) {
        let msgs = std::mem::take(&mut self.ctrl);
        for msg in &msgs {
            for entry in &mut self.nodes {
                entry.node.as_node_mut().handle_ctrl(msg);
            }
        }
        self.ctrl = msgs;
        self.ctrl.clear();
    }
}

/// Outcome of offering a packet to a [`FlowDatapath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The token bucket refused the packet (pool slot already released).
    Dropped,
    /// Admitted: the pooled packet carries a fresh header (route + wire
    /// sequence number); `route` is the chosen route's flow-local index.
    Admitted {
        /// Handle of the admitted packet.
        pkt: PktHandle,
        /// Chosen route index.
        route: usize,
    },
}

/// A complete per-flow datapath assembled as a [`FlowGraph`]:
/// `RouteChoice → PriceStamp → [DelayEq] → Reorder`, with typed entry
/// points for drivers that interleave the stages with their own event
/// loop (the simulator) and for control-plane updates.
#[derive(Debug)]
pub struct FlowDatapath {
    graph: FlowGraph,
    route_choice: usize,
    price_stamp: usize,
    delay_eq: Option<usize>,
    reorder: usize,
}

impl FlowDatapath {
    /// Assembles the datapath for one flow over `routes`, registering
    /// per-node telemetry under `scope` (or no-op counters when `None`).
    pub fn new(cfg: &DatapathConfig, routes: Vec<SourceRoute>, scope: Option<&Scope>) -> Self {
        let mut graph = FlowGraph::new();
        let route_choice =
            graph.push(GraphNode::RouteChoice(RouteChoiceNode::new(&cfg.scheduler, routes)), scope);
        let price_stamp = graph.push(GraphNode::PriceStamp(PriceStampNode), scope);
        let delay_eq = cfg
            .delay_eq
            .as_ref()
            .map(|d| graph.push(GraphNode::DelayEq(DelayEqNode::new(d)), scope));
        let reorder = graph.push(GraphNode::Reorder(ReorderNode::new(&cfg.reorder)), scope);
        FlowDatapath { graph, route_choice, price_stamp, delay_eq, reorder }
    }

    fn route_choice_node(&mut self) -> &mut RouteChoiceNode {
        match self.graph.node_mut(self.route_choice) {
            GraphNode::RouteChoice(n) => n,
            _ => unreachable!("route_choice slot holds the RouteChoice node"),
        }
    }

    fn reorder_node(&mut self) -> &mut ReorderNode {
        match self.graph.node_mut(self.reorder) {
            GraphNode::Reorder(n) => n,
            _ => unreachable!("reorder slot holds the Reorder node"),
        }
    }

    /// Posts a control-plane message; it takes effect at the next
    /// [`FlowDatapath::tick`].
    pub fn post(&mut self, msg: CtrlMsg) {
        self.graph.post(msg);
    }

    /// Drains posted control messages into the nodes.
    pub fn tick(&mut self) {
        self.graph.tick();
    }

    /// Current total admitted rate, Mbps.
    pub fn total_rate(&mut self) -> f64 {
        self.route_choice_node().total_rate()
    }

    /// Number of routes the datapath is keyed for.
    pub fn route_count(&mut self) -> usize {
        self.route_choice_node().route_count()
    }

    /// Offers one `size_bits`-bit packet at `now`: allocates a pooled
    /// packet and runs the `RouteChoice` stage (token bucket + weighted
    /// route draw). On admission the packet carries a fresh header; on
    /// refusal the slot is already released.
    pub fn admit(
        &mut self,
        pool: &mut PktPool,
        rng: &mut StdRng,
        now: f64,
        size_bits: u64,
        out: &mut Outbox,
    ) -> AdmitOutcome {
        let pkt = pool.insert_with(|p| {
            p.reset();
            p.size_bits = size_bits;
            p.created_at = now;
        });
        out.clear();
        let mut ctx = GraphCtx { now, pool, rng, price_contribution: 0.0, out };
        match self.graph.step(self.route_choice, pkt, &mut ctx) {
            Disposition::Next => {
                let route = ctx.pool.get(pkt).route;
                AdmitOutcome::Admitted { pkt, route }
            }
            _ => AdmitOutcome::Dropped,
        }
    }

    /// Admits a packet onto an explicit route, bypassing the token bucket
    /// and its telemetry: the open-loop TCP path (no congestion control)
    /// pins route 0 without consuming tokens or RNG draws.
    pub fn admit_direct(
        &mut self,
        pool: &mut PktPool,
        now: f64,
        size_bits: u64,
        route: usize,
    ) -> PktHandle {
        let pkt = pool.insert_with(|p| {
            p.reset();
            p.size_bits = size_bits;
            p.created_at = now;
        });
        let rc = self.route_choice_node();
        rc.assign(pool.get_mut(pkt), route);
        pkt
    }

    /// Runs the `PriceStamp` stage: accumulates this hop's price
    /// contribution into the pooled packet's header.
    pub fn stamp(
        &mut self,
        pool: &mut PktPool,
        rng: &mut StdRng,
        now: f64,
        pkt: PktHandle,
        contribution: f64,
        out: &mut Outbox,
    ) {
        let mut ctx = GraphCtx { now, pool, rng, price_contribution: contribution, out };
        let _ = self.graph.step(self.price_stamp, pkt, &mut ctx);
    }

    /// Runs the `DelayEq` stage's core: records `route`'s observed one-way
    /// delay and returns the hold to apply before release (0 when the
    /// datapath has no delay equalization).
    pub fn arrival_hold(&mut self, route: usize, delay_secs: f64) -> f64 {
        let Some(slot) = self.delay_eq else {
            return 0.0;
        };
        match self.graph.node_mut(slot) {
            GraphNode::DelayEq(n) => n.hold_for(route, delay_secs),
            _ => unreachable!("delay_eq slot holds the DelayEq node"),
        }
    }

    /// Runs the `Reorder` stage's core on a (route, seq, price) arrival;
    /// see [`ReorderNode::accept`]. Returns the in-order deliveries.
    pub fn accept(
        &mut self,
        route: usize,
        seq: u32,
        price: f64,
        out: &mut Vec<ReorderEvent>,
    ) -> u64 {
        self.reorder_node().accept(route, seq, price, out)
    }

    /// Number of routes the reorder stage is keyed for (lags the route
    /// table only within a tick).
    pub fn reorder_route_count(&mut self) -> usize {
        self.reorder_node().route_count()
    }

    /// The paced price acknowledgement, when one is due.
    pub fn maybe_ack(&mut self, now: f64) -> Option<Ack> {
        self.reorder_node().maybe_ack(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use crate::iface_id::IfaceId;
    use empower_model::rng::SeedableRng;
    use empower_telemetry::Telemetry;

    fn route(ids: &[u16]) -> SourceRoute {
        let hops: Vec<IfaceId> = ids.iter().map(|&i| IfaceId(i)).collect();
        SourceRoute::new(&hops).unwrap()
    }

    fn two_route_dp(scope: Option<&Scope>) -> FlowDatapath {
        let cfg = DatapathConfig::for_routes(2)
            .scheduler(SchedulerConfig::for_routes(2).initial_rates(&[10.0, 10.0]));
        FlowDatapath::new(&cfg, vec![route(&[1, 2]), route(&[3, 4])], scope)
    }

    #[test]
    fn admitted_packets_flow_source_to_destination() {
        let mut dp = two_route_dp(None);
        let mut pool = PktPool::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Outbox::new();
        let mut events = Vec::new();
        let mut delivered = 0u64;
        let mut t = 0.0;
        for _ in 0..50 {
            t += 0.01;
            match dp.admit(&mut pool, &mut rng, t, 12_000, &mut out) {
                AdmitOutcome::Dropped => {}
                AdmitOutcome::Admitted { pkt, route } => {
                    dp.stamp(&mut pool, &mut rng, t, pkt, 0.01, &mut out);
                    let h = pool.get(pkt).header;
                    pool.release(pkt);
                    events.clear();
                    delivered += dp.accept(route, h.seq, f64::from(h.price), &mut events);
                }
            }
        }
        assert!(delivered > 0, "packets flowed end to end");
        assert_eq!(pool.live(), 0, "every handle released");
        let ack = dp.maybe_ack(t).expect("ack due");
        assert_eq!(ack.delivered_packets, delivered);
    }

    #[test]
    fn ctrl_msgs_take_effect_at_tick_not_post() {
        let mut dp = two_route_dp(None);
        dp.post(CtrlMsg::SetRates(vec![1.0, 3.0]));
        assert_eq!(dp.total_rate(), 20.0, "posted rates are not live yet");
        dp.tick();
        assert_eq!(dp.total_rate(), 4.0);
    }

    #[test]
    fn replace_routes_rekeys_every_stage() {
        let mut dp = two_route_dp(None);
        let new_routes = vec![route(&[5, 6]), route(&[7, 8]), route(&[9, 10])];
        dp.post(CtrlMsg::ReplaceRoutes(new_routes));
        dp.post(CtrlMsg::SetRates(vec![1.0, 1.0, 1.0]));
        dp.tick();
        assert_eq!(dp.route_count(), 3);
        assert_eq!(dp.reorder_route_count(), 3);
        assert_eq!(dp.total_rate(), 3.0);
    }

    #[test]
    fn per_node_counters_register_under_the_scope() {
        let tel = Telemetry::enabled();
        let scope = tel.scope("flow/0");
        let mut dp = two_route_dp(Some(&scope));
        let mut pool = PktPool::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Outbox::new();
        let mut admitted = 0;
        let mut t = 0.0;
        for _ in 0..20 {
            t += 0.01;
            if let AdmitOutcome::Admitted { pkt, .. } =
                dp.admit(&mut pool, &mut rng, t, 12_000, &mut out)
            {
                admitted += 1;
                pool.release(pkt);
            }
        }
        let snap = tel.snapshot();
        let rc_in = snap.value("flow/0/route_choice/in").unwrap_or(0);
        let rc_out = snap.value("flow/0/route_choice/out").unwrap_or(0);
        let rc_drops = snap.value("flow/0/route_choice/drops").unwrap_or(0);
        assert_eq!(rc_in, 20);
        assert_eq!(rc_out, admitted);
        assert_eq!(rc_in, rc_out + rc_drops);
    }

    #[test]
    fn custom_nodes_slot_into_the_chain() {
        struct CountingTap(u64);
        impl Node for CountingTap {
            fn name(&self) -> &'static str {
                "tap"
            }
            fn process(&mut self, _pkt: PktHandle, _ctx: &mut GraphCtx<'_>) -> Disposition {
                self.0 += 1;
                Disposition::Next
            }
        }
        let mut graph = FlowGraph::new();
        graph.push(GraphNode::Custom(Box::new(CountingTap(0))), None);
        let mut pool = PktPool::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Outbox::new();
        let pkt = pool.insert_with(|p| p.reset());
        let mut ctx = GraphCtx {
            now: 0.0,
            pool: &mut pool,
            rng: &mut rng,
            price_contribution: 0.0,
            out: &mut out,
        };
        assert_eq!(graph.run(pkt, &mut ctx), ChainResult::Egress(pkt));
        match graph.node_mut(0) {
            GraphNode::Custom(_) => {}
            other => panic!("unexpected node {other:?}"),
        }
    }
}
