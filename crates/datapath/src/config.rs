//! Typed configuration builders for the datapath stages.
//!
//! The original API grew a constructor/setter sprawl per stage
//! (`RouteScheduler::new` / `with_bucket` / `set_probe_floor` /
//! `reset_routes` / `set_rates`, and friends on `ReorderBuffer` and
//! `DelayEqualizer`). These builders replace the constructor half of that
//! sprawl with one value per stage that names every knob; the *runtime*
//! half (rate vectors, route replacement, probe floors changing mid-flow)
//! is no longer a pile of `&mut` setters but a typed control-plane message
//! ([`crate::graph::CtrlMsg`]) drained at graph ticks.
//!
//! Migration from the old entry points. The free constructors in the
//! first three rows have been **removed** (the builders are the only
//! construction path); the mid-flow setters below them survive as
//! `#[deprecated]` shims only for the frozen reference engine:
//!
//! | old | new |
//! |---|---|
//! | `RouteScheduler::new(n)` (removed) | `SchedulerConfig::for_routes(n).build()` |
//! | `RouteScheduler::with_bucket(n, d)` (removed) | `SchedulerConfig::for_routes(n).bucket_depth_mb(d).build()` |
//! | `ReorderBuffer::new(n)` / `DelayEqualizer::new(n)` (removed) | `ReorderConfig::for_routes(n).build()` / `DelayEqConfig::for_routes(n).build()` |
//! | `sched.set_probe_floor(f)` | `SchedulerConfig::…​.probe_floor_mbps(f)`, or `CtrlMsg::SetProbeFloor(f)` mid-flow |
//! | `sched.set_rates(&x)` | `CtrlMsg::SetRates(x)` posted to the graph |
//! | `sched.reset_routes(n)` / `reorder.reset_routes(n)` | `CtrlMsg::ReplaceRoutes(routes)` posted to the graph |

use crate::delay_eq::DelayEqualizer;
use crate::reorder::ReorderBuffer;
use crate::scheduler::RouteScheduler;

/// Configuration of the source-side route scheduler (token-bucket
/// admission + weighted route choice).
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    routes: usize,
    bucket_depth_mb: f64,
    probe_floor_mbps: f64,
    initial_rates: Option<Vec<f64>>,
}

impl SchedulerConfig {
    /// A scheduler over `routes` routes with the historical defaults: a
    /// 0.05 Mb bucket (~4 × 12 kbit frames) and a 0.25 Mbps probe floor.
    pub fn for_routes(routes: usize) -> Self {
        SchedulerConfig {
            routes,
            bucket_depth_mb: 0.05,
            probe_floor_mbps: 0.25,
            initial_rates: None,
        }
    }

    /// Token-bucket depth in megabits (burst tolerance). Must hold at
    /// least one frame or everything is dropped.
    pub fn bucket_depth_mb(mut self, depth: f64) -> Self {
        self.bucket_depth_mb = depth;
        self
    }

    /// Price-probing floor in Mbps: a route's *selection weight* never
    /// drops below this so its price stays observable. Zero disables
    /// probing.
    pub fn probe_floor_mbps(mut self, floor: f64) -> Self {
        self.probe_floor_mbps = floor.max(0.0);
        self
    }

    /// Per-route rates to start with (open-loop flows). Controlled flows
    /// leave this unset and receive rates via `CtrlMsg::SetRates`.
    ///
    /// # Panics
    /// Panics at [`SchedulerConfig::build`] time if the length does not
    /// match the route count.
    pub fn initial_rates(mut self, rates: &[f64]) -> Self {
        self.initial_rates = Some(rates.to_vec());
        self
    }

    /// Number of routes this scheduler is keyed for.
    pub fn routes(&self) -> usize {
        self.routes
    }

    pub(crate) fn bucket_depth(&self) -> f64 {
        self.bucket_depth_mb
    }

    pub(crate) fn probe_floor(&self) -> f64 {
        self.probe_floor_mbps
    }

    pub(crate) fn rates(&self) -> Option<&[f64]> {
        self.initial_rates.as_deref()
    }

    /// Builds the scheduler.
    pub fn build(&self) -> RouteScheduler {
        RouteScheduler::from_config(self)
    }
}

/// Configuration of the destination-side reorder buffer.
#[derive(Debug, Clone)]
pub struct ReorderConfig {
    routes: usize,
    capacity: usize,
}

impl ReorderConfig {
    /// A reorder buffer keyed for `routes` routes with the historical
    /// 4096-packet memory bound.
    pub fn for_routes(routes: usize) -> Self {
        ReorderConfig { routes, capacity: 4096 }
    }

    /// Cap on buffered out-of-order packets (drop-oldest beyond this).
    pub fn capacity(mut self, packets: usize) -> Self {
        self.capacity = packets;
        self
    }

    /// Number of routes this buffer is keyed for.
    pub fn routes(&self) -> usize {
        self.routes
    }

    pub(crate) fn cap(&self) -> usize {
        self.capacity
    }

    /// Builds the buffer.
    pub fn build(&self) -> ReorderBuffer {
        ReorderBuffer::from_config(self)
    }
}

/// Configuration of the destination-side delay equalizer.
#[derive(Debug, Clone)]
pub struct DelayEqConfig {
    routes: usize,
    ewma: f64,
    max_hold_secs: f64,
}

impl DelayEqConfig {
    /// An equalizer for `routes` routes with the historical smoothing
    /// (EWMA 0.1) and hold cap (0.5 s).
    pub fn for_routes(routes: usize) -> Self {
        DelayEqConfig { routes, ewma: 0.1, max_hold_secs: 0.5 }
    }

    /// EWMA smoothing factor for the per-route delay estimates.
    pub fn ewma(mut self, alpha: f64) -> Self {
        self.ewma = alpha;
        self
    }

    /// Cap on artificially added delay, seconds.
    pub fn max_hold_secs(mut self, secs: f64) -> Self {
        self.max_hold_secs = secs;
        self
    }

    /// Number of routes this equalizer is keyed for.
    pub fn routes(&self) -> usize {
        self.routes
    }

    pub(crate) fn smoothing(&self) -> f64 {
        self.ewma
    }

    pub(crate) fn hold_cap(&self) -> f64 {
        self.max_hold_secs
    }

    /// Builds the equalizer.
    pub fn build(&self) -> DelayEqualizer {
        DelayEqualizer::from_config(self)
    }
}

/// Configuration of a complete per-flow datapath
/// ([`crate::graph::FlowDatapath`]): one entry per stage, all keyed to the
/// same route count.
#[derive(Debug, Clone)]
pub struct DatapathConfig {
    /// Source-side admission + route choice.
    pub scheduler: SchedulerConfig,
    /// Destination-side reordering.
    pub reorder: ReorderConfig,
    /// Optional destination-side delay equalization (TCP flows).
    pub delay_eq: Option<DelayEqConfig>,
}

impl DatapathConfig {
    /// A default datapath over `routes` routes, without delay equalization.
    pub fn for_routes(routes: usize) -> Self {
        DatapathConfig {
            scheduler: SchedulerConfig::for_routes(routes),
            reorder: ReorderConfig::for_routes(routes),
            delay_eq: None,
        }
    }

    /// Replaces the scheduler stage's configuration.
    pub fn scheduler(mut self, cfg: SchedulerConfig) -> Self {
        self.scheduler = cfg;
        self
    }

    /// Replaces the reorder stage's configuration.
    pub fn reorder(mut self, cfg: ReorderConfig) -> Self {
        self.reorder = cfg;
        self
    }

    /// Enables delay equalization with defaults matched to the route count.
    pub fn with_delay_eq(mut self) -> Self {
        self.delay_eq = Some(DelayEqConfig::for_routes(self.reorder.routes()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_defaults_match_the_historical_constructor() {
        let s = SchedulerConfig::for_routes(2).build();
        assert_eq!(s.total_rate(), 0.0);
        // Depth/floor are private; behavioural checks live in scheduler.rs.
        assert_eq!(SchedulerConfig::for_routes(2).routes(), 2);
    }

    #[test]
    fn initial_rates_apply() {
        let s = SchedulerConfig::for_routes(2).initial_rates(&[3.0, 1.0]).build();
        assert_eq!(s.total_rate(), 4.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_initial_rates_panic() {
        let _ = SchedulerConfig::for_routes(2).initial_rates(&[1.0]).build();
    }

    #[test]
    fn datapath_config_composes() {
        let cfg = DatapathConfig::for_routes(3).with_delay_eq();
        assert_eq!(cfg.scheduler.routes(), 3);
        assert_eq!(cfg.reorder.routes(), 3);
        assert_eq!(cfg.delay_eq.as_ref().map(DelayEqConfig::routes), Some(3));
    }
}
