//! The typed forwarding-graph nodes.
//!
//! Each stage of the layer-2.5 datapath is a [`Node`](crate::graph::Node):
//! `Decap → RouteChoice → PriceStamp → DelayEq → Reorder → Encap`. A node
//! owns its stage's state (the token bucket, the reorder buffer, …),
//! processes one pooled packet at a time, and reacts to control-plane
//! messages ([`CtrlMsg`]) drained at graph ticks. The heavy lifting stays
//! in the existing stage types ([`RouteScheduler`], [`ReorderBuffer`],
//! [`DelayEqualizer`]); the nodes adapt them to the graph contract and own
//! the route table that used to be smeared across the driver.
//!
//! Every node also exposes its core operation as a plain method (e.g.
//! [`RouteChoiceNode::offer`], [`ReorderNode::accept`]) so drivers that
//! interleave graph stages with their own bookkeeping — the simulator's
//! event loop — can call stages directly while sharing the exact state the
//! graph runs.

use empower_model::rng::Rng;

use crate::ack::{Ack, AckCollector};
use crate::config::{DelayEqConfig, ReorderConfig, SchedulerConfig};
use crate::delay_eq::DelayEqualizer;
use crate::graph::{CtrlMsg, Disposition, DropReason, GraphCtx, Node};
use crate::header::{EmpowerHeader, SourceRoute, HEADER_LEN};
use crate::pool::{Packet, PktHandle};
use crate::reorder::{ReorderBuffer, ReorderEvent};
use crate::scheduler::{RouteChoice, RouteScheduler};

/// Ingress parsing: decodes the 20-byte wire header off the front of the
/// payload and recovers the flow-local route index from the route table.
#[derive(Debug, Clone)]
pub struct DecapNode {
    routes: Vec<SourceRoute>,
}

impl DecapNode {
    /// A decapsulator recognizing the given source routes.
    pub fn new(routes: Vec<SourceRoute>) -> Self {
        DecapNode { routes }
    }

    /// The flow-local index of `route`, if known.
    pub fn route_index(&self, route: &SourceRoute) -> Option<usize> {
        self.routes.iter().position(|r| r == route)
    }
}

impl Node for DecapNode {
    fn name(&self) -> &'static str {
        "decap"
    }

    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        let p = ctx.pool.get_mut(pkt);
        if p.payload.len() < HEADER_LEN {
            return Disposition::Drop(DropReason::Malformed);
        }
        let header = match EmpowerHeader::decode(&mut &p.payload[..HEADER_LEN]) {
            Ok(h) => h,
            Err(_) => return Disposition::Drop(DropReason::Malformed),
        };
        let Some(route) = self.route_index(&header.route) else {
            return Disposition::Drop(DropReason::NoRoute);
        };
        p.header = header;
        p.route = route;
        p.payload.drain(..HEADER_LEN);
        Disposition::Next
    }

    fn handle_ctrl(&mut self, msg: &CtrlMsg) {
        if let CtrlMsg::ReplaceRoutes(routes) = msg {
            self.routes.clone_from(routes);
        }
    }
}

/// Source-side admission and route selection: the token bucket plus the
/// weighted `max(x_r, probe_floor)` route draw, stamping a fresh header
/// (route + next sequence number) on admitted packets.
#[derive(Debug, Clone)]
pub struct RouteChoiceNode {
    scheduler: RouteScheduler,
    routes: Vec<SourceRoute>,
}

impl RouteChoiceNode {
    /// A route chooser over `routes`, configured by `cfg`.
    ///
    /// # Panics
    /// Panics when the config's route count and the route table disagree.
    pub fn new(cfg: &SchedulerConfig, routes: Vec<SourceRoute>) -> Self {
        assert_eq!(cfg.routes(), routes.len(), "scheduler config keyed for a different route set");
        RouteChoiceNode { scheduler: cfg.build(), routes }
    }

    /// Offers one packet of `bits` bits to the token bucket; see
    /// [`RouteScheduler::offer`].
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, now: f64, bits: u64) -> RouteChoice {
        self.scheduler.offer(rng, now, bits)
    }

    /// Stamps an admitted packet: fresh header carrying route `r`'s source
    /// route and the next wire sequence number.
    pub fn assign(&mut self, p: &mut Packet, r: usize) {
        let seq = self.scheduler.next_seq();
        p.header = EmpowerHeader::new(self.routes[r], seq);
        p.route = r;
    }

    /// Current total admitted rate, Mbps.
    pub fn total_rate(&self) -> f64 {
        self.scheduler.total_rate()
    }

    /// Number of routes currently keyed.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }
}

impl Node for RouteChoiceNode {
    fn name(&self) -> &'static str {
        "route_choice"
    }

    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        let bits = ctx.pool.get(pkt).size_bits;
        match self.scheduler.offer(ctx.rng, ctx.now, bits) {
            RouteChoice::Drop => Disposition::Drop(DropReason::NoTokens),
            RouteChoice::Route(r) => {
                self.assign(ctx.pool.get_mut(pkt), r);
                Disposition::Next
            }
        }
    }

    fn handle_ctrl(&mut self, msg: &CtrlMsg) {
        match msg {
            CtrlMsg::SetRates(rates) => self.scheduler.apply_rates(rates),
            CtrlMsg::SetProbeFloor(floor) => self.scheduler.apply_probe_floor(*floor),
            CtrlMsg::ReplaceRoutes(routes) => {
                self.scheduler.rekey(routes.len());
                self.routes.clone_from(routes);
            }
        }
    }
}

/// Accumulates a forwarding node's price contribution into the header
/// (the Eq. (9) summand each hop adds to `q_r`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PriceStampNode;

impl PriceStampNode {
    /// The stamp itself, callable without a graph: forwarding hops in the
    /// simulator touch only this one stage.
    pub fn apply(header: &mut EmpowerHeader, contribution: f64) {
        header.add_price(contribution);
    }
}

impl Node for PriceStampNode {
    fn name(&self) -> &'static str {
        "price_stamp"
    }

    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        Self::apply(&mut ctx.pool.get_mut(pkt).header, ctx.price_contribution);
        Disposition::Next
    }
}

/// Destination-side delay equalization (§6.4): holds packets from fast
/// routes so all routes present comparable latency to TCP above.
#[derive(Debug, Clone)]
pub struct DelayEqNode {
    eq: DelayEqualizer,
}

impl DelayEqNode {
    /// An equalizer node configured by `cfg`.
    pub fn new(cfg: &DelayEqConfig) -> Self {
        DelayEqNode { eq: cfg.build() }
    }

    /// Records `route`'s observed one-way delay and returns the hold time;
    /// see [`DelayEqualizer::on_arrival`].
    pub fn hold_for(&mut self, route: usize, delay_secs: f64) -> f64 {
        self.eq.on_arrival(route, delay_secs)
    }

    /// Current delay estimate of a route.
    pub fn estimate(&self, route: usize) -> Option<f64> {
        self.eq.estimate(route)
    }
}

impl Node for DelayEqNode {
    fn name(&self) -> &'static str {
        "delay_eq"
    }

    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        let p = ctx.pool.get(pkt);
        let hold = self.hold_for(p.route, ctx.now - p.created_at);
        if hold > 1e-9 {
            // The driver re-injects the packet after the hold elapses.
            ctx.out.hold_secs = Some(hold);
            Disposition::Consumed
        } else {
            Disposition::Next
        }
    }

    fn handle_ctrl(&mut self, msg: &CtrlMsg) {
        if let CtrlMsg::ReplaceRoutes(routes) = msg {
            self.eq.rekey(routes.len());
        }
    }
}

/// Destination-side reordering plus price acknowledgements: the per-route
/// price observations and delivery counts feed the 100 ms paced ACKs.
#[derive(Debug, Clone)]
pub struct ReorderNode {
    reorder: ReorderBuffer,
    acks: AckCollector,
}

impl ReorderNode {
    /// A reorder + ACK stage configured by `cfg`.
    pub fn new(cfg: &ReorderConfig) -> Self {
        ReorderNode { reorder: cfg.build(), acks: AckCollector::new(cfg.routes()) }
    }

    /// Accepts a packet's (route, seq, price) triple: records the price
    /// observation, runs the all-routes-passed reorder logic (appending
    /// releasable events to `out`), counts deliveries for the next ACK, and
    /// returns how many packets were delivered in order.
    ///
    /// `route` must be a live route index (the caller applies any stale-
    /// route policy first).
    pub fn accept(
        &mut self,
        route: usize,
        seq: u32,
        price: f64,
        out: &mut Vec<ReorderEvent>,
    ) -> u64 {
        self.acks.observe_price(route, price);
        let start = out.len();
        self.reorder.accept_into(route, seq, out);
        let mut delivered = 0u64;
        for ev in &out[start..] {
            if matches!(ev, ReorderEvent::Deliver(_)) {
                self.acks.count_delivery();
                delivered += 1;
            }
        }
        delivered
    }

    /// The paced price acknowledgement, when one is due; see
    /// [`AckCollector::maybe_ack`].
    pub fn maybe_ack(&mut self, now: f64) -> Option<Ack> {
        self.acks.maybe_ack(now)
    }

    /// Number of routes currently keyed.
    pub fn route_count(&self) -> usize {
        self.reorder.route_count()
    }

    /// Packets buffered out of order.
    pub fn buffered(&self) -> usize {
        self.reorder.buffered()
    }

    /// The next in-order sequence number expected.
    pub fn expected(&self) -> u32 {
        self.reorder.expected()
    }
}

impl Node for ReorderNode {
    fn name(&self) -> &'static str {
        "reorder"
    }

    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        let p = ctx.pool.get(pkt);
        if p.route >= self.reorder.route_count() {
            return Disposition::Drop(DropReason::Stale);
        }
        let (route, seq, price) = (p.route, p.header.seq, f64::from(p.header.price));
        ctx.pool.release(pkt);
        self.accept(route, seq, price, &mut ctx.out.reorder);
        Disposition::Consumed
    }

    fn handle_ctrl(&mut self, msg: &CtrlMsg) {
        if let CtrlMsg::ReplaceRoutes(routes) = msg {
            // High-water marks restart (the loss rule waits for the new
            // routes); the ACK pacing clock restarts with them.
            self.reorder.rekey(routes.len());
            self.acks = AckCollector::new(routes.len());
        }
    }
}

/// Egress framing: serializes the wire header ahead of the payload into
/// the outbox's reusable frame buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncapNode;

impl Node for EncapNode {
    fn name(&self) -> &'static str {
        "encap"
    }

    fn process(&mut self, pkt: PktHandle, ctx: &mut GraphCtx<'_>) -> Disposition {
        let p = ctx.pool.get(pkt);
        ctx.out.frame.clear();
        p.header.encode(&mut ctx.out.frame);
        ctx.out.frame.extend_from_slice(&p.payload);
        Disposition::Next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Outbox;
    use crate::iface_id::IfaceId;
    use crate::pool::PktPool;
    use empower_model::rng::{SeedableRng, StdRng};

    fn route(ids: &[u16]) -> SourceRoute {
        let hops: Vec<IfaceId> = ids.iter().map(|&i| IfaceId(i)).collect();
        SourceRoute::new(&hops).unwrap()
    }

    fn ctx_parts() -> (PktPool, StdRng, Outbox) {
        (PktPool::new(), StdRng::seed_from_u64(7), Outbox::default())
    }

    #[test]
    fn decap_recovers_header_and_route() {
        let routes = vec![route(&[1, 2]), route(&[3, 4])];
        let mut decap = DecapNode::new(routes.clone());
        let (mut pool, mut rng, mut out) = ctx_parts();

        let mut h = EmpowerHeader::new(routes[1], 42);
        h.add_price(0.25);
        let pkt = pool.insert_with(|p| {
            p.reset();
            h.encode(&mut p.payload);
            p.payload.extend_from_slice(b"hello");
        });
        let mut ctx = GraphCtx {
            now: 0.0,
            pool: &mut pool,
            rng: &mut rng,
            price_contribution: 0.0,
            out: &mut out,
        };
        assert_eq!(decap.process(pkt, &mut ctx), Disposition::Next);
        let p = pool.get(pkt);
        assert_eq!(p.route, 1);
        assert_eq!(p.header.seq, 42);
        assert_eq!(p.payload, b"hello");
    }

    #[test]
    fn decap_rejects_unknown_routes_and_short_frames() {
        let mut decap = DecapNode::new(vec![route(&[1, 2])]);
        let (mut pool, mut rng, mut out) = ctx_parts();

        let pkt = pool.insert_with(|p| {
            p.reset();
            EmpowerHeader::new(route(&[9, 9]), 0).encode(&mut p.payload);
        });
        let mut ctx = GraphCtx {
            now: 0.0,
            pool: &mut pool,
            rng: &mut rng,
            price_contribution: 0.0,
            out: &mut out,
        };
        assert_eq!(decap.process(pkt, &mut ctx), Disposition::Drop(DropReason::NoRoute));

        let short = ctx.pool.insert_with(|p| {
            p.reset();
            p.payload.extend_from_slice(&[0u8; HEADER_LEN - 1]);
        });
        assert_eq!(decap.process(short, &mut ctx), Disposition::Drop(DropReason::Malformed));
    }

    #[test]
    fn route_choice_assigns_sequences_and_routes() {
        let routes = vec![route(&[1, 2]), route(&[3, 4])];
        let cfg = SchedulerConfig::for_routes(2).initial_rates(&[10.0, 10.0]);
        let mut rc = RouteChoiceNode::new(&cfg, routes.clone());
        let (mut pool, mut rng, mut out) = ctx_parts();

        let mut seqs = Vec::new();
        let mut t = 0.0;
        for _ in 0..4 {
            t += 0.01;
            let pkt = pool.insert_with(|p| {
                p.reset();
                p.size_bits = 12_000;
            });
            let mut ctx = GraphCtx {
                now: t,
                pool: &mut pool,
                rng: &mut rng,
                price_contribution: 0.0,
                out: &mut out,
            };
            if rc.process(pkt, &mut ctx) == Disposition::Next {
                let p = pool.get(pkt);
                assert_eq!(p.header.route, routes[p.route]);
                seqs.push(p.header.seq);
            }
            pool.release(pkt);
        }
        assert!(!seqs.is_empty());
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "wire sequence numbers increment");
        }
    }

    #[test]
    fn reorder_node_counts_deliveries_and_acks() {
        let mut node = ReorderNode::new(&ReorderConfig::for_routes(2));
        let mut out = Vec::new();
        assert_eq!(node.accept(0, 0, 0.5, &mut out), 1);
        out.clear();
        assert_eq!(node.accept(1, 1, 0.7, &mut out), 1);
        let ack = node.maybe_ack(0.2).expect("ack due");
        assert_eq!(ack.delivered_packets, 2);
        assert_eq!(ack.route_prices, vec![Some(0.5), Some(0.7)]);
    }

    #[test]
    fn delay_eq_node_consumes_held_packets() {
        let mut node = DelayEqNode::new(&DelayEqConfig::for_routes(2));
        let (mut pool, mut rng, mut out) = ctx_parts();
        // Prime: route 1 is slow.
        node.hold_for(1, 0.2);
        let pkt = pool.insert_with(|p| {
            p.reset();
            p.route = 0;
            p.created_at = 1.0;
        });
        let mut ctx = GraphCtx {
            now: 1.01,
            pool: &mut pool,
            rng: &mut rng,
            price_contribution: 0.0,
            out: &mut out,
        };
        assert_eq!(node.process(pkt, &mut ctx), Disposition::Consumed);
        let hold = out.hold_secs.expect("fast route is held");
        assert!(hold > 0.1, "hold {hold}");
    }

    #[test]
    fn encap_then_decap_round_trips() {
        let routes = vec![route(&[1, 2])];
        let mut encap = EncapNode;
        let mut decap = DecapNode::new(routes.clone());
        let (mut pool, mut rng, mut out) = ctx_parts();

        let pkt = pool.insert_with(|p| {
            p.reset();
            p.header = EmpowerHeader::new(routes[0], 9);
            p.payload.extend_from_slice(b"payload");
        });
        let mut ctx = GraphCtx {
            now: 0.0,
            pool: &mut pool,
            rng: &mut rng,
            price_contribution: 0.0,
            out: &mut out,
        };
        assert_eq!(encap.process(pkt, &mut ctx), Disposition::Next);
        let frame = ctx.out.frame.clone();
        assert_eq!(frame.len(), HEADER_LEN + 7);

        let rx = ctx.pool.insert_with(|p| {
            p.reset();
            p.payload.extend_from_slice(&frame);
        });
        assert_eq!(decap.process(rx, &mut ctx), Disposition::Next);
        let p = pool.get(rx);
        assert_eq!(p.header.seq, 9);
        assert_eq!(p.payload, b"payload");
    }
}
