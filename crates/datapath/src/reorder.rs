//! Destination-side packet reordering (§6.1).
//!
//! "The header contains a 4-byte sequence number, which is used by the
//! destination for reordering packets that arrive from different routes. We
//! do not use timeouts for missing packets. To identify a lost packet, the
//! destination stores the last sequence number received from each route: a
//! packet with a sequence number S is lost when it has received packets with
//! sequence number greater than S on all routes from a certain source."

use std::collections::BTreeMap;

use crate::config::ReorderConfig;

/// What the reorder buffer releases to the upper layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderEvent {
    /// Packet with this sequence number delivered in order.
    Deliver(u32),
    /// This sequence number was declared lost (skipped).
    Lost(u32),
}

/// Per-(source-)flow reorder buffer.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    /// Next sequence number the upper layer expects.
    next_seq: u32,
    /// Out-of-order packets waiting.
    pending: BTreeMap<u32, ()>,
    /// Highest sequence number seen per route (indexed by route id).
    highest_per_route: Vec<Option<u32>>,
    /// Cap on buffered packets (drop-oldest beyond this; real memory bound).
    capacity: usize,
}

impl ReorderBuffer {
    /// Builds a buffer from its typed configuration (the non-deprecated
    /// construction path; see [`ReorderConfig`]).
    pub(crate) fn from_config(cfg: &ReorderConfig) -> Self {
        ReorderBuffer {
            next_seq: 0,
            pending: BTreeMap::new(),
            highest_per_route: vec![None; cfg.routes()],
            capacity: cfg.cap(),
        }
    }

    /// Number of packets currently buffered out of order.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// The next in-order sequence number expected.
    pub fn expected(&self) -> u32 {
        self.next_seq
    }

    /// Number of routes the buffer is currently keyed for.
    pub fn route_count(&self) -> usize {
        self.highest_per_route.len()
    }

    /// Re-keys the buffer for a new route set (route recomputation after a
    /// failure, §3.2): the expected sequence number and any buffered
    /// packets survive; the per-route high-water marks restart, so the
    /// loss rule waits until every *new* route has carried traffic.
    #[deprecated(note = "post `CtrlMsg::ReplaceRoutes` to the graph instead")]
    pub fn reset_routes(&mut self, route_count: usize) {
        self.rekey(route_count);
    }

    /// Control-plane handler behind `CtrlMsg::ReplaceRoutes` (see the
    /// deprecated [`ReorderBuffer::reset_routes`] for semantics).
    pub(crate) fn rekey(&mut self, route_count: usize) {
        self.highest_per_route = vec![None; route_count];
    }

    /// Accepts a packet that arrived on `route` with sequence `seq` and
    /// returns everything releasable, in order.
    pub fn accept(&mut self, route: usize, seq: u32) -> Vec<ReorderEvent> {
        let mut out = Vec::new();
        self.accept_into(route, seq, &mut out);
        out
    }

    /// Allocation-free variant of [`ReorderBuffer::accept`]: appends the
    /// releasable events to `out` (which the caller typically clears and
    /// reuses across packets). A stale duplicate appends nothing.
    pub fn accept_into(&mut self, route: usize, seq: u32, out: &mut Vec<ReorderEvent>) {
        let hi = &mut self.highest_per_route[route];
        if hi.is_none_or(|h| seq > h) {
            *hi = Some(seq);
        }
        if seq < self.next_seq {
            return; // stale duplicate
        }
        self.pending.insert(seq, ());
        if self.pending.len() > self.capacity {
            // Memory bound: force delivery up to the oldest buffered packet
            // (the over-capacity buffer is necessarily non-empty).
            if let Some(&oldest) = self.pending.keys().next() {
                while self.next_seq < oldest {
                    out.push(ReorderEvent::Lost(self.next_seq));
                    self.next_seq += 1;
                }
            }
        }
        self.drain(out);
    }

    /// Applies the all-routes-passed loss rule and releases in-order data.
    fn drain(&mut self, out: &mut Vec<ReorderEvent>) {
        loop {
            if self.pending.remove(&self.next_seq).is_some() {
                out.push(ReorderEvent::Deliver(self.next_seq));
                self.next_seq += 1;
                continue;
            }
            // next_seq missing: lost iff every route has seen beyond it.
            let all_passed = !self.highest_per_route.is_empty()
                && self.highest_per_route.iter().all(|h| h.is_some_and(|hi| hi > self.next_seq));
            if all_passed {
                out.push(ReorderEvent::Lost(self.next_seq));
                self.next_seq += 1;
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ReorderEvent::{Deliver, Lost};

    #[test]
    fn in_order_delivery_is_immediate() {
        let mut b = ReorderConfig::for_routes(2).build();
        assert_eq!(b.accept(0, 0), vec![Deliver(0)]);
        assert_eq!(b.accept(1, 1), vec![Deliver(1)]);
        assert_eq!(b.accept(0, 2), vec![Deliver(2)]);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn out_of_order_waits_for_the_gap() {
        let mut b = ReorderConfig::for_routes(2).build();
        // seq 1 arrives on route 0 before seq 0: route 1 hasn't passed 0
        // yet, so 0 may still arrive there — hold 1.
        assert_eq!(b.accept(0, 1), vec![]);
        assert_eq!(b.buffered(), 1);
        assert_eq!(b.accept(1, 0), vec![Deliver(0), Deliver(1)]);
    }

    #[test]
    fn loss_declared_when_all_routes_passed() {
        let mut b = ReorderConfig::for_routes(2).build();
        // seq 0 never arrives; both routes deliver beyond it.
        assert_eq!(b.accept(0, 1), vec![]);
        assert_eq!(b.accept(1, 2), vec![Lost(0), Deliver(1), Deliver(2)]);
    }

    #[test]
    fn single_route_losses_resolve_immediately_on_next_packet() {
        let mut b = ReorderConfig::for_routes(1).build();
        assert_eq!(b.accept(0, 0), vec![Deliver(0)]);
        // 1 lost; 2 arrives on the only route → 1 declared lost.
        assert_eq!(b.accept(0, 2), vec![Lost(1), Deliver(2)]);
    }

    #[test]
    fn slow_route_defers_loss_declaration() {
        let mut b = ReorderConfig::for_routes(2).build();
        // Route 0 races ahead; route 1 is silent: nothing can be declared.
        assert_eq!(b.accept(0, 5), vec![]);
        assert_eq!(b.accept(0, 6), vec![]);
        assert_eq!(b.buffered(), 2);
        // Route 1 finally passes seq 4: 0..=4 lost, 5 and 6 deliver.
        let events = b.accept(1, 7);
        assert_eq!(
            events,
            vec![Lost(0), Lost(1), Lost(2), Lost(3), Lost(4), Deliver(5), Deliver(6), Deliver(7)]
        );
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut b = ReorderConfig::for_routes(1).build();
        assert_eq!(b.accept(0, 0), vec![Deliver(0)]);
        assert_eq!(b.accept(0, 0), vec![]);
    }

    #[test]
    fn capacity_bound_forces_progress() {
        let mut b = ReorderConfig::for_routes(2).capacity(8).build();
        // Fill beyond capacity with a hole at 0 (route 1 stays behind).
        let mut forced = Vec::new();
        for s in 1..=9 {
            forced.extend(b.accept(0, s));
        }
        // The forced drain declares seq 0 lost and flushes the buffer.
        assert!(forced.contains(&Lost(0)));
        assert!(forced.contains(&Deliver(9)));
        assert!(b.buffered() <= 8);
    }

    #[test]
    fn accept_into_matches_accept_and_reuses_the_buffer() {
        let mut a = ReorderConfig::for_routes(2).build();
        let mut b = ReorderConfig::for_routes(2).build();
        let mut out = Vec::new();
        let arrivals = [(0, 1u32), (1, 0), (0, 2), (1, 4), (0, 3), (0, 3), (1, 6)];
        for (r, s) in arrivals {
            out.clear();
            b.accept_into(r, s, &mut out);
            assert_eq!(a.accept(r, s), out, "route {r} seq {s}");
        }
    }

    #[test]
    fn interleaved_two_route_stream_delivers_everything_in_order() {
        let mut b = ReorderConfig::for_routes(2).build();
        let mut delivered = Vec::new();
        // Route 0 gets even seqs, route 1 odd. Each route is FIFO (packets
        // on one route cannot overtake each other), but the two routes
        // interleave arbitrarily.
        let arrivals =
            [(0, 0u32), (1, 1), (0, 2), (0, 4), (1, 3), (1, 5), (0, 6), (1, 7), (0, 8), (1, 9)];
        for (r, s) in arrivals {
            for ev in b.accept(r, s) {
                if let Deliver(x) = ev {
                    delivered.push(x);
                }
            }
        }
        assert_eq!(delivered, (0..=9).collect::<Vec<u32>>());
    }
}
