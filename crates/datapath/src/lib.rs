#![forbid(unsafe_code)]
//! # empower-datapath
//!
//! The layer-2.5 datapath of EMPoWER (§6.1): everything that sits between
//! the MAC below and IP above on the wire.
//!
//! The protocol header has a fixed size of **20 bytes**:
//!
//! | bytes | field |
//! |---|---|
//! | 0–11 | source route: up to 6 hops, 2 bytes per ingress-interface id |
//! | 12–15 | the route price `q_r`, accumulated hop by hop (IEEE-754 f32) |
//! | 16–19 | sequence number (u32), used by the destination to reorder |
//!
//! Interface ids are short hashes of the interfaces' MAC addresses. Source
//! routing means intermediate nodes do no route lookups: they find the next
//! ingress interface in the header and forward (`Check Dst` → `Fwd` in the
//! paper's Fig. 2). The destination reorders packets by sequence number,
//! declares a packet lost "when it has received packets with sequence number
//! greater than S on all routes", tracks the latest `q_r` per route, and
//! acknowledges every 100 ms over the best single path.

//!
//! Since the forwarding-graph redesign the datapath is assembled from
//! typed nodes over a pooled packet store (see [`graph`] and [`nodes`]),
//! configured through builders ([`config`]) and driven by pluggable
//! packet I/O backends ([`backend`]): the discrete-event simulator and a
//! real UDP socket run the same stage code.

pub mod ack;
pub mod backend;
pub mod config;
pub mod delay_eq;
pub mod graph;
pub mod header;
pub mod iface_id;
pub mod nodes;
pub mod pool;
pub mod reorder;
pub mod scheduler;
pub mod wire;

pub use ack::{Ack, AckCollector, ACK_INTERVAL_SECS};
pub use backend::{DestEndpoint, IoError, PacketIo, SourceEndpoint};
pub use config::{DatapathConfig, DelayEqConfig, ReorderConfig, SchedulerConfig};
pub use delay_eq::DelayEqualizer;
pub use graph::{
    AdmitOutcome, ChainResult, CtrlMsg, Disposition, DropReason, FlowDatapath, FlowGraph, GraphCtx,
    GraphNode, Node, NodeCounters, Outbox,
};
pub use header::{EmpowerHeader, HeaderError, SourceRoute, HEADER_LEN, MAX_HOPS};
pub use iface_id::{IfaceId, IfaceRegistry};
pub use nodes::{DecapNode, DelayEqNode, EncapNode, PriceStampNode, ReorderNode, RouteChoiceNode};
pub use pool::{Handle, Packet, PktHandle, PktPool, Pool};
pub use reorder::{ReorderBuffer, ReorderEvent};
pub use scheduler::{RouteChoice, RouteScheduler};
