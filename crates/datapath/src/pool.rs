//! Pooled packet storage shared by the forwarding graph and its drivers.
//!
//! The free-list slab pattern proved out in the simulator's hot path
//! (PR 5): slots are recycled through a LIFO free list, so after warm-up
//! the steady-state packet churn performs no heap allocation — `insert`
//! overwrites a freed slot in place and `release` just pushes the index
//! back. Queues and node pipelines hold 4-byte [`Handle`]s instead of
//! moving packet-sized structs around.
//!
//! [`Pool`] is generic so both the graph's wire packets ([`Packet`]) and
//! the simulator's frames pool through the same code; `empower-sim`
//! re-exports its `PacketSlab`/`PacketId` as aliases of `Pool`/[`Handle`].

use crate::header::EmpowerHeader;

/// Handle into a [`Pool`]: 4 bytes, `Copy`, index-stable for the life of
/// the pooled item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle(pub u32);

/// Free-list slab pooling `T` storage.
#[derive(Debug, Default)]
pub struct Pool<T> {
    slots: Vec<T>,
    free: Vec<u32>,
    hits: u64,
    grows: u64,
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool { slots: Vec::new(), free: Vec::new(), hits: 0, grows: 0 }
    }

    /// Stores `item`, reusing a freed slot when one exists. Note that this
    /// *overwrites* the recycled slot (dropping whatever buffers the old
    /// value owned); use [`Pool::insert_with`] to recycle in place.
    pub fn insert(&mut self, item: T) -> Handle {
        if let Some(idx) = self.free.pop() {
            self.hits += 1;
            self.slots[idx as usize] = item;
            Handle(idx)
        } else {
            self.grows += 1;
            let idx = self.slots.len() as u32;
            self.slots.push(item);
            Handle(idx)
        }
    }

    /// Returns `h`'s slot to the free list. The slot's contents stay in
    /// place until a later insert reuses them; reading through a released
    /// handle is a logic error the debug assertion catches.
    pub fn release(&mut self, h: Handle) {
        debug_assert!(!self.free.contains(&h.0), "double release of {h:?}");
        self.free.push(h.0);
    }

    /// Read access to a live item.
    pub fn get(&self, h: Handle) -> &T {
        &self.slots[h.0 as usize]
    }

    /// Write access to a live item.
    pub fn get_mut(&mut self, h: Handle) -> &mut T {
        &mut self.slots[h.0 as usize]
    }

    /// Inserts that reused a freed slot (no allocation).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Inserts that grew the pool (one allocation-class event each).
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Items currently live (inserted and not yet released).
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

impl<T: Default> Pool<T> {
    /// Allocates a slot and initializes it **in place** via `init`: a
    /// recycled slot is *not* overwritten with a fresh `T` first, so any
    /// heap buffers the old value owned (e.g. [`Packet::payload`]
    /// capacity) survive for reuse. `init` is responsible for resetting
    /// every field it cares about.
    pub fn insert_with(&mut self, init: impl FnOnce(&mut T)) -> Handle {
        let h = if let Some(idx) = self.free.pop() {
            self.hits += 1;
            Handle(idx)
        } else {
            self.grows += 1;
            let idx = self.slots.len() as u32;
            self.slots.push(T::default());
            Handle(idx)
        };
        init(&mut self.slots[h.0 as usize]);
        h
    }
}

/// One packet moving through the forwarding graph: the wire header, the
/// flow-local route index it rides, bookkeeping for delay accounting, and
/// a payload buffer whose capacity is recycled by the pool.
#[derive(Debug, Clone, Default)]
pub struct Packet {
    /// The 20-byte layer-2.5 wire header.
    pub header: EmpowerHeader,
    /// Flow-local route index (assigned by `RouteChoice` at the source,
    /// recovered by `Decap` at the destination).
    pub route: usize,
    /// Emission time at the source, seconds of the driver's clock.
    pub created_at: f64,
    /// Frame size on the wire, bits (header + payload).
    pub size_bits: u64,
    /// Application payload (post-`Decap`: without the wire header).
    pub payload: Vec<u8>,
}

impl Packet {
    /// Resets every field for slot recycling, keeping the payload buffer's
    /// capacity. [`Pool::insert_with`] initializers call this first.
    pub fn reset(&mut self) {
        self.header = EmpowerHeader::default();
        self.route = 0;
        self.created_at = 0.0;
        self.size_bits = 0;
        self.payload.clear();
    }
}

/// The forwarding graph's packet pool.
pub type PktPool = Pool<Packet>;
/// Handle to a packet in a [`PktPool`].
pub type PktHandle = Handle;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_recycle_lifo() {
        let mut pool: Pool<u64> = Pool::new();
        let a = pool.insert(1);
        let b = pool.insert(2);
        assert_eq!(pool.grows(), 2);
        assert_eq!(pool.live(), 2);
        pool.release(a);
        let c = pool.insert(3);
        assert_eq!(c, a, "freed slot is reused LIFO");
        assert_eq!(pool.hits(), 1);
        assert_eq!(*pool.get(c), 3);
        assert_eq!(*pool.get(b), 2);
    }

    #[test]
    fn insert_with_keeps_payload_capacity() {
        let mut pool: PktPool = Pool::new();
        let h = pool.insert_with(|p| {
            p.reset();
            p.payload.extend_from_slice(&[0u8; 256]);
        });
        let cap = pool.get(h).payload.capacity();
        assert!(cap >= 256);
        pool.release(h);
        let h2 = pool.insert_with(|p| p.reset());
        assert_eq!(h2, h);
        assert_eq!(pool.get(h2).payload.len(), 0);
        assert_eq!(pool.get(h2).payload.capacity(), cap, "buffer capacity survives recycling");
    }

    #[test]
    fn steady_state_churn_stops_growing() {
        let mut pool: PktPool = Pool::new();
        let mut live = Vec::new();
        for i in 0..10_000u32 {
            live.push(pool.insert_with(Packet::reset));
            if live.len() > 8 {
                pool.release(live.remove(0));
            }
            if i == 100 {
                // After warm-up the pool never grows again.
                assert!(pool.grows() <= 9 + 1);
            }
        }
        assert!(pool.grows() <= 10, "steady-state churn must not grow the pool");
        assert!(pool.hits() > 9_000);
    }
}
