//! Source-side packet scheduling (§6.1).
//!
//! "If several routes exist, each packet is sent over route r with a
//! probability proportional to the rate x_r." The scheduler also enforces
//! the flow's total rate with a token bucket: "our congestion controller …
//! drops packets if the rate sent by the above layers goes above the total
//! rate for the flow" (§6.4) — that drop signal is what TCP perceives as
//! congestion.

use empower_model::rng::Rng;

use crate::config::SchedulerConfig;

/// Outcome of offering one packet to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// Send on this route index.
    Route(usize),
    /// The flow's admitted rate is exhausted: drop (TCP sees congestion).
    Drop,
}

/// Weighted route picker + token-bucket admission for one flow.
#[derive(Debug, Clone)]
pub struct RouteScheduler {
    /// Current per-route rates `x_r`, Mbps.
    rates: Vec<f64>,
    /// Token bucket level, megabits.
    tokens: f64,
    /// Bucket depth, megabits (burst tolerance).
    bucket_depth: f64,
    /// Last refill time, seconds.
    last_refill: f64,
    /// Next sequence number to stamp.
    next_seq: u32,
    /// Price-probing floor, Mbps: a route's *selection weight* never drops
    /// below this, so every route keeps carrying a trickle of packets and
    /// its price `q_r` stays observable. Without it, a route whose rate the
    /// controller drove to zero could never learn that its price has since
    /// dropped (no packets → no fresh `q_r` in ACKs → deadlock).
    probe_floor: f64,
}

impl RouteScheduler {
    /// Builds a scheduler from its typed configuration (the non-deprecated
    /// construction path; see [`SchedulerConfig`]).
    pub(crate) fn from_config(cfg: &SchedulerConfig) -> Self {
        assert!(cfg.bucket_depth() > 0.0);
        let mut s = RouteScheduler {
            rates: vec![0.0; cfg.routes()],
            tokens: 0.0,
            bucket_depth: cfg.bucket_depth(),
            last_refill: 0.0,
            next_seq: 0,
            probe_floor: cfg.probe_floor().max(0.0),
        };
        if let Some(rates) = cfg.rates() {
            s.apply_rates(rates);
        }
        s
    }

    /// Overrides the price-probing floor (Mbps). Zero disables probing.
    #[deprecated(note = "configure via `SchedulerConfig::probe_floor_mbps`, or post \
                `CtrlMsg::SetProbeFloor` to the graph mid-flow")]
    pub fn set_probe_floor(&mut self, floor_mbps: f64) {
        self.apply_probe_floor(floor_mbps);
    }

    /// Re-keys the scheduler for a new route set, zeroing the rates but
    /// preserving the token bucket and — crucially — the wire sequence
    /// counter (the destination's reorder buffer lives across route
    /// recomputations).
    #[deprecated(note = "post `CtrlMsg::ReplaceRoutes` to the graph instead")]
    pub fn reset_routes(&mut self, route_count: usize) {
        self.rekey(route_count);
    }

    /// Updates the per-route rates from the congestion controller.
    #[deprecated(note = "post `CtrlMsg::SetRates` to the graph instead")]
    pub fn set_rates(&mut self, rates: &[f64]) {
        self.apply_rates(rates);
    }

    /// Control-plane handler behind `CtrlMsg::SetProbeFloor`.
    pub(crate) fn apply_probe_floor(&mut self, floor_mbps: f64) {
        self.probe_floor = floor_mbps.max(0.0);
    }

    /// Control-plane handler behind `CtrlMsg::ReplaceRoutes` (see
    /// the deprecated [`RouteScheduler::reset_routes`] for semantics).
    pub(crate) fn rekey(&mut self, route_count: usize) {
        self.rates = vec![0.0; route_count];
    }

    /// Control-plane handler behind `CtrlMsg::SetRates`.
    pub(crate) fn apply_rates(&mut self, rates: &[f64]) {
        assert_eq!(rates.len(), self.rates.len());
        self.rates.copy_from_slice(rates);
    }

    /// Current total admitted rate, Mbps.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Offers one packet of `bits` bits at time `now`; returns the route to
    /// use (and consumes tokens) or [`RouteChoice::Drop`].
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, now: f64, bits: u64) -> RouteChoice {
        let total = self.total_rate();
        // Refill: rate is Mbps = Mb/s; tokens are Mb.
        let elapsed = (now - self.last_refill).max(0.0);
        self.tokens = (self.tokens + total * elapsed).min(self.bucket_depth);
        self.last_refill = now;
        let need = bits as f64 / 1e6;
        if total <= 0.0 || self.tokens < need {
            return RouteChoice::Drop;
        }
        self.tokens -= need;
        // Weighted route choice ∝ max(x_r, probe floor): proportional to
        // the controller's split, with a trickle on quiet routes to keep
        // their prices observable.
        let weights: Vec<f64> = self.rates.iter().map(|&x| x.max(self.probe_floor)).collect();
        let sum: f64 = weights.iter().sum();
        let mut draw = rng.gen::<f64>() * sum;
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return RouteChoice::Route(i);
            }
            draw -= w;
        }
        RouteChoice::Route(self.rates.len() - 1)
    }

    /// Stamps and returns the next sequence number.
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::rng::SeedableRng;
    use empower_model::rng::StdRng;

    #[test]
    fn zero_rate_drops_everything() {
        let mut s = SchedulerConfig::for_routes(2).build();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.offer(&mut rng, 0.0, 12000), RouteChoice::Drop);
    }

    #[test]
    fn route_choice_is_proportional_to_rates() {
        let mut s = SchedulerConfig::for_routes(2).initial_rates(&[30.0, 10.0]).build();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 2];
        let mut t = 0.0;
        for _ in 0..40_000 {
            t += 0.001; // plenty of tokens at 40 Mbps
            if let RouteChoice::Route(r) = s.offer(&mut rng, t, 12000) {
                counts[r] += 1;
            }
        }
        let frac = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn token_bucket_enforces_the_total_rate() {
        let mut s = SchedulerConfig::for_routes(1).initial_rates(&[10.0]).build(); // 10 Mbps
        let mut rng = StdRng::seed_from_u64(3);
        // Offer 1500 B packets every 0.5 ms for 1 s → offered 24 Mbps.
        let mut sent_bits = 0u64;
        let mut t = 0.0;
        while t < 1.0 {
            if let RouteChoice::Route(_) = s.offer(&mut rng, t, 12000) {
                sent_bits += 12000;
            }
            t += 0.0005;
        }
        let rate = sent_bits as f64 / 1e6;
        assert!((rate - 10.0).abs() < 0.5, "admitted {rate} Mbps");
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut s = SchedulerConfig::for_routes(1).build();
        assert_eq!(s.next_seq(), 0);
        assert_eq!(s.next_seq(), 1);
        assert_eq!(s.next_seq(), 2);
    }

    #[test]
    fn probe_floor_keeps_quiet_routes_sampled() {
        let mut s = SchedulerConfig::for_routes(2).initial_rates(&[0.0, 20.0]).build();
        let mut rng = StdRng::seed_from_u64(9);
        let mut t = 0.0;
        let mut probe_hits = 0;
        for _ in 0..20_000 {
            t += 0.001;
            if let RouteChoice::Route(0) = s.offer(&mut rng, t, 12000) {
                probe_hits += 1;
            }
        }
        // Expected share ≈ 0.25 / 20.25 ≈ 1.2 %.
        assert!(probe_hits > 50, "quiet route got {probe_hits} probes");
    }

    #[test]
    fn rate_updates_take_effect() {
        let mut s = SchedulerConfig::for_routes(2).probe_floor_mbps(0.0).build();
        s.apply_rates(&[0.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = 0.0;
        for _ in 0..100 {
            t += 0.01;
            if let RouteChoice::Route(r) = s.offer(&mut rng, t, 12000) {
                assert_eq!(r, 1, "only route 1 has rate");
            }
        }
    }
}
