//! In-memory loopback backend.
//!
//! A [`SimBackend`] pair shares two frame queues: what one side sends the
//! other receives, in order, with optional deterministic loss injection.
//! Tests and the simulator use it to drive the exact node code the UDP
//! backend runs, without sockets.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use super::{IoError, PacketIo};

type FrameQueue = Rc<RefCell<VecDeque<Vec<u8>>>>;

/// One side of an in-memory loopback pair.
pub struct SimBackend {
    tx: FrameQueue,
    rx: FrameQueue,
    sent: u64,
    drop_every: Option<u64>,
}

impl SimBackend {
    /// A connected pair: frames sent on either side arrive at the other.
    pub fn pair() -> (SimBackend, SimBackend) {
        let ab: FrameQueue = Rc::new(RefCell::new(VecDeque::new()));
        let ba: FrameQueue = Rc::new(RefCell::new(VecDeque::new()));
        (
            SimBackend { tx: Rc::clone(&ab), rx: Rc::clone(&ba), sent: 0, drop_every: None },
            SimBackend { tx: ba, rx: ab, sent: 0, drop_every: None },
        )
    }

    /// Deterministic loss injection: silently drops every `k`-th sent
    /// frame (the k-th, 2k-th, …). `k = 0` disables.
    pub fn drop_every(mut self, k: u64) -> Self {
        self.drop_every = (k > 0).then_some(k);
        self
    }

    /// Frames waiting to be received on this side.
    pub fn pending(&self) -> usize {
        self.rx.borrow().len()
    }
}

impl PacketIo for SimBackend {
    fn send(&mut self, frame: &[u8]) -> Result<(), IoError> {
        self.sent += 1;
        if let Some(k) = self.drop_every {
            if self.sent.is_multiple_of(k) {
                return Ok(()); // the wire ate it
            }
        }
        self.tx.borrow_mut().push_back(frame.to_vec());
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<Option<usize>, IoError> {
        let Some(frame) = self.rx.borrow_mut().pop_front() else {
            return Ok(None);
        };
        if buf.len() < frame.len() {
            return Err(IoError(format!("recv buffer too small: {} < {}", buf.len(), frame.len())));
        }
        buf[..frame.len()].copy_from_slice(&frame);
        Ok(Some(frame.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_the_pair_in_order() {
        let (mut a, mut b) = SimBackend::pair();
        a.send(b"one").unwrap();
        a.send(b"two").unwrap();
        b.send(b"back").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"one");
        assert_eq!(b.recv(&mut buf).unwrap(), Some(3));
        assert_eq!(&buf[..3], b"two");
        assert_eq!(b.recv(&mut buf).unwrap(), None);
        assert_eq!(a.recv(&mut buf).unwrap(), Some(4));
        assert_eq!(&buf[..4], b"back");
    }

    #[test]
    fn drop_every_k_loses_exactly_the_kth_frames() {
        let (mut a, mut b) = SimBackend::pair();
        a = a.drop_every(3);
        for i in 0..9u8 {
            a.send(&[i]).unwrap();
        }
        let mut got = Vec::new();
        let mut buf = [0u8; 4];
        while let Some(n) = b.recv(&mut buf).unwrap() {
            got.push(buf[..n].to_vec());
        }
        assert_eq!(got, vec![vec![0], vec![1], vec![3], vec![4], vec![6], vec![7]]);
    }
}
