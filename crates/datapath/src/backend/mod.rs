//! Pluggable packet I/O backends for the forwarding graph.
//!
//! A [`PacketIo`] moves opaque frames; it knows nothing about the EMPoWER
//! header. The two endpoint types assemble forwarding graphs around a
//! backend: [`SourceEndpoint`] runs `RouteChoice → PriceStamp → Encap` and
//! hands the serialized frame to the backend, [`DestEndpoint`] receives
//! frames and runs `Decap → Reorder`. The same node code runs whether the
//! backend is the in-memory loopback ([`sim::SimBackend`]), a real UDP
//! socket ([`udp::UdpBackend`]), or the simulator's event loop driving the
//! stages directly through [`FlowDatapath`](crate::graph::FlowDatapath).

pub mod sim;
pub mod udp;

use empower_model::rng::{SeedableRng, StdRng};
use empower_telemetry::Scope;

use crate::ack::Ack;
use crate::config::{ReorderConfig, SchedulerConfig};
use crate::graph::{ChainResult, Disposition, FlowGraph, GraphCtx, GraphNode, Outbox};
use crate::header::{SourceRoute, HEADER_LEN};
use crate::nodes::{DecapNode, EncapNode, PriceStampNode, ReorderNode, RouteChoiceNode};
use crate::pool::PktPool;
use crate::reorder::ReorderEvent;

/// A backend failure, carrying a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoError(pub String);

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "packet i/o error: {}", self.0)
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError(e.to_string())
    }
}

/// Frame-level packet I/O: the graph's only window onto the outside world.
pub trait PacketIo {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> Result<(), IoError>;
    /// Receives one frame into `buf` if one is available *now* (returns
    /// `Ok(None)` otherwise — backends must not block indefinitely).
    fn recv(&mut self, buf: &mut [u8]) -> Result<Option<usize>, IoError>;
}

/// Source side of a flow: admits payloads through the token bucket,
/// stamps the (per-route) path price, frames, and sends.
pub struct SourceEndpoint<B: PacketIo> {
    io: B,
    graph: FlowGraph,
    route_choice: usize,
    price_stamp: usize,
    route_price: Vec<f64>,
    pool: PktPool,
    rng: StdRng,
    out: Outbox,
    sent: u64,
    dropped: u64,
}

impl<B: PacketIo> SourceEndpoint<B> {
    /// Builds a source over `routes`, where `route_price[r]` is the path
    /// price stamped on packets taking route `r` (in the simulator this
    /// accumulates hop by hop; a standalone endpoint stamps the whole
    /// path's price at once).
    ///
    /// # Panics
    /// Panics when `route_price` and the route set disagree in length.
    pub fn new(
        io: B,
        cfg: &SchedulerConfig,
        routes: Vec<SourceRoute>,
        route_price: Vec<f64>,
        seed: u64,
        scope: Option<&Scope>,
    ) -> Self {
        assert_eq!(routes.len(), route_price.len());
        let mut graph = FlowGraph::new();
        let route_choice =
            graph.push(GraphNode::RouteChoice(RouteChoiceNode::new(cfg, routes)), scope);
        let price_stamp = graph.push(GraphNode::PriceStamp(PriceStampNode), scope);
        graph.push(GraphNode::Encap(EncapNode), scope);
        SourceEndpoint {
            io,
            graph,
            route_choice,
            price_stamp,
            route_price,
            pool: PktPool::new(),
            rng: StdRng::seed_from_u64(seed),
            out: Outbox::new(),
            sent: 0,
            dropped: 0,
        }
    }

    /// Offers one payload at `now`: on admission the frame goes out on the
    /// chosen route (returned); a token-bucket refusal returns `Ok(None)`.
    pub fn offer(&mut self, now: f64, payload: &[u8]) -> Result<Option<usize>, IoError> {
        let pkt = self.pool.insert_with(|p| {
            p.reset();
            p.size_bits = ((HEADER_LEN + payload.len()) * 8) as u64;
            p.created_at = now;
            p.payload.extend_from_slice(payload);
        });
        self.out.clear();
        let mut ctx = GraphCtx {
            now,
            pool: &mut self.pool,
            rng: &mut self.rng,
            price_contribution: 0.0,
            out: &mut self.out,
        };
        match self.graph.step(self.route_choice, pkt, &mut ctx) {
            Disposition::Next => {}
            _ => {
                self.dropped += 1;
                return Ok(None);
            }
        }
        let route = ctx.pool.get(pkt).route;
        ctx.price_contribution = self.route_price[route];
        let end = self.graph.run_from(self.price_stamp, pkt, &mut ctx);
        debug_assert_eq!(end, ChainResult::Egress(pkt));
        self.pool.release(pkt);
        self.io.send(&self.out.frame)?;
        self.sent += 1;
        Ok(Some(route))
    }

    /// Frames sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Offers refused by the token bucket so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The underlying backend.
    pub fn io_mut(&mut self) -> &mut B {
        &mut self.io
    }
}

/// Destination side of a flow: receives frames, parses them, reorders,
/// and reports deliveries, losses, and paced price acknowledgements.
pub struct DestEndpoint<B: PacketIo> {
    io: B,
    graph: FlowGraph,
    reorder: usize,
    pool: PktPool,
    rng: StdRng,
    out: Outbox,
    buf: Vec<u8>,
}

impl<B: PacketIo> DestEndpoint<B> {
    /// Builds a destination recognizing `routes`.
    pub fn new(
        io: B,
        cfg: &ReorderConfig,
        routes: Vec<SourceRoute>,
        scope: Option<&Scope>,
    ) -> Self {
        let mut graph = FlowGraph::new();
        graph.push(GraphNode::Decap(DecapNode::new(routes)), scope);
        let reorder = graph.push(GraphNode::Reorder(ReorderNode::new(cfg)), scope);
        DestEndpoint {
            io,
            graph,
            reorder,
            pool: PktPool::new(),
            rng: StdRng::seed_from_u64(0),
            out: Outbox::new(),
            buf: vec![0u8; 64 * 1024],
        }
    }

    /// Polls the backend for one frame and runs it through the graph,
    /// appending any reorder releases to `events`. Returns whether a frame
    /// was processed.
    pub fn poll(&mut self, now: f64, events: &mut Vec<ReorderEvent>) -> Result<bool, IoError> {
        let Some(n) = self.io.recv(&mut self.buf)? else {
            return Ok(false);
        };
        let pkt = self.pool.insert_with(|p| {
            p.reset();
            p.created_at = now;
            p.size_bits = (n * 8) as u64;
        });
        self.pool.get_mut(pkt).payload.extend_from_slice(&self.buf[..n]);
        self.out.clear();
        let mut ctx = GraphCtx {
            now,
            pool: &mut self.pool,
            rng: &mut self.rng,
            price_contribution: 0.0,
            out: &mut self.out,
        };
        let _ = self.graph.run(pkt, &mut ctx);
        events.extend_from_slice(&self.out.reorder);
        Ok(true)
    }

    /// The paced price acknowledgement, when one is due.
    pub fn maybe_ack(&mut self, now: f64) -> Option<Ack> {
        match self.graph.node_mut(self.reorder) {
            GraphNode::Reorder(n) => n.maybe_ack(now),
            _ => unreachable!("reorder slot holds the Reorder node"),
        }
    }

    /// The underlying backend.
    pub fn io_mut(&mut self) -> &mut B {
        &mut self.io
    }
}

#[cfg(test)]
mod tests {
    use super::sim::SimBackend;
    use super::*;
    use crate::iface_id::IfaceId;

    fn route(ids: &[u16]) -> SourceRoute {
        let hops: Vec<IfaceId> = ids.iter().map(|&i| IfaceId(i)).collect();
        SourceRoute::new(&hops).unwrap()
    }

    fn endpoints(
        drop_every: Option<u64>,
    ) -> (SourceEndpoint<SimBackend>, DestEndpoint<SimBackend>) {
        let (mut a, b) = SimBackend::pair();
        if let Some(k) = drop_every {
            a = a.drop_every(k);
        }
        let routes = vec![route(&[1, 2]), route(&[3, 4])];
        let src = SourceEndpoint::new(
            a,
            &SchedulerConfig::for_routes(2).initial_rates(&[4.0, 4.0]),
            routes.clone(),
            vec![0.25, 0.5],
            42,
            None,
        );
        let dst = DestEndpoint::new(b, &ReorderConfig::for_routes(2), routes, None);
        (src, dst)
    }

    #[test]
    fn loopback_delivers_in_order_with_prices() {
        let (mut src, mut dst) = endpoints(None);
        let mut now = 0.0;
        for _ in 0..64 {
            now += 0.005;
            src.offer(now, b"frame payload").unwrap();
        }
        assert_eq!(src.sent(), 64, "rates admit every offer at this pace");
        let mut events = Vec::new();
        while dst.poll(now, &mut events).unwrap() {}
        let delivered: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                ReorderEvent::Deliver(s) => Some(*s),
                ReorderEvent::Lost(_) => None,
            })
            .collect();
        assert_eq!(delivered, (0..64).collect::<Vec<u32>>());
        let ack = dst.maybe_ack(now).expect("ack due");
        assert_eq!(ack.delivered_packets, 64);
        assert_eq!(ack.route_prices, vec![Some(0.25), Some(0.5)]);
    }

    #[test]
    fn lossy_backend_triggers_the_loss_rule() {
        let (mut src, mut dst) = endpoints(Some(10));
        let mut now = 0.0;
        for _ in 0..100 {
            now += 0.005;
            src.offer(now, b"x").unwrap();
        }
        let mut events = Vec::new();
        while dst.poll(now, &mut events).unwrap() {}
        let lost = events.iter().filter(|e| matches!(e, ReorderEvent::Lost(_))).count();
        assert!(lost > 0, "dropped frames must be declared lost");
    }
}
