//! UDP packet I/O.
//!
//! Encapsulates EMPoWER frames (the 20-byte layer-2.5 header plus
//! payload) in UDP datagrams — one frame per datagram, so the header's
//! fixed offset survives and datagram boundaries delimit frames for free.
//! The socket runs with a short read timeout so [`PacketIo::recv`] honors
//! the trait's poll semantics (`Ok(None)` when nothing is waiting).

use std::io::ErrorKind;
use std::net::UdpSocket;
use std::time::Duration;

use super::{IoError, PacketIo};

/// A [`PacketIo`] over a bound (and logically connected) UDP socket.
pub struct UdpBackend {
    sock: UdpSocket,
    peer: String,
}

impl UdpBackend {
    /// Poll granularity: how long `recv` waits before reporting "nothing".
    const POLL_TIMEOUT: Duration = Duration::from_millis(5);

    /// Binds `local` (e.g. `127.0.0.1:9001`, or port 0 for ephemeral) and
    /// targets `peer` for sends.
    pub fn bind(local: &str, peer: &str) -> Result<UdpBackend, IoError> {
        let sock = UdpSocket::bind(local)?;
        sock.set_read_timeout(Some(Self::POLL_TIMEOUT))?;
        Ok(UdpBackend { sock, peer: peer.to_string() })
    }

    /// The locally bound address, as a printable string.
    pub fn local_addr(&self) -> Result<String, IoError> {
        Ok(self.sock.local_addr()?.to_string())
    }
}

impl PacketIo for UdpBackend {
    fn send(&mut self, frame: &[u8]) -> Result<(), IoError> {
        let n = self.sock.send_to(frame, &self.peer)?;
        if n != frame.len() {
            return Err(IoError(format!("short send: {n} of {} bytes", frame.len())));
        }
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<Option<usize>, IoError> {
        match self.sock.recv_from(buf) {
            Ok((n, _from)) => Ok(Some(n)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagrams_round_trip_over_loopback() {
        // Ephemeral ports; skip silently if the sandbox forbids sockets.
        let Ok(a) = UdpBackend::bind("127.0.0.1:0", "127.0.0.1:1") else {
            return;
        };
        let Ok(mut b) = UdpBackend::bind("127.0.0.1:0", &a.local_addr().unwrap()) else {
            return;
        };
        let mut a = UdpBackend { peer: b.local_addr().unwrap(), sock: a.sock };
        a.send(b"hello over udp").unwrap();
        let mut buf = [0u8; 64];
        // The datagram may need a poll cycle to land.
        for _ in 0..20 {
            if let Some(n) = b.recv(&mut buf).unwrap() {
                assert_eq!(&buf[..n], b"hello over udp");
                return;
            }
        }
        panic!("datagram never arrived");
    }

    #[test]
    fn empty_socket_reports_none() {
        let Ok(mut a) = UdpBackend::bind("127.0.0.1:0", "127.0.0.1:1") else {
            return;
        };
        let mut buf = [0u8; 16];
        assert_eq!(a.recv(&mut buf).unwrap(), None);
    }
}
