//! Delay equalization for TCP over multipath (§6.4).
//!
//! TCP expects packets within a time frame; when one route is much faster
//! than another, packets from the fast route wait in the reorder buffer for
//! stragglers and TCP may time out. "To improve performance, we add some
//! delay on the fast route at the destination, so that both routes have
//! approximately the same delays. The packets are then reordered."
//!
//! The equalizer keeps an EWMA of each route's one-way delay and returns,
//! per arriving packet, the artificial hold time that aligns its total
//! latency with the currently slowest route.

use crate::config::DelayEqConfig;

/// Per-flow destination-side delay equalizer.
#[derive(Debug, Clone)]
pub struct DelayEqualizer {
    /// EWMA smoothing factor for delay estimates.
    pub ewma: f64,
    /// Cap on added delay, seconds (a straggling route must not stall the
    /// flow indefinitely).
    pub max_hold_secs: f64,
    est_delay: Vec<Option<f64>>,
}

impl DelayEqualizer {
    /// Builds an equalizer from its typed configuration (the
    /// non-deprecated construction path; see [`DelayEqConfig`]).
    pub(crate) fn from_config(cfg: &DelayEqConfig) -> Self {
        DelayEqualizer {
            ewma: cfg.smoothing(),
            max_hold_secs: cfg.hold_cap(),
            est_delay: vec![None; cfg.routes()],
        }
    }

    /// Control-plane handler behind `CtrlMsg::ReplaceRoutes`: fresh
    /// estimates for a new route set, keeping the tuning knobs.
    pub(crate) fn rekey(&mut self, route_count: usize) {
        self.est_delay = vec![None; route_count];
    }

    /// Records an observed one-way delay for `route` and returns the hold
    /// time to apply to this packet before releasing it upward.
    pub fn on_arrival(&mut self, route: usize, delay_secs: f64) -> f64 {
        let updated = match self.est_delay[route] {
            None => delay_secs,
            Some(e) => (1.0 - self.ewma) * e + self.ewma * delay_secs,
        };
        self.est_delay[route] = Some(updated);
        let slowest = self.est_delay.iter().flatten().fold(0.0_f64, |a, &b| a.max(b));
        (slowest - updated).clamp(0.0, self.max_hold_secs)
    }

    /// Current delay estimate of a route.
    pub fn estimate(&self, route: usize) -> Option<f64> {
        self.est_delay[route]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_route_never_holds() {
        let mut eq = DelayEqConfig::for_routes(1).build();
        assert_eq!(eq.on_arrival(0, 0.02), 0.0);
        assert_eq!(eq.on_arrival(0, 0.05), 0.0);
    }

    #[test]
    fn fast_route_is_held_to_match_slow_route() {
        let mut eq = DelayEqConfig::for_routes(2).build();
        // Prime both estimates.
        eq.on_arrival(0, 0.010); // fast
        eq.on_arrival(1, 0.100); // slow
        let hold = eq.on_arrival(0, 0.010);
        assert!((hold - 0.090).abs() < 0.005, "hold {hold}");
        // The slow route itself is never held.
        assert_eq!(eq.on_arrival(1, 0.100), 0.0);
    }

    #[test]
    fn hold_is_capped() {
        let mut eq = DelayEqConfig::for_routes(2).build();
        eq.on_arrival(1, 10.0); // pathological straggler
        let hold = eq.on_arrival(0, 0.01);
        assert_eq!(hold, eq.max_hold_secs);
    }

    #[test]
    fn estimates_track_with_ewma() {
        let mut eq = DelayEqConfig::for_routes(1).build();
        eq.on_arrival(0, 0.1);
        for _ in 0..200 {
            eq.on_arrival(0, 0.02);
        }
        let est = eq.estimate(0).unwrap();
        assert!((est - 0.02).abs() < 1e-3, "est {est}");
    }

    #[test]
    fn equalized_delays_converge() {
        let mut eq = DelayEqConfig::for_routes(2).build();
        let mut total0 = 0.0;
        let mut total1 = 0.0;
        for _ in 0..500 {
            total0 = 0.01 + eq.on_arrival(0, 0.01);
            total1 = 0.08 + eq.on_arrival(1, 0.08);
        }
        assert!((total0 - total1).abs() < 0.005, "{total0} vs {total1}");
    }
}
