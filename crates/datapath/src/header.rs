//! The fixed 20-byte EMPoWER header (§6.1).

use crate::wire::{Buf, BufMut};

use crate::iface_id::IfaceId;

/// Total header length on the wire, bytes.
pub const HEADER_LEN: usize = 20;
/// Maximum number of hops a source route can encode (12 bytes / 2).
pub const MAX_HOPS: usize = 6;

/// Decode/encode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// Input shorter than [`HEADER_LEN`].
    Truncated { got: usize },
    /// More hops than the fixed route field can hold.
    TooManyHops { got: usize },
    /// An empty slot appears before the end of the route.
    NonContiguousRoute,
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::Truncated { got } => {
                write!(f, "header needs {HEADER_LEN} bytes, got {got}")
            }
            HeaderError::TooManyHops { got } => {
                write!(f, "route has {got} hops, max is {MAX_HOPS}")
            }
            HeaderError::NonContiguousRoute => write!(f, "route has a gap"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// The source route: the ingress interface id of every hop, in order. A
/// 2-hop route therefore stores 2 ids; remaining slots are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceRoute {
    hops: [IfaceId; MAX_HOPS],
    len: u8,
}

impl Default for SourceRoute {
    /// The empty (zero-hop) route — invalid on the wire, used as the
    /// pool's reset value.
    fn default() -> Self {
        SourceRoute { hops: [IfaceId::EMPTY; MAX_HOPS], len: 0 }
    }
}

impl SourceRoute {
    /// Builds a route from ingress interface ids.
    pub fn new(hops: &[IfaceId]) -> Result<Self, HeaderError> {
        if hops.len() > MAX_HOPS {
            return Err(HeaderError::TooManyHops { got: hops.len() });
        }
        if hops.iter().any(|h| !h.is_set()) {
            return Err(HeaderError::NonContiguousRoute);
        }
        let mut arr = [IfaceId::EMPTY; MAX_HOPS];
        arr[..hops.len()].copy_from_slice(hops);
        Ok(SourceRoute { hops: arr, len: hops.len() as u8 })
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for a (invalid on the wire) zero-hop route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ingress interface of hop `i`.
    pub fn hop(&self, i: usize) -> Option<IfaceId> {
        (i < self.len()).then(|| self.hops[i])
    }

    /// All hops, in order.
    pub fn hops(&self) -> &[IfaceId] {
        &self.hops[..self.len()]
    }

    /// Given the interface a packet just arrived on, the ingress interface
    /// of the next hop — `None` when the arrival interface is the route's
    /// last hop (the packet is at its destination) or not on the route.
    pub fn next_hop_after(&self, arrived_on: IfaceId) -> Option<IfaceId> {
        let pos = self.hops().iter().position(|&h| h == arrived_on)?;
        self.hop(pos + 1)
    }

    /// True if `iface` is the final hop's ingress (destination check,
    /// `Check Dst` in Fig. 2).
    pub fn is_destination(&self, iface: IfaceId) -> bool {
        self.len > 0 && self.hops[self.len as usize - 1] == iface
    }
}

/// The layer-2.5 header carried by every EMPoWER data packet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EmpowerHeader {
    pub route: SourceRoute,
    /// Accumulated route price `q_r` (§4.2); f32 on the wire (4 bytes).
    pub price: f32,
    /// Sequence number for destination-side reordering.
    pub seq: u32,
}

impl EmpowerHeader {
    /// Creates a header with zero accumulated price.
    pub fn new(route: SourceRoute, seq: u32) -> Self {
        EmpowerHeader { route, price: 0.0, seq }
    }

    /// Serializes into `buf` (exactly [`HEADER_LEN`] bytes).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        for i in 0..MAX_HOPS {
            buf.put_u16(self.route.hops[i].0);
        }
        buf.put_f32(self.price);
        buf.put_u32(self.seq);
    }

    /// Serializes into a caller-provided fixed buffer — the hot-path
    /// encoder: no allocation, no cursor bookkeeping, the type system
    /// guarantees the length.
    pub fn encode_into(&self, out: &mut [u8; HEADER_LEN]) {
        for i in 0..MAX_HOPS {
            out[2 * i..2 * i + 2].copy_from_slice(&self.route.hops[i].0.to_be_bytes());
        }
        out[12..16].copy_from_slice(&self.price.to_bits().to_be_bytes());
        out[16..20].copy_from_slice(&self.seq.to_be_bytes());
    }

    /// Serializes to a fresh vector.
    #[deprecated(note = "allocates a fresh Vec per packet; use `encode_into` (fixed buffer) or \
                `encode` (appending sink) instead")]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(HEADER_LEN);
        self.encode(&mut v);
        v
    }

    /// Parses a header from `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, HeaderError> {
        if buf.remaining() < HEADER_LEN {
            return Err(HeaderError::Truncated { got: buf.remaining() });
        }
        let mut hops = [IfaceId::EMPTY; MAX_HOPS];
        for h in &mut hops {
            *h = IfaceId(buf.get_u16());
        }
        let price = buf.get_f32();
        let seq = buf.get_u32();
        // Route length = leading non-zero prefix; anything after a gap is
        // malformed.
        let len = hops.iter().position(|h| !h.is_set()).unwrap_or(MAX_HOPS);
        if hops[len..].iter().any(|h| h.is_set()) {
            return Err(HeaderError::NonContiguousRoute);
        }
        Ok(EmpowerHeader { route: SourceRoute { hops, len: len as u8 }, price, seq })
    }

    /// Adds a forwarding node's price contribution (Eq. (9) summand).
    pub fn add_price(&mut self, contribution: f64) {
        self.price += contribution as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u16]) -> SourceRoute {
        let hops: Vec<IfaceId> = ids.iter().map(|&i| IfaceId(i)).collect();
        SourceRoute::new(&hops).unwrap()
    }

    #[test]
    fn header_is_exactly_20_bytes() {
        let h = EmpowerHeader::new(route(&[10, 20, 30]), 42);
        let mut fixed = [0u8; HEADER_LEN];
        h.encode_into(&mut fixed);
        let mut appended = Vec::new();
        h.encode(&mut appended);
        assert_eq!(appended.len(), HEADER_LEN);
        assert_eq!(appended.as_slice(), &fixed, "both encoders produce the same bytes");
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut h = EmpowerHeader::new(route(&[7, 9]), 0xdead_beef);
        h.add_price(0.125);
        h.add_price(0.5);
        let mut bytes = [0u8; HEADER_LEN];
        h.encode_into(&mut bytes);
        let back = EmpowerHeader::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.route.len(), 2);
        assert!((back.price - 0.625).abs() < 1e-6);
        assert_eq!(back.seq, 0xdead_beef);
    }

    #[test]
    fn six_hop_route_fits() {
        let h = EmpowerHeader::new(route(&[1, 2, 3, 4, 5, 6]), 1);
        let mut bytes = [0u8; HEADER_LEN];
        h.encode_into(&mut bytes);
        let back = EmpowerHeader::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.route.len(), 6);
    }

    #[test]
    fn seven_hops_are_rejected() {
        let hops: Vec<IfaceId> = (1..=7).map(IfaceId).collect();
        assert_eq!(SourceRoute::new(&hops).unwrap_err(), HeaderError::TooManyHops { got: 7 });
    }

    #[test]
    fn truncated_input_is_rejected() {
        let h = EmpowerHeader::new(route(&[1]), 5);
        let mut bytes = [0u8; HEADER_LEN];
        h.encode_into(&mut bytes);
        let err = EmpowerHeader::decode(&mut &bytes[..HEADER_LEN - 1]).unwrap_err();
        assert_eq!(err, HeaderError::Truncated { got: HEADER_LEN - 1 });
    }

    #[test]
    fn gap_in_route_is_rejected() {
        let mut bytes = [0u8; HEADER_LEN];
        EmpowerHeader::new(route(&[1, 2]), 5).encode_into(&mut bytes);
        // Zero hop 0, leaving hop 1 set: a gap at the front.
        bytes[0] = 0;
        bytes[1] = 0;
        assert_eq!(
            EmpowerHeader::decode(&mut bytes.as_slice()).unwrap_err(),
            HeaderError::NonContiguousRoute
        );
    }

    #[test]
    fn next_hop_walks_the_route() {
        let r = route(&[10, 20, 30]);
        assert_eq!(r.next_hop_after(IfaceId(10)), Some(IfaceId(20)));
        assert_eq!(r.next_hop_after(IfaceId(20)), Some(IfaceId(30)));
        assert_eq!(r.next_hop_after(IfaceId(30)), None); // destination
        assert_eq!(r.next_hop_after(IfaceId(99)), None); // off-route
    }

    #[test]
    fn destination_check_matches_last_hop() {
        let r = route(&[10, 20, 30]);
        assert!(r.is_destination(IfaceId(30)));
        assert!(!r.is_destination(IfaceId(20)));
    }

    #[test]
    fn price_survives_f32_precision_for_realistic_magnitudes() {
        // Route prices q_r are O(1); f32 gives ~7 digits, plenty.
        let mut h = EmpowerHeader::new(route(&[1]), 0);
        for _ in 0..1000 {
            h.add_price(0.001);
        }
        assert!((h.price - 1.0).abs() < 1e-3);
    }
}
