//! Run manifests: self-describing provenance records written next to
//! experiment results (`--metrics <path>` in the bench binaries).
//!
//! A manifest is an insertion-ordered JSON object holding the experiment
//! name, the run parameters (seed, scheme, sweep size, …) and a counter
//! snapshot. Because every value in it is derived from the run
//! configuration and the deterministic telemetry registry, two same-seed
//! runs write byte-identical manifests — that property is what makes a
//! perf regression measurable instead of anecdotal.

use crate::json::{Json, ToJson};
use crate::Telemetry;

/// An ordered experiment manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    fields: Vec<(String, Json)>,
}

impl Manifest {
    /// Starts a manifest for `experiment` (the figure/table binary name).
    pub fn new(experiment: &str) -> Manifest {
        Manifest {
            fields: vec![
                ("experiment".to_string(), Json::Str(experiment.to_string())),
                // Schema version for downstream tooling; bump on breaking
                // changes to the layout documented in EXPERIMENTS.md.
                ("manifest_version".to_string(), Json::Int(1)),
            ],
        }
    }

    /// Adds (or replaces) one field, preserving first-insertion order.
    pub fn set(&mut self, key: &str, value: impl ToJson) -> &mut Self {
        let v = value.to_json();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            self.fields.push((key.to_string(), v));
        }
        self
    }

    /// Attaches the registry's counter snapshot under `"counters"`.
    pub fn attach_counters(&mut self, telemetry: &Telemetry) -> &mut Self {
        self.set("counters", telemetry.snapshot().to_json())
    }

    /// The manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields.clone())
    }

    /// Pretty-printed JSON plus trailing newline — the exact bytes
    /// [`Manifest::write`] puts on disk.
    pub fn render(&self) -> String {
        let mut s = self.to_json().to_string_pretty();
        s.push('\n');
        s
    }

    /// Writes the manifest to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CounterType;

    #[test]
    fn manifest_is_ordered_and_stable() {
        let tele = Telemetry::enabled();
        tele.counter("a/pkts", CounterType::Packets).add(3);
        let mut m = Manifest::new("fig4");
        m.set("seed", 7u64).set("scheme", "EMPoWER").attach_counters(&tele);
        let s1 = m.render();
        let s2 = m.render();
        assert_eq!(s1, s2);
        let v = Json::parse(&s1).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("fig4"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(
            v.get("counters").unwrap().get("a/pkts").unwrap().get("value").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut m = Manifest::new("x");
        m.set("seed", 1u64);
        m.set("runs", 5usize);
        m.set("seed", 2u64);
        let v = m.to_json();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(2));
        // Order preserved: experiment, manifest_version, seed, runs.
        if let Json::Obj(pairs) = &v {
            let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["experiment", "manifest_version", "seed", "runs"]);
        } else {
            panic!("not an object");
        }
    }
}
