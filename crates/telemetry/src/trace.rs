//! Virtual-time-stamped event tracing.
//!
//! Every record carries the **virtual clock** of the component that emitted
//! it (simulated seconds in the packet engine, slot index in the fluid
//! controller) — never wall-clock time — so same-seed runs produce
//! byte-identical streams. Records land in a bounded in-memory ring (oldest
//! evicted) and, if a sink path is attached, are appended to a JSON-lines
//! file as they happen.

use std::io::Write;

use crate::json::Json;

/// One traced event: virtual time, the emitting scope (e.g. `node/3/mac`),
/// a kind tag, and ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub t: f64,
    pub scope: String,
    pub kind: String,
    pub fields: Vec<(String, Json)>,
}

impl TraceRecord {
    /// The canonical JSON-line form: `{"t":…,"scope":…,"ev":…, <fields>}`.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("t".to_string(), Json::Float(self.t)),
            ("scope".to_string(), Json::Str(self.scope.clone())),
            ("ev".to_string(), Json::Str(self.kind.clone())),
        ];
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }
}

/// Bounded ring of trace records plus the optional JSON-lines sink.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    ring: std::collections::VecDeque<TraceRecord>,
    cap: usize,
    evicted: u64,
    sink: Option<std::io::BufWriter<std::fs::File>>,
}

pub(crate) const DEFAULT_RING_CAP: usize = 65_536;

impl TraceBuffer {
    pub(crate) fn new(cap: usize) -> Self {
        TraceBuffer { ring: std::collections::VecDeque::new(), cap, evicted: 0, sink: None }
    }

    pub(crate) fn attach_sink(&mut self, file: std::fs::File) {
        self.sink = Some(std::io::BufWriter::new(file));
    }

    pub(crate) fn push(&mut self, rec: TraceRecord) {
        if let Some(sink) = self.sink.as_mut() {
            let _ = writeln!(sink, "{}", rec.to_json());
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(rec);
    }

    pub(crate) fn flush(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            let _ = sink.flush();
        }
    }

    /// The records currently held (oldest first).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// How many records the ring has evicted (0 = the stream is complete).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Serializes the ring to JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.ring {
            out.push_str(&rec.to_json().to_string());
            out.push('\n');
        }
        out
    }

    pub(crate) fn len(&self) -> usize {
        self.ring.len()
    }

    pub(crate) fn clone_records(&self) -> Vec<TraceRecord> {
        self.ring.iter().cloned().collect()
    }
}
