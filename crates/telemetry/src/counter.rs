//! Counter flavors and handles, after the R2 router's
//! `counters::flavors::{Counter, CounterType}` pattern: every counter has a
//! declared flavor so tooling knows how to aggregate and display it, and the
//! handle the hot path holds is a plain shared `Cell<u64>` — incrementing is
//! one add, and a disabled registry costs exactly one branch.

use std::cell::Cell;
use std::rc::Rc;

use crate::json::Json;

/// What a counter's value means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterType {
    /// Monotone count of packets/frames/events.
    Packets,
    /// Monotone count of bytes.
    Bytes,
    /// Monotone count of error events.
    Errors,
    /// Instantaneous or high-water level (not monotone).
    Gauge,
}

impl CounterType {
    /// Stable lowercase label used in snapshots and manifests.
    pub fn label(self) -> &'static str {
        match self {
            CounterType::Packets => "packets",
            CounterType::Bytes => "bytes",
            CounterType::Errors => "errors",
            CounterType::Gauge => "gauge",
        }
    }
}

/// A cheap handle to one registered counter. Cloning shares the cell.
/// A handle from a disabled registry is a no-op (`None` inside — the
/// "one branch" of the disabled path).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Rc<Cell<u64>>>,
}

impl Counter {
    /// A permanently disabled counter (what a disabled registry hands out).
    pub fn noop() -> Counter {
        Counter { cell: None }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.cell {
            c.set(c.get() + 1);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.set(c.get() + n);
        }
    }

    /// Sets the value (gauges).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.set(v);
        }
    }

    /// Raises the value to `v` if larger (high-water marks).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(c) = &self.cell {
            if v > c.get() {
                c.set(v);
            }
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }

    /// True if this handle actually records.
    pub fn is_live(&self) -> bool {
        self.cell.is_some()
    }
}

/// One registered counter, as stored by the registry.
#[derive(Debug, Clone)]
pub(crate) struct CounterEntry {
    pub name: String,
    pub flavor: CounterType,
    pub cell: Rc<Cell<u64>>,
}

/// An immutable, ordered copy of every counter at one instant.
///
/// Entries are sorted by name, so two snapshots of registries that went
/// through the same operations compare (and serialize) identically no
/// matter the registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// `(name, flavor, value)` sorted by name.
    pub counters: Vec<(String, CounterType, u64)>,
}

impl CounterSnapshot {
    /// Value of one counter by exact name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].2)
    }

    /// Sum of all counters whose name starts with `prefix` and whose flavor
    /// is monotone (gauges are excluded from sums).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, f, _)| n.starts_with(prefix) && *f != CounterType::Gauge)
            .map(|(_, _, v)| v)
            .sum()
    }

    /// JSON object `{name: {"type": flavor, "value": v}, ...}` in sorted
    /// name order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.counters
                .iter()
                .map(|(name, flavor, value)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("type", Json::Str(flavor.label().to_string())),
                            ("value", Json::UInt(*value)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}
