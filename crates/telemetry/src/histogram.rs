//! Deterministic SLO histograms and quantile summaries.
//!
//! A [`Histogram`] is a fixed-shape log-bucketed value recorder (HDR-style:
//! 32 sub-buckets per octave, ≤ 3.2 % relative quantile error) for
//! latency/size-like `u64` samples. Everything is integer arithmetic over a
//! pre-sized bucket vector, so two runs that record the same samples in the
//! same order — or any order; recording commutes — produce bit-identical
//! quantiles, and snapshots stay byte-stable across platforms.
//!
//! [`SloSummary`] distils a histogram into the SLO quantiles the workload
//! layer reports (p50/p95/p99 plus min/max/count/sum) and can emit itself
//! as gauge counters under a [`Scope`], so summaries ride along in counter
//! snapshots and run manifests like every other metric.

use crate::counter::CounterType;
use crate::Scope;

/// Sub-bucket resolution: `2^SUB_BITS` sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Buckets needed to cover the full `u64` range at this resolution.
const BUCKETS: usize = (SUB + (63 - SUB_BITS as u64) * SUB + SUB) as usize;

/// Bucket index of a sample: exact below `SUB`, then `SUB` logarithmic
/// sub-buckets per octave.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = top - SUB_BITS;
    let sub = (v >> shift) - SUB; // in [0, SUB)
    (SUB + (shift as u64) * SUB + sub) as usize
}

/// Largest value a bucket can hold (the quantile estimate reported for any
/// sample that landed in it).
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = (i - SUB) / SUB;
    let sub = (i - SUB) % SUB;
    // u128: the topmost bucket's bound exceeds u64 by one before the -1.
    let up = ((u128::from(SUB + sub + 1)) << shift) - 1;
    u64::try_from(up).unwrap_or(u64::MAX)
}

/// A deterministic fixed-shape log-bucketed histogram of `u64` samples.
///
/// Pick an integer unit when recording (microseconds, kilobits, bytes);
/// quantiles come back in the same unit, rounded up to the containing
/// bucket's upper bound (exact for values below 32).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The nearest-rank `q`-quantile (`0.0 ..= 1.0`), reported as the
    /// containing bucket's upper bound and clamped to the exact observed
    /// `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest rank: the smallest sample index (1-based) covering q.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The SLO summary of this histogram.
    pub fn summary(&self) -> SloSummary {
        SloSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Merges another histogram of the same unit into this one. Bucket
    /// counts add, so merging commutes — parallel workers can each fill
    /// their own histogram and fold them in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The fixed quantile summary the SLO layer reports for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Median (nearest-rank, bucket-rounded).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl SloSummary {
    /// Registers the summary as counters under `scope`:
    /// `<scope>/{count,sum,min,max,p50,p95,p99}`. `count` is a monotone
    /// packet counter (adds across merges); the rest are gauges (an
    /// index-ordered merge keeps the last writer, matching a serial run).
    pub fn emit(&self, scope: &Scope) {
        scope.counter("count", CounterType::Packets).add(self.count);
        scope.counter("sum", CounterType::Gauge).set(self.sum);
        scope.counter("min", CounterType::Gauge).set(self.min);
        scope.counter("max", CounterType::Gauge).set(self.max);
        scope.counter("p50", CounterType::Gauge).set(self.p50);
        scope.counter("p95", CounterType::Gauge).set(self.p95);
        scope.counter("p99", CounterType::Gauge).set(self.p99);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn buckets_are_exact_below_resolution_and_monotone_above() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v) as u64, v);
            assert_eq!(bucket_upper(v as usize), v);
        }
        let mut last = 0;
        for v in [32u64, 33, 63, 64, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "indices are monotone");
            assert!(bucket_upper(i) >= v, "upper bound covers the sample");
            assert!(i < BUCKETS);
            last = i;
        }
        // Relative error of the upper bound stays within one sub-bucket.
        for v in [100u64, 5_000, 123_456, 9_999_999] {
            let up = bucket_upper(bucket_index(v));
            assert!((up - v) as f64 / v as f64 <= 1.0 / SUB as f64 + 1e-9);
        }
    }

    #[test]
    fn quantiles_are_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 1..=20u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 20);
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.95), 19);
        assert_eq!(h.quantile(1.0), 20);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 20);
        assert_eq!(h.sum(), 210);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        let s = h.summary();
        assert_eq!(s, SloSummary::default());
    }

    #[test]
    fn merge_matches_serial_recording() {
        let samples: Vec<u64> = (0..500u64).map(|i| i * i % 10_007).collect();
        let mut serial = Histogram::new();
        for &v in &samples {
            serial.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, serial);
        assert_eq!(a.summary(), serial.summary());
    }

    #[test]
    fn summary_emits_as_counters() {
        let tele = Telemetry::enabled();
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        h.summary().emit(&tele.scope("wl/0/fct_ms"));
        let snap = tele.snapshot();
        assert_eq!(snap.value("wl/0/fct_ms/count"), Some(3));
        assert_eq!(snap.value("wl/0/fct_ms/p50"), Some(20));
        assert_eq!(snap.value("wl/0/fct_ms/max"), Some(30));
    }

    #[test]
    fn identical_sample_streams_summarize_identically() {
        let run = || {
            let mut h = Histogram::new();
            for i in 0..1_000u64 {
                h.record(i * 7 % 4_096);
            }
            h.summary()
        };
        assert_eq!(run(), run());
    }
}
