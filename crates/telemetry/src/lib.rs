#![forbid(unsafe_code)]
//! # empower-telemetry
//!
//! Zero-dependency, deterministic observability for the EMPoWER stack:
//!
//! * a **counter registry** with R2-style flavors ([`CounterType`]:
//!   packets / bytes / errors / gauge) handing out plain-`Cell` handles
//!   ([`Counter`]) whose disabled path costs one branch;
//! * **virtual-time-stamped event tracing** ([`TraceRecord`]) into a
//!   bounded in-memory ring with an optional JSON-lines file sink;
//! * **scoped namespaces** ([`Scope`]) so per-node / per-link / per-flow
//!   metrics get hierarchical names (`node/3/mac/grants`) without the hot
//!   path doing string work;
//! * **run manifests** ([`Manifest`]) recording seed, scheme, parameters
//!   and a counter snapshot next to experiment results;
//! * **SLO histograms** ([`Histogram`], [`SloSummary`]): deterministic
//!   log-bucketed quantiles (p50/p95/p99 and friends) that emit themselves
//!   as gauge counters, for the workload layer's per-client SLO reports;
//! * a small deterministic **JSON** value type ([`Json`], [`ToJson`]) used
//!   by all of the above and by the benchmark result dumps.
//!
//! ## Determinism contract
//!
//! All timestamps come from the **virtual clock** (`set_now`), which the
//! owning component advances from simulated time — never from the OS.
//! Counter snapshots sort by name; JSON objects keep insertion order; float
//! formatting is Rust's shortest round-trip form. Consequently two runs
//! with the same seed produce byte-identical snapshots, traces and
//! manifests (DESIGN.md §3.4 extends to observability).
//!
//! ## Usage
//!
//! ```
//! use empower_telemetry::{CounterType, Telemetry};
//!
//! let tele = Telemetry::enabled();
//! let mac = tele.scope("node").scope_idx(3).scope("mac");
//! let grants = mac.counter("grants", CounterType::Packets);
//! tele.set_now(0.125);
//! grants.inc();
//! mac.event("grant", &[("link", 7u32.into())]);
//! let snap = tele.snapshot();
//! assert_eq!(snap.value("node/3/mac/grants"), Some(1));
//! ```
//!
//! A disabled handle (`Telemetry::disabled()`, also `Default`) hands out
//! no-op counters and drops events; instrumented code needs no `if`s.

mod counter;
pub mod histogram;
pub mod json;
mod manifest;
mod trace;

pub use counter::{Counter, CounterSnapshot, CounterType};
pub use histogram::{Histogram, SloSummary};
pub use json::{Json, JsonError, ToJson};
pub use manifest::Manifest;
pub use trace::{TraceBuffer, TraceRecord};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use counter::CounterEntry;

struct Inner {
    clock: Cell<f64>,
    counters: RefCell<Vec<CounterEntry>>,
    index: RefCell<BTreeMap<String, usize>>,
    trace: RefCell<trace::TraceBuffer>,
}

/// The registry handle. Cloning is cheap (an `Rc` bump) and all clones
/// share the same registry; a disabled handle is `None` inside, making
/// every operation a single branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry(disabled)"),
            Some(inner) => write!(
                f,
                "Telemetry({} counters, {} trace records)",
                inner.counters.borrow().len(),
                inner.trace.borrow().len()
            ),
        }
    }
}

impl Telemetry {
    /// A live registry with the default trace-ring capacity.
    pub fn enabled() -> Telemetry {
        Telemetry::with_ring_capacity(trace::DEFAULT_RING_CAP)
    }

    /// A live registry whose trace ring holds at most `cap` records.
    pub fn with_ring_capacity(cap: usize) -> Telemetry {
        Telemetry {
            inner: Some(Rc::new(Inner {
                clock: Cell::new(0.0),
                counters: RefCell::new(Vec::new()),
                index: RefCell::new(BTreeMap::new()),
                trace: RefCell::new(trace::TraceBuffer::new(cap)),
            })),
        }
    }

    /// The no-op handle: every counter it hands out is dead, every event
    /// is dropped.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// True if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the virtual clock (simulated seconds / slot index). The
    /// owning engine calls this; emitters just read it.
    pub fn set_now(&self, t: f64) {
        if let Some(inner) = &self.inner {
            inner.clock.set(t);
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| i.clock.get())
    }

    /// Registers (or re-opens) the counter `name` with `flavor` and returns
    /// its handle. Re-opening with a different flavor keeps the original
    /// (first registration wins) — flavors are declarations, not state.
    pub fn counter(&self, name: impl Into<String>, flavor: CounterType) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let name = name.into();
        let mut index = inner.index.borrow_mut();
        let mut counters = inner.counters.borrow_mut();
        let idx = *index.entry(name.clone()).or_insert_with(|| {
            counters.push(CounterEntry { name, flavor, cell: Rc::new(Cell::new(0)) });
            counters.len() - 1
        });
        Counter { cell: Some(counters[idx].cell.clone()) }
    }

    /// A root scope with the given prefix.
    pub fn scope(&self, prefix: impl Into<String>) -> Scope {
        Scope { tele: self.clone(), prefix: prefix.into() }
    }

    /// Emits a trace record at the current virtual time.
    pub fn event(&self, scope: &str, kind: &str, fields: &[(&str, Json)]) {
        let Some(inner) = &self.inner else { return };
        inner.trace.borrow_mut().push(TraceRecord {
            t: inner.clock.get(),
            scope: scope.to_string(),
            kind: kind.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
    }

    /// Streams all future trace records to a JSON-lines file at `path`
    /// (in addition to the in-memory ring).
    pub fn stream_trace_to(&self, path: &str) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            let file = std::fs::File::create(path)?;
            inner.trace.borrow_mut().attach_sink(file);
        }
        Ok(())
    }

    /// Flushes the JSON-lines sink, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.trace.borrow_mut().flush();
        }
    }

    /// A sorted snapshot of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut counters: Vec<(String, CounterType, u64)> = match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .counters
                .borrow()
                .iter()
                .map(|e| (e.name.clone(), e.flavor, e.cell.get()))
                .collect(),
        };
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        CounterSnapshot { counters }
    }

    /// Folds a snapshot taken from another registry (e.g. a per-work-item
    /// registry inside a parallel sweep worker) into this one. Monotone
    /// flavors (packets / bytes / errors) **add** — they commute, so any
    /// merge order gives the serial totals — while gauges **set** (last
    /// write wins): merging worker snapshots in work-item index order then
    /// reproduces exactly the value a serial run would have left behind.
    pub fn merge_snapshot(&self, snap: &CounterSnapshot) {
        for (name, flavor, value) in &snap.counters {
            let c = self.counter(name.clone(), *flavor);
            match flavor {
                CounterType::Gauge => c.set(*value),
                _ => c.add(*value),
            }
        }
    }

    /// The trace records currently in the ring (oldest first).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.trace.borrow().clone_records())
    }

    /// The ring serialized as JSON lines.
    pub fn trace_jsonl(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |i| i.trace.borrow().to_jsonl())
    }

    /// Records evicted from the ring so far (0 = complete stream).
    pub fn trace_evicted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace.borrow().evicted())
    }
}

/// A hierarchical metric namespace: `scope("node").scope_idx(3)` names
/// counters `node/3/...`. Scopes are built once at setup time; the handles
/// they produce are what the hot path touches.
#[derive(Debug, Clone)]
pub struct Scope {
    tele: Telemetry,
    prefix: String,
}

impl Scope {
    /// A child scope `prefix/name`.
    pub fn scope(&self, name: &str) -> Scope {
        Scope { tele: self.tele.clone(), prefix: format!("{}/{}", self.prefix, name) }
    }

    /// A child scope with a numeric component (`node/3`).
    pub fn scope_idx(&self, idx: usize) -> Scope {
        Scope { tele: self.tele.clone(), prefix: format!("{}/{}", self.prefix, idx) }
    }

    /// Registers `prefix/name` with `flavor`.
    pub fn counter(&self, name: &str, flavor: CounterType) -> Counter {
        self.tele.counter(format!("{}/{}", self.prefix, name), flavor)
    }

    /// Emits a trace record attributed to this scope.
    pub fn event(&self, kind: &str, fields: &[(&str, Json)]) {
        self.tele.event(&self.prefix, kind, fields);
    }

    /// The full prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The underlying registry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tele
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let tele = Telemetry::disabled();
        let c = tele.counter("x", CounterType::Packets);
        c.inc();
        c.add(10);
        tele.event("s", "e", &[]);
        tele.set_now(5.0);
        assert!(!c.is_live());
        assert_eq!(c.get(), 0);
        assert_eq!(tele.now(), 0.0);
        assert!(tele.snapshot().counters.is_empty());
        assert!(tele.trace_records().is_empty());
    }

    #[test]
    fn counters_share_cells_by_name() {
        let tele = Telemetry::enabled();
        let a = tele.counter("n/pkts", CounterType::Packets);
        let b = tele.counter("n/pkts", CounterType::Packets);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(tele.snapshot().value("n/pkts"), Some(3));
    }

    #[test]
    fn first_flavor_wins() {
        let tele = Telemetry::enabled();
        tele.counter("g", CounterType::Gauge).set(5);
        let again = tele.counter("g", CounterType::Packets);
        again.record_max(3);
        let snap = tele.snapshot();
        assert_eq!(snap.counters[0].1, CounterType::Gauge);
        assert_eq!(snap.value("g"), Some(5));
    }

    #[test]
    fn snapshot_sorts_by_name_regardless_of_registration_order() {
        let tele = Telemetry::enabled();
        tele.counter("z", CounterType::Packets).inc();
        tele.counter("a", CounterType::Packets).inc();
        tele.counter("m", CounterType::Packets).inc();
        let snap = tele.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn scopes_compose_names() {
        let tele = Telemetry::enabled();
        let link = tele.scope("link").scope_idx(7);
        link.counter("drops", CounterType::Errors).add(2);
        assert_eq!(tele.snapshot().value("link/7/drops"), Some(2));
        assert_eq!(link.prefix(), "link/7");
    }

    #[test]
    fn events_carry_the_virtual_clock() {
        let tele = Telemetry::enabled();
        tele.set_now(1.5);
        tele.event("node/0", "grant", &[("link", 3u32.into())]);
        tele.set_now(2.5);
        tele.scope("cc").event("price_update", &[("flow", 0usize.into())]);
        let recs = tele.trace_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t, 1.5);
        assert_eq!(recs[0].kind, "grant");
        assert_eq!(recs[1].t, 2.5);
        assert_eq!(recs[1].scope, "cc");
        let jsonl = tele.trace_jsonl();
        let first = jsonl.lines().next().unwrap();
        let v = Json::parse(first).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("grant"));
        assert_eq!(v.get("link").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn ring_evicts_oldest() {
        let tele = Telemetry::with_ring_capacity(2);
        for i in 0..5u32 {
            tele.event("s", "e", &[("i", i.into())]);
        }
        let recs = tele.trace_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(tele.trace_evicted(), 3);
        assert_eq!(recs[0].fields[0].1, Json::UInt(3));
    }

    #[test]
    fn same_operations_give_identical_snapshots_and_traces() {
        let run = || {
            let tele = Telemetry::enabled();
            let mac = tele.scope("mac");
            let g = mac.counter("grants", CounterType::Packets);
            for i in 0..10 {
                tele.set_now(i as f64 * 0.1);
                g.inc();
                mac.event("grant", &[("i", (i as u64).into())]);
            }
            (tele.snapshot(), tele.trace_jsonl())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_snapshot_adds_monotone_and_sets_gauges() {
        let worker_a = Telemetry::enabled();
        worker_a.counter("sweep/runs", CounterType::Packets).add(3);
        worker_a.counter("fig4/coincide", CounterType::Gauge).set(7);
        let worker_b = Telemetry::enabled();
        worker_b.counter("sweep/runs", CounterType::Packets).add(2);
        worker_b.counter("fig4/coincide", CounterType::Gauge).set(9);
        let main = Telemetry::enabled();
        main.counter("sweep/runs", CounterType::Packets).inc();
        // Index-order merge: the serial run would end with b's gauge value.
        main.merge_snapshot(&worker_a.snapshot());
        main.merge_snapshot(&worker_b.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.value("sweep/runs"), Some(6));
        assert_eq!(snap.value("fig4/coincide"), Some(9));
    }

    #[test]
    fn clones_share_the_registry() {
        let tele = Telemetry::enabled();
        let clone = tele.clone();
        clone.counter("c", CounterType::Packets).inc();
        assert_eq!(tele.snapshot().value("c"), Some(1));
    }
}
