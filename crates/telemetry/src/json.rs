//! A minimal, deterministic JSON value type with writer and parser.
//!
//! The offline build carries no `serde`; this module provides the small
//! JSON surface the workspace needs — serializing run manifests, counter
//! snapshots, trace events and benchmark results, plus parsing them back in
//! tests. Object keys keep **insertion order** (no hashing), so the same
//! sequence of operations always produces byte-identical output — the
//! property the telemetry determinism contract rests on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integers (kept exact; never formatted with an exponent).
    Int(i64),
    /// Unsigned integers beyond `i64` (counters are `u64`).
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as u64 if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as bool for boolean variants.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as &str for string variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact one-line serialization (`to_string()` via `Display`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Deterministic float formatting: Rust's shortest round-trip `Display`,
/// with non-finite values mapped to `null` (JSON has no NaN/Inf).
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognizable as numbers with a fraction
        // ("3.0", not "3"), matching what most emitters produce and making
        // the variant survive a parse round-trip... except that JSON parsers
        // cannot distinguish; we simply emit the shortest form.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`]. Implemented for primitives and containers; the
/// result types the benchmark binaries dump implement it by hand (a few
/// lines each — the price of a zero-dependency build).
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
    )*};
}
macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
    )*};
}
to_json_uint!(u8, u16, u32, u64, usize);
to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

/// Derives [`ToJson`] for a plain struct: each listed field becomes an
/// object key in the listed order. Lives here (rather than a proc macro)
/// so the crate stays dependency-free.
///
/// ```
/// struct Point { x: f64, y: f64 }
/// empower_telemetry::impl_to_json_struct!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_to_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::obj([
                    $((stringify!($field), $crate::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output (we never escape above U+001F).
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character; `peek` returned `Some`,
                    // so `rest` is non-empty.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_stable() {
        let v = Json::obj([
            ("b", Json::Int(2)),
            ("a", Json::Int(1)),
            ("list", Json::arr([Json::Float(0.5), Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":2,"a":1,"list":[0.5,null,true]}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{0001}".to_string());
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = Json::parse(r#" { "x": [1, -2.5, {"y": []}], "z": null } "#).unwrap();
        assert_eq!(
            v.get("x").unwrap(),
            &Json::arr([Json::Int(1), Json::Float(-2.5), Json::obj([("y", Json::arr([]))]),])
        );
        assert_eq!(v.get("z"), Some(&Json::Null));
    }

    #[test]
    fn numbers_round_trip() {
        for v in [
            Json::Int(-42),
            Json::UInt(u64::MAX),
            Json::Float(3.5),
            Json::Float(1e-9),
            Json::Float(16.666666666666668),
        ] {
            let s = v.to_string();
            let back = Json::parse(&s).unwrap();
            assert_eq!(back.as_f64().unwrap(), v.as_f64().unwrap(), "{s}");
        }
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(-0.0).to_string(), "-0.0");
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = Json::obj([("a", Json::arr([Json::Int(1), Json::Int(2)]))]);
        let s = v.to_string_pretty();
        assert!(s.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }
}
