//! Capacity regions over route rates.
//!
//! Both centralized baselines maximize utility over a polytope
//! `{x ≥ 0 : A x ≤ (1 − δ)·1}` expressed in route-rate variables:
//!
//! * [`RegionKind::Conservative`] — one row per link `l`, encoding EMPoWER's
//!   constraint (2): `Σ_{l'∈I_l} d_{l'} x_{l'} ≤ 1` (with `x_{l'}` the sum of
//!   route rates crossing `l'`). This is what `conservative opt` uses.
//! * [`RegionKind::Cliques`] — one row per maximal clique `C` of the
//!   conflict graph: `Σ_{l∈C} d_l x_l ≤ 1`. Since every clique containing a
//!   link lies inside that link's closed neighbourhood `I_l`, this region
//!   *contains* the conservative one; it equals the true scheduling region
//!   exactly when the conflict graph is perfect and upper-bounds it
//!   otherwise. This is the `optimal` baseline's region (see DESIGN.md for
//!   the substitution note).

use empower_cc::CcProblem;
use empower_model::{InterferenceMap, LinkId};

use crate::conflict::{maximal_cliques, ConflictGraph};

/// Which constraint family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    Conservative,
    Cliques,
}

/// A capacity region in route-rate variables: rows of `A x ≤ budget`.
#[derive(Debug, Clone)]
pub struct CapacityRegion {
    /// Row-major constraint matrix over route indexes.
    pub rows: Vec<Vec<f64>>,
    /// Common right-hand side (1 − δ).
    pub budget: f64,
    pub kind: RegionKind,
}

impl CapacityRegion {
    /// Builds the region for `problem`'s routes.
    pub fn build(
        problem: &CcProblem,
        imap: &InterferenceMap,
        kind: RegionKind,
        delta: f64,
    ) -> Self {
        let link_sets: Vec<Vec<usize>> = match kind {
            RegionKind::Conservative => (0..problem.link_costs.len())
                .map(|i| imap.domain(LinkId(i as u32)).iter().map(|l| l.index()).collect())
                .collect(),
            RegionKind::Cliques => {
                let g = ConflictGraph::from_interference(imap);
                maximal_cliques(&g)
            }
        };
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for set in link_sets {
            let row: Vec<f64> = (0..problem.route_count())
                .map(|r| {
                    problem.routes[r]
                        .links()
                        .iter()
                        .filter(|l| set.contains(&l.index()))
                        .map(|l| problem.link_costs[l.index()])
                        .sum()
                })
                .collect();
            if row.iter().all(|&v| v == 0.0) {
                continue; // no candidate route touches this set
            }
            if !rows.contains(&row) {
                rows.push(row);
            }
        }
        CapacityRegion { rows, budget: 1.0 - delta, kind }
    }

    /// True if route rates `x` lie in the region (within tolerance).
    pub fn contains(&self, x: &[f64]) -> bool {
        self.rows
            .iter()
            .all(|row| row.iter().zip(x).map(|(a, v)| a * v).sum::<f64>() <= self.budget + 1e-9)
    }

    /// Number of constraint rows after deduplication.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, Path, SharedMedium};

    fn fig1_problem() -> (CcProblem, InterferenceMap) {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        (CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]), imap)
    }

    #[test]
    fn fig1_regions_coincide_for_shared_mediums() {
        // Under the shared-medium model, each I_l is itself a clique, so
        // conservative and clique regions are identical polytopes.
        let (p, imap) = fig1_problem();
        let cons = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let cliq = CapacityRegion::build(&p, &imap, RegionKind::Cliques, 0.0);
        for x in [[10.0, 20.0 / 3.0], [10.0, 7.0], [0.0, 10.0], [5.0, 5.0]] {
            assert_eq!(cons.contains(&x), cliq.contains(&x), "{x:?}");
        }
    }

    #[test]
    fn paper_optimum_is_on_the_boundary() {
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        assert!(region.contains(&[10.0, 20.0 / 3.0]));
        assert!(!region.contains(&[10.0, 20.0 / 3.0 + 0.01]));
        assert!(!region.contains(&[10.1, 20.0 / 3.0]));
    }

    #[test]
    fn margin_shrinks_the_region() {
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.2);
        assert!(!region.contains(&[10.0, 20.0 / 3.0]));
        assert!(region.contains(&[8.0, 16.0 / 3.0 - 0.01]));
    }

    #[test]
    fn rows_are_deduplicated() {
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        // 6 links but only 2 distinct constraint rows (one per medium).
        assert_eq!(region.row_count(), 2);
    }

    #[test]
    fn clique_region_contains_conservative_region() {
        // General inclusion: any point feasible under (2) satisfies every
        // clique inequality. Spot-check on a partial-interference chain
        // where the regions genuinely differ.
        use empower_model::{CarrierSense, Medium, NetworkBuilder, Point};
        let mut b = NetworkBuilder::new();
        let m = vec![Medium::WIFI1];
        let n: Vec<_> =
            (0..4).map(|i| b.add_node(Point::new(30.0 * i as f64, 0.0), m.clone(), None)).collect();
        let (l0, _) = b.add_duplex(n[0], n[1], Medium::WIFI1, 30.0);
        let (l1, _) = b.add_duplex(n[1], n[2], Medium::WIFI1, 30.0);
        let (l2, _) = b.add_duplex(n[2], n[3], Medium::WIFI1, 30.0);
        let net = b.build();
        // 25 m sensing: only adjacent links conflict — a path conflict
        // graph, where links 0 and 2 can transmit together.
        let imap = CarrierSense { wifi_sense_range_m: 25.0 }.build_map(&net);
        let path = Path::new(&net, vec![l0, l1, l2]).unwrap();
        let p = CcProblem::new(&net, &imap, vec![vec![path]]);
        let cons = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let cliq = CapacityRegion::build(&p, &imap, RegionKind::Cliques, 0.0);
        // Conservative: the middle link sees all three: x·3/30 ≤ 1 → x ≤ 10.
        // Cliques: {0,1} and {1,2}: x·2/30 ≤ 1 → x ≤ 15.
        assert!(cons.contains(&[10.0]) && !cons.contains(&[10.1]));
        assert!(cliq.contains(&[15.0]) && !cliq.contains(&[15.1]));
    }
}
