//! Fluid CSMA saturation model.
//!
//! Schemes without congestion control (MP-w/o-CC, SP-w/o-CC) inject traffic
//! open-loop; when the offered load exceeds what an interference domain can
//! carry, queues overflow and *upstream hops keep burning airtime on packets
//! that die downstream* — the congestion collapse of multihop paths the
//! paper cites (\[11, 33\]). This module computes the resulting end-to-end
//! goodput as the fixed point of a per-domain processor-sharing model:
//!
//! * every hop's arrival is the previous hop's *served* traffic;
//! * a link's demanded airtime is `arrival · d_l`;
//! * a domain serving more than 100 % demand scales every member link by
//!   `1 / demand` (CSMA with perfect sensing shares airtime, not rate).
//!
//! Damped fixed-point iteration converges in tens of rounds on local-network
//! topologies; the result is exact for feasible loads (no scaling happens)
//! and a standard approximation under overload.

use empower_model::{InterferenceMap, Network, Path};

/// Outcome of a saturation computation.
#[derive(Debug, Clone)]
pub struct FluidOutcome {
    /// End-to-end delivered rate per route, Mbps.
    pub delivered: Vec<f64>,
    /// Per-link arrival rates at the fixed point, Mbps.
    pub link_arrivals: Vec<f64>,
    /// Worst domain airtime demand at the fixed point.
    pub max_domain_airtime: f64,
}

/// Computes delivered goodput when route `i` is offered `offered[i]` Mbps at
/// its ingress.
pub fn saturation_goodput(
    net: &Network,
    imap: &InterferenceMap,
    routes: &[Path],
    offered: &[f64],
) -> FluidOutcome {
    assert_eq!(routes.len(), offered.len());
    let l_count = net.link_count();
    let costs: Vec<f64> = net.links().iter().map(|l| l.cost()).collect();
    // Service scaling per link, starts optimistic.
    let mut scale = vec![1.0_f64; l_count];
    let mut arrivals = vec![0.0_f64; l_count];
    let mut delivered = vec![0.0_f64; routes.len()];

    for _round in 0..300 {
        // Propagate offered traffic hop by hop under the current scaling.
        arrivals.iter_mut().for_each(|a| *a = 0.0);
        for (r, path) in routes.iter().enumerate() {
            let mut rate = offered[r];
            for &l in path.links() {
                arrivals[l.index()] += rate;
                rate *= scale[l.index()];
            }
            delivered[r] = rate;
        }
        // Domain demands and new scalings.
        let mut new_scale = vec![1.0_f64; l_count];
        #[allow(clippy::needless_range_loop)] // l is also the LinkId
        for l in 0..l_count {
            let demand: f64 = imap
                .domain(empower_model::LinkId(l as u32))
                .iter()
                .map(|&i| {
                    let c = costs[i.index()];
                    if c.is_finite() {
                        arrivals[i.index()] * c
                    } else if arrivals[i.index()] > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                })
                .sum();
            if demand > 1.0 {
                new_scale[l] = 1.0 / demand;
            }
        }
        // Damping for stability.
        let mut moved = 0.0_f64;
        for l in 0..l_count {
            let next = 0.5 * scale[l] + 0.5 * new_scale[l];
            moved = moved.max((next - scale[l]).abs());
            scale[l] = next;
        }
        if moved < 1e-10 {
            break;
        }
    }
    let max_domain_airtime = (0..l_count)
        .map(|l| {
            imap.domain(empower_model::LinkId(l as u32))
                .iter()
                .map(|&i| {
                    let c = costs[i.index()];
                    if c.is_finite() {
                        arrivals[i.index()] * c * scale[i.index()]
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
        })
        .fold(0.0, f64::max);
    FluidOutcome { delivered, link_arrivals: arrivals, max_domain_airtime }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn feasible_load_is_delivered_intact() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let out = saturation_goodput(&s.net, &imap, &[route1, route2], &[10.0, 6.0]);
        assert!((out.delivered[0] - 10.0).abs() < 1e-6);
        assert!((out.delivered[1] - 6.0).abs() < 1e-6);
        assert!(out.max_domain_airtime <= 1.0 + 1e-6);
    }

    #[test]
    fn overload_collapses_goodput_below_capacity() {
        // Drive the WiFi-WiFi route at 30 Mbps (capacity 10): the first hop
        // burns airtime on traffic the second hop must drop, so goodput
        // lands *below* the 10 Mbps the path could carry if paced.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let out = saturation_goodput(&s.net, &imap, &[route2], &[30.0]);
        assert!(out.delivered[0] < 10.0, "delivered {}", out.delivered[0]);
        assert!(out.delivered[0] > 2.0, "not a total blackout: {}", out.delivered[0]);
    }

    #[test]
    fn single_hop_overload_saturates_at_capacity() {
        // A single-hop route wastes nothing: offered 50 on a 10 Mbps PLC
        // link delivers ~10.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let plc = Path::new(&s.net, vec![s.plc_ab]).unwrap();
        let out = saturation_goodput(&s.net, &imap, &[plc], &[50.0]);
        assert!((out.delivered[0] - 10.0).abs() < 0.2, "delivered {}", out.delivered[0]);
    }

    #[test]
    fn contending_overloaded_routes_share_airtime() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let wifi_ab = Path::new(&s.net, vec![s.wifi_ab]).unwrap();
        let wifi_bc = Path::new(&s.net, vec![s.wifi_bc]).unwrap();
        let out = saturation_goodput(&s.net, &imap, &[wifi_ab, wifi_bc], &[100.0, 100.0]);
        // Demand D = 100/15 + 100/30 = 10 → each link serves arrival/D:
        // 10 and 10 Mbps (equal-throughput Lemma 1 point, Rmax = 10).
        assert!((out.delivered[0] - 10.0).abs() < 0.2, "{:?}", out.delivered);
        assert!((out.delivered[1] - 10.0).abs() < 0.2, "{:?}", out.delivered);
    }

    #[test]
    fn zero_offered_is_zero_delivered() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let plc = Path::new(&s.net, vec![s.plc_ab]).unwrap();
        let out = saturation_goodput(&s.net, &imap, &[plc], &[0.0]);
        assert_eq!(out.delivered[0], 0.0);
        assert_eq!(out.max_domain_airtime, 0.0);
    }

    #[test]
    fn paced_beats_saturated_on_multihop() {
        // The whole point of congestion control (Table 1): offered exactly
        // at capacity delivers more than wild over-injection.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let paced =
            saturation_goodput(&s.net, &imap, std::slice::from_ref(&route2), &[10.0]).delivered[0];
        let wild = saturation_goodput(&s.net, &imap, &[route2], &[100.0]).delivered[0];
        assert!(paced > wild, "paced {paced} vs wild {wild}");
    }
}
