//! A small dense-simplex solver for `max cᵀx  s.t.  Ax ≤ b, x ≥ 0`.
//!
//! The capacity-region LPs of this crate are tiny (hundreds of route
//! variables, tens of airtime constraints, `b = 1`), so a straightforward
//! tableau simplex with Bland's anti-cycling rule is exact, fast, and free
//! of external dependencies. All right-hand sides are non-negative in our
//! use (airtime budgets), so the initial slack basis is always feasible.

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpOutcome {
    /// Optimal primal solution.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Solves `max cᵀx` subject to `Ax ≤ b`, `x ≥ 0`.
///
/// `a` is row-major (`a[i]` is constraint row `i`). Every `b[i]` must be
/// ≥ 0. Returns `None` if the problem is unbounded.
///
/// # Panics
/// Panics on dimension mismatches or negative `b`.
pub fn solve_lp(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Option<LpOutcome> {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m, "one rhs per row");
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "row {i} has wrong width");
        assert!(b[i] >= 0.0, "rhs must be non-negative (row {i}: {})", b[i]);
    }
    if n == 0 {
        return Some(LpOutcome { x: Vec::new(), objective: 0.0 });
    }

    // Tableau: m rows × (n + m + 1) columns (variables, slacks, rhs).
    let cols = n + m + 1;
    let mut t = vec![vec![0.0; cols]; m];
    for i in 0..m {
        t[i][..n].copy_from_slice(&a[i]);
        t[i][n + i] = 1.0;
        t[i][cols - 1] = b[i];
    }
    // Objective row: minimize -cᵀx.
    let mut obj = vec![0.0; cols];
    for j in 0..n {
        obj[j] = -c[j];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    const EPS: f64 = 1e-9;
    let max_iters = 50 * (n + m) * (m + 1).max(10);
    for _ in 0..max_iters {
        // Entering column: most negative reduced cost (Dantzig), Bland on
        // near-ties to avoid cycling.
        let mut enter = None;
        let mut best = -EPS;
        for (j, &oj) in obj.iter().enumerate().take(cols - 1) {
            if oj < best {
                best = oj;
                enter = Some(j);
            }
        }
        let Some(enter) = enter else {
            // Optimal.
            let mut x = vec![0.0; n];
            for (i, &bv) in basis.iter().enumerate() {
                if bv < n {
                    x[bv] = t[i][cols - 1];
                }
            }
            let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
            return Some(LpOutcome { x, objective });
        };
        // Ratio test.
        let mut leave = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols - 1] / t[i][enter];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leave.is_none_or(|l: usize| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return None; // unbounded
        };
        // Pivot.
        let pivot = t[leave][enter];
        for v in t[leave].iter_mut() {
            *v /= pivot;
        }
        for i in 0..m {
            if i != leave && t[i][enter].abs() > EPS {
                let factor = t[i][enter];
                // Two rows of the same tableau: split to borrow disjointly.
                let (head, tail) = t.split_at_mut(i.max(leave));
                let (row, pivot_row) =
                    if i < leave { (&mut head[i], &tail[0]) } else { (&mut tail[0], &head[leave]) };
                for (v, pv) in row.iter_mut().zip(pivot_row) {
                    *v -= factor * pv;
                }
            }
        }
        if obj[enter].abs() > EPS {
            let factor = obj[enter];
            for (o, tv) in obj.iter_mut().zip(&t[leave]) {
                *o -= factor * tv;
            }
        }
        basis[leave] = enter;
    }
    // Iteration cap hit: return the current (feasible) basic solution.
    let mut x = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            x[bv] = t[i][cols - 1];
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Some(LpOutcome { x, objective })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_textbook_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let out = solve_lp(
            &[3.0, 5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        )
        .unwrap();
        assert!((out.objective - 36.0).abs() < 1e-9);
        assert!((out.x[0] - 2.0).abs() < 1e-9);
        assert!((out.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn detects_unbounded() {
        // max x with no binding constraint.
        assert!(solve_lp(&[1.0], &[vec![-1.0]], &[1.0]).is_none());
    }

    #[test]
    fn zero_objective_is_fine() {
        let out = solve_lp(&[0.0, 0.0], &[vec![1.0, 1.0]], &[1.0]).unwrap();
        assert_eq!(out.objective, 0.0);
    }

    #[test]
    fn degenerate_constraints_do_not_cycle() {
        // Multiple identical rows.
        let out = solve_lp(
            &[1.0, 1.0],
            &[vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]],
            &[1.0, 1.0, 1.0],
        )
        .unwrap();
        assert!((out.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_airtime_lp_matches_hand_computation() {
        // Route variables (x1 = hybrid route, x2 = wifi-wifi route) under
        // the Fig. 1 airtime constraints:
        //   PLC domain:  x1/10 ≤ 1
        //   WiFi domain: x1/30 + x2(1/15 + 1/30) ≤ 1
        // max x1 + x2 → x1 = 10, x2 = 20/3.
        let out =
            solve_lp(&[1.0, 1.0], &[vec![0.1, 0.0], vec![1.0 / 30.0, 0.1]], &[1.0, 1.0]).unwrap();
        assert!((out.x[0] - 10.0).abs() < 1e-9);
        assert!((out.x[1] - 20.0 / 3.0).abs() < 1e-9);
        assert!((out.objective - 50.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_problem_is_trivial() {
        let out = solve_lp(&[], &[], &[]).unwrap();
        assert!(out.x.is_empty());
        assert_eq!(out.objective, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rhs_is_rejected() {
        solve_lp(&[1.0], &[vec![1.0]], &[-1.0]);
    }
}
