//! Exhaustive enumeration of simple paths, used to hand the centralized
//! baselines the *full* route space (they are allowed optimal routing,
//! unlike EMPoWER which preselects routes).

use empower_model::{Medium, Network, NodeId, Path};

/// Enumerates every loop-free path from `src` to `dst` with at most
/// `max_hops` links, optionally restricted to `allowed_mediums`.
///
/// Local-network paths are short (§3.2: testbed tree depth ≤ 3, header
/// limits routes to 6 hops), so DFS with a hop cap is exact and fast.
pub fn enumerate_paths(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
    allowed_mediums: Option<&[Medium]>,
) -> Vec<Path> {
    let mut out = Vec::new();
    let mut visited = vec![false; net.node_count()];
    visited[src.index()] = true;
    let mut stack = Vec::new();
    dfs(net, src, dst, max_hops, allowed_mediums, &mut visited, &mut stack, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    net: &Network,
    at: NodeId,
    dst: NodeId,
    budget: usize,
    allowed: Option<&[Medium]>,
    visited: &mut Vec<bool>,
    stack: &mut Vec<empower_model::LinkId>,
    out: &mut Vec<Path>,
) {
    if budget == 0 {
        return;
    }
    for link in net.out_links(at) {
        if !link.is_alive() || visited[link.to.index()] {
            continue;
        }
        if let Some(allowed) = allowed {
            if !allowed.contains(&link.medium) {
                continue;
            }
        }
        stack.push(link.id);
        if link.to == dst {
            out.push(Path::from_links_unchecked(stack.clone()));
        } else {
            visited[link.to.index()] = true;
            dfs(net, link.to, dst, budget - 1, allowed, visited, stack, out);
            visited[link.to.index()] = false;
        }
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};

    #[test]
    fn fig1_has_two_paths() {
        let s = fig1_scenario();
        let paths = enumerate_paths(&s.net, s.gateway, s.client, 4, None);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn fig3_has_exactly_the_three_routes() {
        let s = fig3_scenario();
        let paths = enumerate_paths(&s.net, s.source, s.dest, 4, None);
        // Routes 1, 2, 3 plus the 2-hop "mixed" detours via u and v using
        // the wrong-medium legs… the fixture only wires each leg on one
        // medium, so exactly 3 paths exist.
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn hop_cap_is_respected() {
        let s = fig3_scenario();
        let paths = enumerate_paths(&s.net, s.source, s.dest, 1, None);
        assert_eq!(paths.len(), 1); // only the direct Route 3
        assert_eq!(paths[0].links(), &s.route3[..]);
    }

    #[test]
    fn medium_restriction_prunes_paths() {
        let s = fig1_scenario();
        let wifi_only =
            enumerate_paths(&s.net, s.gateway, s.client, 4, Some(&[empower_model::Medium::WIFI1]));
        assert_eq!(wifi_only.len(), 1);
    }

    #[test]
    fn paths_are_simple() {
        let s = fig3_scenario();
        for p in enumerate_paths(&s.net, s.source, s.dest, 6, None) {
            let nodes = p.nodes(&s.net);
            let mut dedup = nodes.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), nodes.len());
        }
    }

    #[test]
    fn dead_links_are_skipped() {
        let mut s = fig1_scenario();
        s.net.set_capacity(s.plc_ab, 0.0);
        let paths = enumerate_paths(&s.net, s.gateway, s.client, 4, None);
        assert_eq!(paths.len(), 1);
    }
}
