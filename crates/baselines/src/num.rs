//! Centralized network-utility maximization over a capacity region.
//!
//! `max Σ_f U_f(Σ_{r∈f} x_r)` over `{x ≥ 0 : A x ≤ b}` is solved by the
//! Frank–Wolfe (conditional-gradient) method: every iteration linearizes the
//! utility at the current point, solves the resulting LP exactly with the
//! dense simplex, and moves by an exact (ternary-search) line step. The
//! objective is concave and the region is a polytope, so the iterates
//! converge to the global optimum; with the LP solved exactly the duality
//! gap `∇U·(s − x)` is a certified optimality bound, which we expose.
//!
//! This gives the paper's two reference baselines:
//! `optimal` = clique region, `conservative opt` = constraint-(2) region
//! (§5.2.2), both with *centralized* knowledge — exactly what EMPoWER's
//! distributed controller is compared against.

use empower_cc::{CcProblem, Utility};

use crate::region::CapacityRegion;
use crate::simplex::solve_lp;

/// Result of a centralized solve.
#[derive(Debug, Clone)]
pub struct NumSolution {
    /// Optimal route rates.
    pub x: Vec<f64>,
    /// Per-flow totals.
    pub flow_rates: Vec<f64>,
    /// Achieved aggregate utility.
    pub utility: f64,
    /// Final Frank–Wolfe duality gap (≥ optimal − achieved).
    pub gap: f64,
}

/// Maximizes aggregate utility over `region`.
///
/// `iters` Frank–Wolfe iterations; 200–500 reaches well below 1 % error on
/// the evaluation topologies. For a *linear* utility the first iteration is
/// already exact.
pub fn maximize_utility<U: Utility>(
    problem: &CcProblem,
    region: &CapacityRegion,
    utility: &U,
    iters: usize,
) -> NumSolution {
    let n = problem.route_count();
    let b = vec![region.budget; region.rows.len()];
    let mut x = vec![0.0; n];
    let mut gap = f64::INFINITY;

    for _ in 0..iters {
        let flow_rates = problem.flow_rates(&x);
        // ∇_x Σ U_f = U'_f(x_f) for every route of flow f.
        let grad: Vec<f64> =
            (0..n).map(|r| utility.deriv(flow_rates[problem.flow_of[r]])).collect();
        let Some(lp) = solve_lp(&grad, &region.rows, &b) else {
            // Unbounded region can only happen if some route crosses no
            // constrained link — physically impossible, but bail gracefully.
            break;
        };
        let s = lp.x;
        gap = grad.iter().zip(s.iter().zip(&x)).map(|(g, (si, xi))| g * (si - xi)).sum();
        if gap <= 1e-9 {
            break;
        }
        // Exact line search on the concave φ(θ) = U(x + θ (s − x)).
        let eval = |theta: f64| {
            let xt: Vec<f64> = x.iter().zip(&s).map(|(xi, si)| xi + theta * (si - xi)).collect();
            problem.flow_rates(&xt).iter().map(|&f| utility.value(f)).sum::<f64>()
        };
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..60 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if eval(m1) < eval(m2) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        let theta = 0.5 * (lo + hi);
        for (xi, si) in x.iter_mut().zip(&s) {
            *xi += theta * (si - *xi);
        }
    }
    let flow_rates = problem.flow_rates(&x);
    let total_utility = flow_rates.iter().map(|&f| utility.value(f)).sum();
    NumSolution { x, flow_rates, utility: total_utility, gap: gap.max(0.0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionKind;
    use empower_cc::{Linear, ProportionalFair};
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceMap, InterferenceModel, Path, SharedMedium};

    fn fig1_problem() -> (CcProblem, InterferenceMap) {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        (CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]), imap)
    }

    #[test]
    fn linear_utility_recovers_max_throughput() {
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let sol = maximize_utility(&p, &region, &Linear { weight: 1.0 }, 50);
        let total: f64 = sol.flow_rates.iter().sum();
        assert!((total - 50.0 / 3.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn proportional_fair_single_flow_also_maxes_throughput() {
        // With one flow, any increasing utility maximizes total rate.
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let sol = maximize_utility(&p, &region, &ProportionalFair, 300);
        let total: f64 = sol.flow_rates.iter().sum();
        assert!((total - 50.0 / 3.0).abs() < 1e-3, "total {total}");
        assert!(sol.gap < 1e-3);
    }

    #[test]
    fn matches_the_distributed_controller_equilibrium() {
        // The centralized conservative optimum must agree with what the
        // distributed controller converges to (§5.2.2 claims EMPoWER ≈
        // conservative opt when routing finds the right routes).
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let sol = maximize_utility(&p, &region, &ProportionalFair, 300);
        let mut c = empower_cc::MultipathController::new(
            &p,
            ProportionalFair,
            empower_cc::CcConfig::default(),
        );
        for _ in 0..5000 {
            c.step(&p, &imap);
        }
        let distributed: f64 = c.rates().iter().sum();
        let central: f64 = sol.flow_rates.iter().sum();
        assert!((distributed - central).abs() < 0.1, "{distributed} vs {central}");
    }

    #[test]
    fn two_flow_fair_split_matches_lagrangian_solution() {
        // Two single-route flows on one shared 20/10 Mbps domain (see the
        // controller test): PF optimum (10.5, 4.75).
        use empower_model::topology::fig3_scenario;
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let pa = Path::new(&s.net, vec![s.route1[0]]).unwrap();
        let pb = Path::new(&s.net, s.route3.to_vec()).unwrap();
        let p = CcProblem::new(&s.net, &imap, vec![vec![pa], vec![pb]]);
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let sol = maximize_utility(&p, &region, &ProportionalFair, 400);
        assert!((sol.flow_rates[0] - 10.5).abs() < 0.05, "{:?}", sol.flow_rates);
        assert!((sol.flow_rates[1] - 4.75).abs() < 0.05, "{:?}", sol.flow_rates);
    }

    #[test]
    fn solution_is_feasible() {
        let (p, imap) = fig1_problem();
        let region = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let sol = maximize_utility(&p, &region, &ProportionalFair, 200);
        assert!(region.contains(&sol.x));
    }

    #[test]
    fn delta_margin_lowers_the_optimum() {
        let (p, imap) = fig1_problem();
        let tight = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.3);
        let loose = CapacityRegion::build(&p, &imap, RegionKind::Conservative, 0.0);
        let ut = maximize_utility(&p, &tight, &Linear { weight: 1.0 }, 50);
        let ul = maximize_utility(&p, &loose, &Linear { weight: 1.0 }, 50);
        assert!(ut.utility < ul.utility);
        assert!((ut.utility - 0.7 * ul.utility).abs() < 1e-6, "scales with budget");
    }
}
