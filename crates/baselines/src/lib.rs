#![forbid(unsafe_code)]
//! # empower-baselines
//!
//! The comparison schemes of the paper's evaluation (§5.2.2):
//!
//! * **optimal** — a centralized utility maximizer over the best available
//!   relaxation of the true scheduling capacity region (maximal-clique
//!   constraints on the conflict graph; exact when the conflict graph is
//!   perfect, an upper bound otherwise);
//! * **conservative opt** — the same maximizer under EMPoWER's conservative
//!   per-interference-domain constraint (2), isolating the cost of the
//!   constraint from the cost of preselecting routes;
//! * **backpressure** — the slot-level dynamic scheme of Neely et al. \[27\]:
//!   drift-plus-penalty admission at sources plus max-weight scheduling
//!   (exact maximum-weight independent set per slot), used to reproduce the
//!   convergence-time comparison of §5.2.2;
//! * a **fluid CSMA saturation model** that computes the goodput of schemes
//!   *without* congestion control (MP-w/o-CC, SP-w/o-CC), including the
//!   congestion collapse on over-driven multihop paths;
//! * supporting machinery: conflict graphs, Bron–Kerbosch maximal cliques,
//!   exact branch-and-bound MWIS, path enumeration, a dense-simplex LP
//!   solver and Frank–Wolfe for concave utility maximization.

pub mod backpressure;
pub mod conflict;
pub mod fluid;
pub mod num;
pub mod path_enum;
pub mod region;
pub mod simplex;

pub use backpressure::{Backpressure, BackpressureConfig, BackpressureResult};
pub use conflict::{max_weight_independent_set, maximal_cliques, ConflictGraph};
pub use fluid::{saturation_goodput, FluidOutcome};
pub use num::{maximize_utility, NumSolution};
pub use path_enum::enumerate_paths;
pub use region::{CapacityRegion, RegionKind};
pub use simplex::{solve_lp, LpOutcome};
