//! Conflict graphs over links, maximal cliques, and maximum-weight
//! independent sets.
//!
//! The conflict graph has one vertex per directed link; two vertices are
//! adjacent iff the links cannot transmit simultaneously. A feasible
//! transmission schedule activates an independent set per instant; the
//! backpressure baseline needs the *maximum-weight* independent set each
//! slot, and the `optimal` capacity region is approximated by the maximal-
//! clique inequalities.

use empower_model::{InterferenceMap, LinkId};

/// Dense adjacency over links (vertex `i` ↔ `LinkId(i)`).
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    n: usize,
    /// Adjacency sets, sorted. `adj[i]` excludes `i` itself.
    adj: Vec<Vec<usize>>,
}

impl ConflictGraph {
    /// Builds the conflict graph from precomputed interference domains
    /// (`I_l` minus the link itself).
    pub fn from_interference(imap: &InterferenceMap) -> Self {
        let n = imap.link_count();
        let adj = (0..n)
            .map(|i| {
                imap.domain(LinkId(i as u32))
                    .iter()
                    .map(|l| l.index())
                    .filter(|&j| j != i)
                    .collect()
            })
            .collect();
        ConflictGraph { n, adj }
    }

    /// Number of vertices (links).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True if vertices `a` and `b` conflict.
    pub fn conflicts(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }
}

/// All maximal cliques (Bron–Kerbosch with pivoting). Intended for conflict
/// graphs of local networks (≲ a few hundred vertices).
pub fn maximal_cliques(g: &ConflictGraph) -> Vec<Vec<usize>> {
    let mut cliques = Vec::new();
    let mut r = Vec::new();
    let p: Vec<usize> = (0..g.len()).collect();
    let x: Vec<usize> = Vec::new();
    bron_kerbosch(g, &mut r, p, x, &mut cliques);
    cliques
}

fn bron_kerbosch(
    g: &ConflictGraph,
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        let mut clique = r.clone();
        clique.sort_unstable();
        out.push(clique);
        return;
    }
    // Pivot: vertex of P ∪ X with the most neighbors in P. The early
    // return above fired if P ∪ X was empty, but degrade to "no work"
    // rather than panicking if that ever changes.
    let Some(pivot) = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| g.conflicts(u, v)).count())
    else {
        return;
    };
    let candidates: Vec<usize> = p.iter().copied().filter(|&v| !g.conflicts(pivot, v)).collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        let np: Vec<usize> = p.iter().copied().filter(|&u| g.conflicts(v, u)).collect();
        let nx: Vec<usize> = x.iter().copied().filter(|&u| g.conflicts(v, u)).collect();
        r.push(v);
        bron_kerbosch(g, r, np, nx, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// Maximum-weight independent set: exact branch and bound when the
/// positive-weight candidate set is small enough to enumerate reliably,
/// greedy maximal scheduling (GMS — the standard practical relaxation of
/// max-weight scheduling) beyond that.
///
/// Zero- and negative-weight vertices are never selected (they cannot
/// help), which keeps the search small for backpressure where most links
/// have zero differential backlog. Instances with more than
/// [`EXACT_MWIS_LIMIT`] positive vertices fall back to the greedy rule;
/// backpressure's throughput optimality then degrades to GMS's efficiency
/// ratio, which is the trade every practical backpressure implementation
/// makes (§7 discusses why exact max-weight scheduling is unusable).
pub fn max_weight_independent_set(g: &ConflictGraph, weights: &[f64]) -> (Vec<usize>, f64) {
    assert_eq!(weights.len(), g.len());
    // Candidates: positive weight only, sorted by descending weight for
    // better pruning.
    let mut order: Vec<usize> = (0..g.len()).filter(|&v| weights[v] > 0.0).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    if order.len() > EXACT_MWIS_LIMIT {
        let mut chosen: Vec<usize> = Vec::new();
        let mut total = 0.0;
        for v in order {
            if chosen.iter().all(|&u| !g.conflicts(u, v)) {
                total += weights[v];
                chosen.push(v);
            }
        }
        chosen.sort_unstable();
        return (chosen, total);
    }
    let mut best: Vec<usize> = Vec::new();
    let mut best_w = 0.0;
    let mut current: Vec<usize> = Vec::new();
    branch(g, weights, &order, 0, 0.0, &mut current, &mut best, &mut best_w);
    best.sort_unstable();
    (best, best_w)
}

/// Positive-vertex count above which MWIS switches to greedy scheduling.
pub const EXACT_MWIS_LIMIT: usize = 36;

#[allow(clippy::too_many_arguments)]
fn branch(
    g: &ConflictGraph,
    weights: &[f64],
    order: &[usize],
    idx: usize,
    current_w: f64,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_w: &mut f64,
) {
    // Upper bound: current + all remaining weights.
    let remaining: f64 = order[idx..].iter().map(|&v| weights[v]).sum();
    if current_w + remaining <= *best_w {
        return;
    }
    if idx == order.len() {
        if current_w > *best_w {
            *best_w = current_w;
            *best = current.clone();
        }
        return;
    }
    let v = order[idx];
    // Include v if compatible.
    if current.iter().all(|&u| !g.conflicts(u, v)) {
        current.push(v);
        branch(g, weights, order, idx + 1, current_w + weights[v], current, best, best_w);
        current.pop();
    }
    // Exclude v.
    branch(g, weights, order, idx + 1, current_w, current, best, best_w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    fn fig1_graph() -> ConflictGraph {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        ConflictGraph::from_interference(&imap)
    }

    #[test]
    fn conflict_graph_mirrors_interference() {
        // Fig. 1: 6 directed links; WiFi links (ids 2..6) form a clique of 4,
        // PLC links (0, 1) a clique of 2, no cross-medium edges.
        let g = fig1_graph();
        assert_eq!(g.len(), 6);
        assert!(g.conflicts(0, 1)); // plc fwd/rev
        assert!(g.conflicts(2, 4)); // wifi a-b with wifi b-c
        assert!(!g.conflicts(0, 2)); // plc vs wifi
    }

    #[test]
    fn cliques_of_fig1_are_the_two_mediums() {
        let g = fig1_graph();
        let mut cliques = maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1], vec![2, 3, 4, 5]]);
    }

    #[test]
    fn mwis_picks_one_link_per_medium() {
        let g = fig1_graph();
        // Weight link 0 (plc) and links 2,4 (wifi) — wifi pair conflicts.
        let mut w = vec![0.0; 6];
        w[0] = 1.0;
        w[2] = 2.0;
        w[4] = 1.5;
        let (set, total) = max_weight_independent_set(&g, &w);
        assert_eq!(set, vec![0, 2]);
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mwis_ignores_zero_weights() {
        let g = fig1_graph();
        let (set, total) = max_weight_independent_set(&g, &[0.0; 6]);
        assert!(set.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn mwis_is_independent() {
        let g = fig1_graph();
        let w = vec![1.0, 1.1, 0.9, 1.2, 1.3, 0.8];
        let (set, _) = max_weight_independent_set(&g, &w);
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                assert!(!g.conflicts(a, b));
            }
        }
    }

    #[test]
    fn mwis_beats_greedy_on_a_path_graph() {
        // Path graph 0-1-2 with weights 1, 1.5, 1: greedy by weight takes
        // {1} (1.5); optimal takes {0, 2} (2.0).
        let imap_free = |n: usize, edges: &[(usize, usize)]| {
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in edges {
                adj[a].push(b);
                adj[b].push(a);
            }
            for a in &mut adj {
                a.sort_unstable();
            }
            ConflictGraph { n, adj }
        };
        let g = imap_free(3, &[(0, 1), (1, 2)]);
        let (set, total) = max_weight_independent_set(&g, &[1.0, 1.5, 1.0]);
        assert_eq!(set, vec![0, 2]);
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cliques_cover_all_edges() {
        let g = fig1_graph();
        let cliques = maximal_cliques(&g);
        for a in 0..g.len() {
            for &b in g.neighbors(a) {
                assert!(
                    cliques.iter().any(|c| c.contains(&a) && c.contains(&b)),
                    "edge ({a},{b}) not covered"
                );
            }
        }
    }
}
