//! The backpressure baseline of Neely et al. \[27\] (§5.2.2).
//!
//! A slot-level drift-plus-penalty scheme with per-node, per-flow backlogs:
//!
//! 1. **Admission**: each source admits
//!    `a_f = min(A_max, U'⁻¹(Q_src^f / V))` — the utility-gradient rule with
//!    trade-off parameter `V` (larger `V` → closer to optimal utility, but
//!    proportionally larger queues and slower convergence; this is exactly
//!    the symptom the paper's convergence comparison exposes).
//! 2. **Scheduling**: per slot, activate the *maximum-weight independent
//!    set* of the conflict graph, with link weight
//!    `w_l = c_l · max_f (Q_tx^f − Q_rx^f)⁺` — solved exactly (this is the
//!    NP-hard, centralized step that makes the scheme impractical; on
//!    local-network conflict graphs the branch-and-bound is fine).
//! 3. **Forwarding**: an active link moves up to `c_l · τ` megabits of its
//!    argmax flow; traffic reaching the flow's destination leaves the
//!    system and is counted as delivered.
//!
//! Routing is implicit (traffic follows backlog gradients), which is why the
//! scheme is throughput-optimal at steady state but "good routes are
//! employed only after the queues on the bad routes start to fill up".

use empower_cc::Utility;
use empower_model::{InterferenceMap, Network, NodeId};

use crate::conflict::{max_weight_independent_set, ConflictGraph};

/// Backpressure parameters.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureConfig {
    /// Utility/backlog trade-off `V`.
    pub v: f64,
    /// Slot length `τ`, seconds (0.1 s to match EMPoWER's ACK interval).
    pub slot_secs: f64,
    /// Admission cap per slot, Mbps.
    pub a_max: f64,
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig { v: 300.0, slot_secs: 0.1, a_max: 200.0 }
    }
}

/// Result of a backpressure run.
#[derive(Debug, Clone)]
pub struct BackpressureResult {
    /// Long-run delivered throughput per flow (window-averaged tail), Mbps.
    pub flow_throughputs: Vec<f64>,
    /// Windowed delivered-rate trajectory per slot, per flow (Mbps).
    pub trajectory: Vec<Vec<f64>>,
    /// Total delivered megabits per flow.
    pub delivered_mb: Vec<f64>,
}

/// The backpressure simulator.
#[derive(Debug)]
pub struct Backpressure {
    config: BackpressureConfig,
    /// Flow endpoints.
    flows: Vec<(NodeId, NodeId)>,
    /// Backlog `Q[node][flow]`, megabits.
    queues: Vec<Vec<f64>>,
    conflict: ConflictGraph,
}

impl Backpressure {
    /// Creates the scheme for the given flows.
    pub fn new(
        net: &Network,
        imap: &InterferenceMap,
        flows: Vec<(NodeId, NodeId)>,
        config: BackpressureConfig,
    ) -> Self {
        Backpressure {
            config,
            queues: vec![vec![0.0; flows.len()]; net.node_count()],
            flows,
            conflict: ConflictGraph::from_interference(imap),
        }
    }

    /// Runs `slots` slots under `utility`; returns delivered-rate statistics.
    pub fn run<U: Utility>(
        &mut self,
        net: &Network,
        utility: &U,
        slots: usize,
    ) -> BackpressureResult {
        let window = 50usize;
        let nf = self.flows.len();
        let tau = self.config.slot_secs;
        let mut delivered_mb = vec![0.0; nf];
        let mut recent: Vec<Vec<f64>> = Vec::with_capacity(slots); // per-slot delivered Mb
        let mut trajectory: Vec<Vec<f64>> = Vec::with_capacity(slots);

        for _ in 0..slots {
            // 1. Admission.
            for (f, &(src, _)) in self.flows.iter().enumerate() {
                let q = self.queues[src.index()][f];
                let a = utility.deriv_inv(q / self.config.v).min(self.config.a_max);
                self.queues[src.index()][f] += a * tau;
            }
            // 2. Max-weight schedule.
            let weights: Vec<f64> = net
                .links()
                .iter()
                .map(|l| {
                    if !l.is_alive() {
                        return 0.0;
                    }
                    let best_diff = (0..nf)
                        .map(|f| {
                            let rx = if self.flows[f].1 == l.to {
                                0.0 // destination absorbs
                            } else {
                                self.queues[l.to.index()][f]
                            };
                            self.queues[l.from.index()][f] - rx
                        })
                        .fold(0.0_f64, f64::max);
                    l.capacity_mbps * best_diff
                })
                .collect();
            let (active, _) = max_weight_independent_set(&self.conflict, &weights);
            // 3. Forwarding.
            let mut slot_delivered = vec![0.0; nf];
            for li in active {
                let link = &net.links()[li];
                // Argmax flow for this link (recompute; cheap).
                let mut best_f = None;
                let mut best_diff = 0.0;
                for f in 0..nf {
                    let rx = if self.flows[f].1 == link.to {
                        0.0
                    } else {
                        self.queues[link.to.index()][f]
                    };
                    let diff = self.queues[link.from.index()][f] - rx;
                    if diff > best_diff {
                        best_diff = diff;
                        best_f = Some(f);
                    }
                }
                let Some(f) = best_f else { continue };
                let amount = (link.capacity_mbps * tau).min(self.queues[link.from.index()][f]);
                self.queues[link.from.index()][f] -= amount;
                if self.flows[f].1 == link.to {
                    delivered_mb[f] += amount;
                    slot_delivered[f] += amount;
                } else {
                    self.queues[link.to.index()][f] += amount;
                }
            }
            recent.push(slot_delivered);
            // Windowed delivered rate.
            let lo = recent.len().saturating_sub(window);
            let w = &recent[lo..];
            let rates: Vec<f64> = (0..nf)
                .map(|f| w.iter().map(|s| s[f]).sum::<f64>() / (w.len() as f64 * tau))
                .collect();
            trajectory.push(rates);
        }

        let tail = trajectory.last().cloned().unwrap_or_else(|| vec![0.0; nf]);
        BackpressureResult { flow_throughputs: tail, trajectory, delivered_mb }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_cc::ProportionalFair;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn single_flow_approaches_the_multipath_optimum() {
        // Backpressure with both mediums available should approach the
        // 16.67 Mbps optimum of the Fig. 1 scenario.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut bp = Backpressure::new(
            &s.net,
            &imap,
            vec![(s.gateway, s.client)],
            BackpressureConfig::default(),
        );
        let out = bp.run(&s.net, &ProportionalFair, 6000);
        let t = out.flow_throughputs[0];
        assert!(t > 15.0 && t < 17.5, "throughput {t}");
    }

    #[test]
    fn larger_v_converges_slower() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let run = |v: f64| {
            let mut bp = Backpressure::new(
                &s.net,
                &imap,
                vec![(s.gateway, s.client)],
                BackpressureConfig { v, ..Default::default() },
            );
            let out = bp.run(&s.net, &ProportionalFair, 4000);
            let traj: Vec<f64> = out.trajectory.iter().map(|t| t[0]).collect();
            empower_cc::slots_to_converge(&traj, empower_cc::ConvergenceCriterion::default())
                .unwrap_or(usize::MAX)
        };
        let fast = run(50.0);
        let slow = run(1000.0);
        assert!(slow > fast, "V=1000 took {slow} ≤ V=50 took {fast}");
    }

    #[test]
    fn delivered_counts_accumulate() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut bp = Backpressure::new(
            &s.net,
            &imap,
            vec![(s.gateway, s.client)],
            BackpressureConfig::default(),
        );
        let out = bp.run(&s.net, &ProportionalFair, 500);
        assert!(out.delivered_mb[0] > 0.0);
        assert_eq!(out.trajectory.len(), 500);
    }

    #[test]
    fn no_traffic_without_flows() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut bp = Backpressure::new(&s.net, &imap, vec![], BackpressureConfig::default());
        let out = bp.run(&s.net, &ProportionalFair, 100);
        assert!(out.flow_throughputs.is_empty());
    }

    #[test]
    fn queues_stay_bounded() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut bp = Backpressure::new(
            &s.net,
            &imap,
            vec![(s.gateway, s.client)],
            BackpressureConfig::default(),
        );
        bp.run(&s.net, &ProportionalFair, 3000);
        // Drift-plus-penalty keeps backlogs O(V): loose sanity bound.
        for node_q in &bp.queues {
            for &q in node_q {
                assert!(q < 10_000.0, "queue exploded: {q}");
            }
        }
    }
}
