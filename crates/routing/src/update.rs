//! The `update(P, G)` procedure of §3.2.
//!
//! `update(P, G)` produces a view of the multigraph where capacities reflect
//! the resource consumption of sending traffic on `P` at its maximum
//! self-interference-aware rate `R(P)`: every link in `⋃_{l'∈P} I_{l'}` is
//! scaled by its residual idle fraction `r(l, P)`, and at least one link of
//! `P` (the bottleneck) drops to exactly zero — which is what guarantees the
//! exploration tree terminates.

use std::collections::BTreeSet;

use empower_model::{InterferenceMap, LinkId, Network, Path};

/// `R(P)` on the multigraph `net` (convenience re-export of
/// [`Path::capacity`] under its §3.2 name).
pub fn path_rate(net: &Network, imap: &InterferenceMap, path: &Path) -> f64 {
    path.capacity(net, imap)
}

/// Applies `update(P, G)` in place and returns `R(P)`, the rate assumed sent
/// on the path.
///
/// The interference map is *not* rebuilt: interference is geometric and does
/// not depend on capacities, and zero-capacity links simply become unusable
/// (infinite cost) for subsequent shortest-path computations.
pub fn update_multigraph(net: &mut Network, imap: &InterferenceMap, path: &Path) -> f64 {
    let rate = path.capacity(net, imap);
    if rate <= 0.0 {
        return 0.0;
    }
    // Collect the union of interference domains of the path's links first;
    // the scaling factors r(l, P) must all be computed on the *pre-update*
    // capacities.
    let affected: BTreeSet<LinkId> =
        path.links().iter().flat_map(|&l| imap.domain(l).iter().copied()).collect();
    let scaled: Vec<(LinkId, f64)> = affected
        .into_iter()
        .map(|l| {
            let r = path.residual_idle_fraction(net, imap, l, rate);
            (l, (net.link(l).capacity_mbps * r).max(0.0))
        })
        .collect();
    for (l, cap) in scaled {
        net.set_capacity(l, cap);
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn update_zeroes_the_bottleneck() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let route1 = Path::new(&g, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let rate = update_multigraph(&mut g, &imap, &route1);
        assert!((rate - 10.0).abs() < 1e-9);
        // Bottleneck (PLC) is exhausted.
        assert_eq!(g.link(s.plc_ab).capacity_mbps, 0.0);
        // WiFi b→c keeps 2/3 of 30 = 20 Mbps.
        assert!((g.link(s.wifi_bc).capacity_mbps - 20.0).abs() < 1e-9);
        // WiFi a→b shares the medium: 15 · 2/3 = 10 Mbps.
        assert!((g.link(s.wifi_ab).capacity_mbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_second_route_rate_matches_back_of_envelope() {
        // After Route 1, the remaining WiFi-WiFi route supports
        // 1/(1/10 + 1/20) = 6.67 Mbps — the paper's x ≈ 6.6.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let route1 = Path::new(&g, vec![s.plc_ab, s.wifi_bc]).unwrap();
        update_multigraph(&mut g, &imap, &route1);
        let route2 = Path::new(&g, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let x = path_rate(&g, &imap, &route2);
        assert!((x - 20.0 / 3.0).abs() < 1e-9, "x = {x}");
    }

    #[test]
    fn update_on_dead_path_is_a_noop() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        g.set_capacity(s.plc_ab, 0.0);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let before: Vec<f64> = g.links().iter().map(|l| l.capacity_mbps).collect();
        let rate = update_multigraph(&mut g, &imap, &route1);
        assert_eq!(rate, 0.0);
        let after: Vec<f64> = g.links().iter().map(|l| l.capacity_mbps).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn update_affects_reverse_directions_too() {
        // The reverse direction of a used link shares its medium and must be
        // discounted as well.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let route2 = Path::new(&g, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        update_multigraph(&mut g, &imap, &route2); // rate 10, full WiFi airtime
        let rev = g.link(s.wifi_ab).reverse.unwrap();
        assert_eq!(g.link(rev).capacity_mbps, 0.0);
    }

    #[test]
    fn fig3_update_sequence_reaches_15_total() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let r1 = Path::new(&g, s.route1.to_vec()).unwrap();
        let r3 = Path::new(&g, s.route3.to_vec()).unwrap();
        let rate1 = update_multigraph(&mut g, &imap, &r1);
        let rate3 = update_multigraph(&mut g, &imap, &r3);
        assert!((rate1 - 10.0).abs() < 1e-9);
        assert!((rate3 - 5.0).abs() < 1e-9);
        assert!((rate1 + rate3 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_best_single_route_exhausts_everything() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let r2 = Path::new(&g, s.route2.to_vec()).unwrap();
        let rate2 = update_multigraph(&mut g, &imap, &r2);
        assert!((rate2 - 11.0).abs() < 1e-9);
        for l in g.links() {
            assert!(!l.is_alive(), "{} survived", l.id);
        }
    }
}
