//! The `update(P, G)` procedure of §3.2.
//!
//! `update(P, G)` produces a view of the multigraph where capacities reflect
//! the resource consumption of sending traffic on `P` at its maximum
//! self-interference-aware rate `R(P)`: every link in `⋃_{l'∈P} I_{l'}` is
//! scaled by its residual idle fraction `r(l, P)`, and at least one link of
//! `P` (the bottleneck) drops to exactly zero — which is what guarantees the
//! exploration tree terminates.

use empower_model::{InterferenceMap, LinkId, Network, Path};

/// `R(P)` on the multigraph `net` (convenience re-export of
/// [`Path::capacity`] under its §3.2 name).
pub fn path_rate(net: &Network, imap: &InterferenceMap, path: &Path) -> f64 {
    path.capacity(net, imap)
}

/// A stack of capacity deltas recorded by [`update_multigraph_logged`], so
/// the §3.2 exploration tree can *revert* an `update(P, G)` instead of
/// cloning the multigraph per candidate. Entries are `(link, capacity before
/// the update)`; [`UndoLog::revert`] pops back to a mark in reverse order,
/// restoring the exact pre-update capacities (they were stored verbatim, so
/// restoration is bit-exact).
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    entries: Vec<(LinkId, f64)>,
}

impl UndoLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded deltas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A position to later [`UndoLog::revert`] to.
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// The deltas recorded since `mark`, oldest first.
    pub fn entries_since(&self, mark: usize) -> &[(LinkId, f64)] {
        &self.entries[mark..]
    }

    /// Drops all entries (start of a fresh search).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Restores every capacity recorded since `mark`, newest first, calling
    /// `on_restore(net, link)` after each restoration (e.g. to refresh a
    /// cached link metric).
    pub fn revert_with(
        &mut self,
        net: &mut Network,
        mark: usize,
        mut on_restore: impl FnMut(&Network, LinkId),
    ) {
        while self.entries.len() > mark {
            let Some((l, cap)) = self.entries.pop() else {
                break;
            };
            net.set_capacity(l, cap);
            on_restore(net, l);
        }
    }

    /// [`UndoLog::revert_with`] without a callback.
    pub fn revert(&mut self, net: &mut Network, mark: usize) {
        self.revert_with(net, mark, |_, _| {});
    }
}

/// Reusable buffers for [`update_multigraph_logged`]: the packed
/// affected-domain union and the staged `(link, new capacity)` writes.
#[derive(Debug, Clone, Default)]
pub struct UpdateScratch {
    affected: Vec<u64>,
    scaled: Vec<(LinkId, f64)>,
}

/// Applies `update(P, G)` in place and returns `R(P)`, the rate assumed sent
/// on the path.
///
/// The interference map is *not* rebuilt: interference is geometric and does
/// not depend on capacities, and zero-capacity links simply become unusable
/// (infinite cost) for subsequent shortest-path computations.
pub fn update_multigraph(net: &mut Network, imap: &InterferenceMap, path: &Path) -> f64 {
    let mut undo = UndoLog::new();
    let mut scratch = UpdateScratch::default();
    update_multigraph_logged(net, imap, path, &mut undo, &mut scratch)
}

/// [`update_multigraph`] recording every capacity mutation on `undo` (one
/// `(link, old capacity)` entry per affected link) so the caller can revert
/// the update instead of cloning the multigraph. `scratch` carries reusable
/// buffers; results are bit-identical to [`update_multigraph`] — the
/// affected set is visited in ascending link order (matching the sorted-set
/// union of the scanning form) and all scaling factors are computed on the
/// pre-update capacities before any write.
pub fn update_multigraph_logged(
    net: &mut Network,
    imap: &InterferenceMap,
    path: &Path,
    undo: &mut UndoLog,
    scratch: &mut UpdateScratch,
) -> f64 {
    let inc = path.incidence(imap);
    let rate = path.capacity_with(net, &inc);
    if rate <= 0.0 {
        return 0.0;
    }
    // Union of the interference domains of the path's links, as a packed
    // bitset; the scaling factors r(l, P) must all be computed on the
    // *pre-update* capacities, hence the stage-then-write split.
    imap.union_domains_into(path.links(), &mut scratch.affected);
    scratch.scaled.clear();
    for l in InterferenceMap::iter_links(&scratch.affected) {
        let mask = imap.incidence_mask(l, path.links());
        let r = path.residual_idle_fraction_masked(net, mask, rate);
        scratch.scaled.push((l, (net.link(l).capacity_mbps * r).max(0.0)));
    }
    for &(l, cap) in &scratch.scaled {
        undo.entries.push((l, net.link(l).capacity_mbps));
        net.set_capacity(l, cap);
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn update_zeroes_the_bottleneck() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let route1 = Path::new(&g, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let rate = update_multigraph(&mut g, &imap, &route1);
        assert!((rate - 10.0).abs() < 1e-9);
        // Bottleneck (PLC) is exhausted.
        assert_eq!(g.link(s.plc_ab).capacity_mbps, 0.0);
        // WiFi b→c keeps 2/3 of 30 = 20 Mbps.
        assert!((g.link(s.wifi_bc).capacity_mbps - 20.0).abs() < 1e-9);
        // WiFi a→b shares the medium: 15 · 2/3 = 10 Mbps.
        assert!((g.link(s.wifi_ab).capacity_mbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_second_route_rate_matches_back_of_envelope() {
        // After Route 1, the remaining WiFi-WiFi route supports
        // 1/(1/10 + 1/20) = 6.67 Mbps — the paper's x ≈ 6.6.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let route1 = Path::new(&g, vec![s.plc_ab, s.wifi_bc]).unwrap();
        update_multigraph(&mut g, &imap, &route1);
        let route2 = Path::new(&g, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let x = path_rate(&g, &imap, &route2);
        assert!((x - 20.0 / 3.0).abs() < 1e-9, "x = {x}");
    }

    #[test]
    fn update_on_dead_path_is_a_noop() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        g.set_capacity(s.plc_ab, 0.0);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let before: Vec<f64> = g.links().iter().map(|l| l.capacity_mbps).collect();
        let rate = update_multigraph(&mut g, &imap, &route1);
        assert_eq!(rate, 0.0);
        let after: Vec<f64> = g.links().iter().map(|l| l.capacity_mbps).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn update_affects_reverse_directions_too() {
        // The reverse direction of a used link shares its medium and must be
        // discounted as well.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let route2 = Path::new(&g, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        update_multigraph(&mut g, &imap, &route2); // rate 10, full WiFi airtime
        let rev = g.link(s.wifi_ab).reverse.unwrap();
        assert_eq!(g.link(rev).capacity_mbps, 0.0);
    }

    #[test]
    fn fig3_update_sequence_reaches_15_total() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let r1 = Path::new(&g, s.route1.to_vec()).unwrap();
        let r3 = Path::new(&g, s.route3.to_vec()).unwrap();
        let rate1 = update_multigraph(&mut g, &imap, &r1);
        let rate3 = update_multigraph(&mut g, &imap, &r3);
        assert!((rate1 - 10.0).abs() < 1e-9);
        assert!((rate3 - 5.0).abs() < 1e-9);
        assert!((rate1 + rate3 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn logged_update_reverts_bit_exactly() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let before: Vec<u64> = g.links().iter().map(|l| l.capacity_mbps.to_bits()).collect();
        let mut undo = UndoLog::new();
        let mut scratch = UpdateScratch::default();
        let r1 = Path::new(&g, s.route1.to_vec()).unwrap();
        let r3 = Path::new(&g, s.route3.to_vec()).unwrap();
        // Two stacked updates, reverted in LIFO order.
        let m0 = undo.mark();
        let rate1 = update_multigraph_logged(&mut g, &imap, &r1, &mut undo, &mut scratch);
        let m1 = undo.mark();
        let rate3 = update_multigraph_logged(&mut g, &imap, &r3, &mut undo, &mut scratch);
        assert!((rate1 + rate3 - 15.0).abs() < 1e-9);
        assert!(!undo.is_empty());
        let mut restored = Vec::new();
        undo.revert_with(&mut g, m1, |_, l| restored.push(l));
        assert!(!restored.is_empty());
        // After popping the second update, a fresh update of r3 recomputes
        // the same rate.
        let again = update_multigraph_logged(&mut g, &imap, &r3, &mut undo, &mut scratch);
        assert_eq!(again.to_bits(), rate3.to_bits());
        undo.revert(&mut g, m0);
        assert_eq!(undo.len(), 0);
        let after: Vec<u64> = g.links().iter().map(|l| l.capacity_mbps.to_bits()).collect();
        assert_eq!(before, after, "revert must restore capacities bit-exactly");
    }

    #[test]
    fn logged_update_matches_plain_update_bitwise() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let mut a = s.net.clone();
        let mut b = s.net.clone();
        let rate_a = update_multigraph(&mut a, &imap, &route);
        let mut undo = UndoLog::new();
        let mut scratch = UpdateScratch::default();
        let rate_b = update_multigraph_logged(&mut b, &imap, &route, &mut undo, &mut scratch);
        assert_eq!(rate_a.to_bits(), rate_b.to_bits());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la.capacity_mbps.to_bits(), lb.capacity_mbps.to_bits());
        }
    }

    #[test]
    fn fig3_best_single_route_exhausts_everything() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut g = s.net.clone();
        let r2 = Path::new(&g, s.route2.to_vec()).unwrap();
        let rate2 = update_multigraph(&mut g, &imap, &r2);
        assert!((rate2 - 11.0).abs() < 1e-9);
        for l in g.links() {
            assert!(!l.is_alive(), "{} survived", l.id);
        }
    }
}
