#![forbid(unsafe_code)]
//! # empower-routing
//!
//! The multipath-routing algorithm of EMPoWER (§3 of the paper).
//!
//! The algorithm has two layers:
//!
//! 1. A **single-path procedure** (§3.1): Dijkstra on the *virtual graph of
//!    network interfaces* with link metric `W(l) = d_l = 1/c_l` (ETT up to a
//!    constant) and a channel-switching cost (CSC) that favours paths whose
//!    consecutive links use different technologies — mitigating intra-path
//!    interference. At every node `u` the paper picks
//!    `w_ns(u) = min_{l∈L(u)} d_l` (cost for *not* switching) and
//!    `w_s(u) = 0` (cost for switching), which keeps the metric isotone so
//!    Dijkstra stays exact.
//! 2. A **multipath procedure** (§3.2): an exploration tree whose root is
//!    the initial multigraph. Each tree edge is one of the `n` shortest
//!    paths of the current multigraph; each child is the multigraph with
//!    capacities discounted by `update(P, G)` — the view of the network if
//!    `P` were fully loaded at its self-interference-aware capacity `R(P)`.
//!    The returned combination is the root-to-leaf path set with the largest
//!    total capacity `Σ R(P)`.
//!
//! The number of returned routes is data-dependent: extra routes appear only
//! when they add capacity. Limiting the tree to one level does *not* reduce
//! to the single-path procedure — the multipath criterion can pick a
//! different (better) single route.

pub mod baselines;
pub mod dijkstra;
pub mod ksp;
pub mod metrics;
pub mod multipath;
pub mod query;
pub mod update;

pub use baselines::{mp_2bp, single_path_route};
pub use dijkstra::{
    path_weight, shortest_path, CscMode, DijkstraOutcome, DijkstraScratch, MAX_ROUTE_HOPS,
};
pub use ksp::{k_shortest_paths, k_shortest_paths_into, KspWorkspace};
pub use metrics::{LinkMetric, MetricKind};
pub use multipath::{
    best_combination, best_combination_reference, best_combination_reference_counted, Explorer,
    MultipathConfig, RouteAllocation, RouteSet, SearchStats,
};
pub use query::RouteQuery;
pub use update::{path_rate, update_multigraph, update_multigraph_logged, UndoLog, UpdateScratch};
