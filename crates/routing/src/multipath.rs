//! The multipath procedure (§3.2): exploration tree over `update(P, G)`.
//!
//! The tree's root is the initial multigraph `G₀`. From every vertex `G`,
//! the `j ≤ n` non-empty paths returned by `n-shortest(G)` become edges,
//! each leading to `update(Pᵢ, G)`. A root-to-leaf edge set `B(G_L)` is a
//! combination of paths usable simultaneously, with total capacity
//! `Σ_{P∈B(G_L)} R(P)` (each `R(P)` evaluated in the multigraph it was
//! selected in). The procedure returns the best leaf's combination.
//!
//! Termination: `update` zeroes at least the bottleneck link of the chosen
//! path, so each tree level strictly reduces the set of alive links. With
//! shared mediums many links die at once, which is why the paper observes a
//! tree depth of 1–3 in practice; a configurable `max_depth` guards against
//! pathological inputs.
//!
//! ## Incremental exploration engine
//!
//! The [`Explorer`] walks the tree without cloning the multigraph per
//! candidate: `update(P, G)` records its capacity writes on an [`UndoLog`]
//! and is reverted when the DFS backtracks, the ETT metric is refreshed
//! per-changed-link instead of rebuilt per node, and Yen/Dijkstra run on a
//! reusable [`KspWorkspace`]. An admissible branch-and-bound bound prunes
//! subtrees that cannot beat the incumbent (see
//! [`remaining_total_bound`]); the result is bit-identical to the retained
//! exhaustive reference ([`best_combination_reference`]) because pruned
//! subtrees contain no strict improvement and every incumbent's chain is
//! recorded in per-depth slots as the recursion returns through its
//! ancestors (one path clone per improvement, never one per tree edge).

use std::mem;

use empower_model::{InterferenceMap, Link, LinkId, Network, Path};

use crate::dijkstra::{CscMode, DijkstraOutcome};
use crate::ksp::{k_shortest_paths, k_shortest_paths_into, KspWorkspace};
use crate::metrics::LinkMetric;
use crate::query::RouteQuery;
use crate::update::{update_multigraph, update_multigraph_logged, UndoLog, UpdateScratch};

/// Parameters of the multipath route computation.
#[derive(Debug, Clone)]
pub struct MultipathConfig {
    /// `n` of `n-shortest(G)`; the paper uses 5.
    pub n_shortest: usize,
    /// Hard cap on tree depth (i.e. on the number of combined routes).
    pub max_depth: usize,
    /// Channel-switching-cost policy for the underlying single-path steps.
    pub csc: CscMode,
    /// Ignore additional routes whose marginal rate is below this threshold
    /// (Mbps); keeps numerically-dead branches out of the combination.
    pub min_route_rate: f64,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig { n_shortest: 5, max_depth: 16, csc: CscMode::Paper, min_route_rate: 1e-6 }
    }
}

/// One selected route with its nominal rate `R(P)` (the rate `update`
/// assumed; the congestion controller refines actual rates online).
#[derive(Debug, Clone)]
pub struct RouteAllocation {
    pub path: Path,
    /// `R(P)` evaluated in the multigraph the path was selected in, Mbps.
    pub nominal_rate: f64,
}

/// The combination of routes returned by the multipath procedure.
#[derive(Debug, Clone, Default)]
pub struct RouteSet {
    pub routes: Vec<RouteAllocation>,
}

impl RouteSet {
    /// Total nominal capacity `C_B = Σ R(P)`.
    pub fn total_rate(&self) -> f64 {
        self.routes.iter().map(|r| r.nominal_rate).sum()
    }

    /// Number of routes (the paper's desirable data-dependent path count).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no route was found (disconnected pair).
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The paths, dropping rate annotations.
    pub fn paths(&self) -> Vec<Path> {
        self.routes.iter().map(|r| r.path.clone()).collect()
    }

    /// Longest route length in hops (drives the §6.1 step-size heuristic).
    pub fn max_hops(&self) -> usize {
        self.routes.iter().map(|r| r.path.hop_count()).max().unwrap_or(0)
    }
}

/// Deterministic work counters of an exploration-tree search. All counts
/// are cumulative across the [`Explorer`]'s lifetime (use
/// [`Explorer::reset_stats`] between measurements) and are byte-for-byte
/// reproducible for a given workload — they power the perf-regression gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes on which `n-shortest(G)` was actually run.
    pub nodes_expanded: u64,
    /// Total Yen invocations (equals `nodes_expanded` for the incremental
    /// engine; kept separate so implementations that re-run Yen outside
    /// node expansion stay comparable).
    pub ksp_invocations: u64,
    /// Subtrees skipped by the branch-and-bound test.
    pub subtrees_pruned: u64,
    /// Times the incumbent (best combination so far) improved.
    pub incumbent_updates: u64,
    /// Bytes of `Network` clones the undo-log overlay avoided (one clone
    /// per explored candidate under the cloning implementation).
    pub clone_bytes_avoided: u64,
}

/// Relative slack applied to the branch-and-bound bound before pruning, so
/// float rounding in `R(P)` (a double reciprocal round-trip can exceed the
/// exact capacity by a few ulps) and in the `total + remaining · bound`
/// accumulation can never prune a subtree holding a strictly better
/// combination. The true relative error is ~2⁻⁵², orders of magnitude
/// below this slack.
const BOUND_SLACK: f64 = 1e-9;

/// Estimated size of one `Network` clone: the link and node arrays plus the
/// two per-link adjacency indices.
fn clone_cost_bytes(net: &Network) -> u64 {
    (net.links().len() * (mem::size_of::<Link>() + 2 * mem::size_of::<LinkId>())
        + net.node_count() * mem::size_of::<empower_model::Node>()) as u64
}

/// An admissible upper bound on the total rate any descendant combination
/// can still add below a tree node with multigraph `net` and
/// `remaining_depth` levels to go. Two bounds, both admissible, combined by
/// `min`:
///
/// * **Per-route × depth** — every future route starts on a permitted alive
///   egress link of `src` and ends on a permitted alive ingress link of
///   `dst`, and `R(P) ≤ c_l` for every `l ∈ P` (the rate is the reciprocal
///   of a sum that includes `d_l`), so each future route adds at most
///   `min(max egress c_l, max ingress c_l)` — and there are at most
///   `remaining_depth` of them.
/// * **Capacity budget** — `update(P, G)` reduces the first (and last) hop
///   of `P` by at least `R(P)`: its residual factor is
///   `1 − R·Σd ≤ 1 − R·d_l`, so `c_l` drops by at least `c_l·R·d_l = R`.
///   Capacities never increase down the tree, hence the future routes'
///   rates sum to at most `Σ` permitted alive egress capacities of `src`
///   (and symmetrically for `dst` ingress).
///
/// Both arguments are monotone under `update`'s capacity decreases, so the
/// bound computed at a node holds for all its descendants.
fn remaining_total_bound(net: &Network, query: &RouteQuery, remaining_depth: usize) -> f64 {
    let mut max_out = 0.0f64;
    let mut sum_out = 0.0f64;
    for l in net.out_links(query.src) {
        if query.permits(net, l.id) {
            max_out = max_out.max(l.capacity_mbps);
            sum_out += l.capacity_mbps;
        }
    }
    let mut max_in = 0.0f64;
    let mut sum_in = 0.0f64;
    for l in net.in_links(query.dst) {
        if query.permits(net, l.id) {
            max_in = max_in.max(l.capacity_mbps);
            sum_in += l.capacity_mbps;
        }
    }
    (remaining_depth as f64 * max_out.min(max_in)).min(sum_out.min(sum_in))
}

/// Reusable incremental exploration engine for the §3.2 tree.
///
/// One `Explorer` amortizes every allocation a search needs (Dijkstra/Yen
/// scratch, per-depth candidate buffers, the undo log) across queries; the
/// answer of [`Explorer::best_combination`] is bit-identical to
/// [`best_combination_reference`] on any input.
#[derive(Debug, Default)]
pub struct Explorer {
    ksp: KspWorkspace,
    undo: UndoLog,
    scratch: UpdateScratch,
    /// Per-depth candidate buffers (recycled between sibling subtrees).
    levels: Vec<Vec<DijkstraOutcome>>,
    /// Incumbent chain slots: `best_chain[d]` is the route chosen at tree
    /// level `d` on the incumbent's DFS path. A frame writes its slot only
    /// when its subtree improved the incumbent (signalled by `explore`'s
    /// return value), so the chain is cloned once per improvement instead of
    /// once per tree edge, and no search step is ever replayed.
    best_chain: Vec<Option<RouteAllocation>>,
    /// Chain length of the incumbent (depth of the improving node).
    best_len: usize,
    stats: SearchStats,
}

impl Explorer {
    /// A fresh engine; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative work counters since construction or the last
    /// [`Explorer::reset_stats`].
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Zeroes the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SearchStats::default();
    }

    /// Runs the exploration tree for `query` and returns the best
    /// combination — bit-identical to [`best_combination_reference`].
    pub fn best_combination(
        &mut self,
        net: &Network,
        imap: &InterferenceMap,
        query: &RouteQuery,
        config: &MultipathConfig,
    ) -> RouteSet {
        self.undo.clear();
        self.best_len = 0;
        // The single clone of the whole search; every candidate edge is an
        // apply/revert on this one working copy.
        let mut g = net.clone();
        let mut metric = LinkMetric::ett(&g);
        let mut best_total = 0.0;
        self.explore(&mut g, &mut metric, imap, query, config, 0, 0.0, &mut best_total);
        debug_assert!(self.undo.is_empty(), "search must fully revert its updates");
        // Assemble the incumbent from the chain slots its ancestors wrote.
        // Slots past `best_len` are stale leftovers of abandoned incumbents;
        // slots below it are always filled (every improvement's ancestors
        // write theirs as the recursion returns through them).
        let routes: Vec<RouteAllocation> =
            self.best_chain[..self.best_len].iter_mut().filter_map(|slot| slot.take()).collect();
        debug_assert_eq!(routes.len(), self.best_len, "incumbent slot unfilled");
        RouteSet { routes }
    }

    /// Expands one tree node. Returns whether this subtree improved the
    /// incumbent — the parent uses that signal to write its chain slot, so
    /// by the time the search finishes, `best_chain[..best_len]` holds
    /// exactly the final incumbent's DFS path (a later improvement's
    /// ancestors always overwrite any stale slot on their way back up).
    #[allow(clippy::too_many_arguments)]
    fn explore(
        &mut self,
        g: &mut Network,
        metric: &mut LinkMetric,
        imap: &InterferenceMap,
        query: &RouteQuery,
        config: &MultipathConfig,
        depth: usize,
        total: f64,
        best_total: &mut f64,
    ) -> bool {
        // `total` is the left-fold sum of the chain's rates — the same
        // float the reference computes by summing its chain.
        let mut improved = false;
        if total > *best_total {
            *best_total = total;
            self.best_len = depth;
            self.stats.incumbent_updates += 1;
            improved = true;
        }
        if depth >= config.max_depth {
            return improved;
        }
        // Branch-and-bound: no descendant of this node can exceed
        // `total + remaining_total_bound`. Pruning on equality is safe —
        // the incumbent only updates on a strict improvement, so a subtree
        // that can at best tie contributes nothing.
        let bound = remaining_total_bound(g, query, config.max_depth - depth);
        if total + bound * (1.0 + BOUND_SLACK) <= *best_total {
            self.stats.subtrees_pruned += 1;
            return improved;
        }
        self.stats.nodes_expanded += 1;
        self.stats.ksp_invocations += 1;
        if self.levels.len() <= depth {
            self.levels.resize_with(depth + 1, Vec::new);
        }
        let mut candidates = mem::take(&mut self.levels[depth]);
        k_shortest_paths_into(
            g,
            metric,
            config.csc,
            query,
            config.n_shortest,
            &mut self.ksp,
            &mut candidates,
        );
        let clone_cost = clone_cost_bytes(g);
        for cand in &candidates {
            self.stats.clone_bytes_avoided += clone_cost;
            let mark = self.undo.mark();
            let rate =
                update_multigraph_logged(g, imap, &cand.path, &mut self.undo, &mut self.scratch);
            if rate <= config.min_route_rate {
                // Empty path: no spare capacity on this branch. The metric
                // was not refreshed after the update, so a plain capacity
                // revert restores full consistency.
                self.undo.revert(g, mark);
                continue;
            }
            for &(l, _) in self.undo.entries_since(mark) {
                metric.refresh_link(g, l);
            }
            if self.explore(g, metric, imap, query, config, depth + 1, total + rate, best_total) {
                improved = true;
                if self.best_chain.len() <= depth {
                    self.best_chain.resize_with(depth + 1, || None);
                }
                self.best_chain[depth] =
                    Some(RouteAllocation { path: cand.path.clone(), nominal_rate: rate });
            }
            self.undo.revert_with(g, mark, |net, l| metric.refresh_link(net, l));
        }
        self.levels[depth] = candidates;
        improved
    }
}

/// Runs the §3.2 exploration tree and returns the best combination of paths
/// for `query`.
pub fn best_combination(
    net: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    config: &MultipathConfig,
) -> RouteSet {
    Explorer::new().best_combination(net, imap, query, config)
}

/// The exhaustive cloning implementation of the §3.2 search, retained
/// verbatim as the equivalence oracle and perf baseline for the
/// incremental [`Explorer`]: every candidate edge clones the multigraph,
/// every tree node rebuilds the metric and runs Yen from scratch, and no
/// subtree is pruned.
pub fn best_combination_reference(
    net: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    config: &MultipathConfig,
) -> RouteSet {
    best_combination_reference_counted(net, imap, query, config).0
}

/// [`best_combination_reference`] also reporting the work it did, for
/// baseline-vs-optimized comparisons. Only `nodes_expanded`,
/// `ksp_invocations` and `incumbent_updates` are meaningful for the
/// reference (it prunes nothing and avoids no clones).
pub fn best_combination_reference_counted(
    net: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    config: &MultipathConfig,
) -> (RouteSet, SearchStats) {
    let mut best = RouteSet::default();
    let mut best_total = 0.0;
    let mut chain: Vec<RouteAllocation> = Vec::new();
    let mut stats = SearchStats::default();
    explore_reference(
        net,
        imap,
        query,
        config,
        0,
        &mut chain,
        &mut best,
        &mut best_total,
        &mut stats,
    );
    (best, stats)
}

#[allow(clippy::too_many_arguments)]
fn explore_reference(
    g: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    config: &MultipathConfig,
    depth: usize,
    chain: &mut Vec<RouteAllocation>,
    best: &mut RouteSet,
    best_total: &mut f64,
    stats: &mut SearchStats,
) {
    let total: f64 = chain.iter().map(|r| r.nominal_rate).sum();
    if total > *best_total {
        *best_total = total;
        *best = RouteSet { routes: chain.clone() };
        stats.incumbent_updates += 1;
    }
    if depth >= config.max_depth {
        return;
    }
    // n-shortest on the current (already-discounted) multigraph. The metric
    // must reflect the current capacities.
    stats.nodes_expanded += 1;
    stats.ksp_invocations += 1;
    let metric = LinkMetric::ett(g);
    let candidates = k_shortest_paths(g, &metric, config.csc, query, config.n_shortest);
    for outcome in candidates {
        let mut child = g.clone();
        let rate = update_multigraph(&mut child, imap, &outcome.path);
        if rate <= config.min_route_rate {
            continue; // empty path: no spare capacity on this branch
        }
        chain.push(RouteAllocation { path: outcome.path, nominal_rate: rate });
        explore_reference(&child, imap, query, config, depth + 1, chain, best, best_total, stats);
        chain.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn fig1_combination_matches_the_papers_example() {
        // Optimal load balancing: 10 Mbps on the hybrid route, 6.6 on the
        // WiFi-WiFi route — a 66 % improvement over single path.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert_eq!(set.len(), 2);
        assert!((set.total_rate() - (10.0 + 20.0 / 3.0)).abs() < 1e-6, "{}", set.total_rate());
        // First selected route is the hybrid one at 10 Mbps.
        assert!((set.routes[0].nominal_rate - 10.0).abs() < 1e-9);
        assert_eq!(set.routes[0].path.links()[0], s.plc_ab);
    }

    #[test]
    fn fig3_best_combination_avoids_the_best_single_route() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert!((set.total_rate() - 15.0).abs() < 1e-6, "{}", set.total_rate());
        assert_eq!(set.len(), 2);
        // Route 2 (the best isolated route) is not part of the combination.
        for route in &set.routes {
            assert_ne!(route.path.links(), &s.route2[..]);
        }
    }

    #[test]
    fn route_count_is_data_dependent() {
        // Remove the WiFi a-b link: only the hybrid route remains.
        let mut s = fig1_scenario();
        s.net.set_capacity(s.wifi_ab, 0.0);
        let rev = s.net.link(s.wifi_ab).reverse.unwrap();
        s.net.set_capacity(rev, 0.0);
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert_eq!(set.len(), 1);
        assert!((set.total_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_pair_yields_empty_set() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[empower_model::Medium::Plc]);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert!(set.is_empty());
        assert_eq!(set.total_rate(), 0.0);
    }

    #[test]
    fn depth_limit_bounds_route_count() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let config = MultipathConfig { max_depth: 1, ..Default::default() };
        let set = best_combination(&s.net, &imap, &q, &config);
        assert_eq!(set.len(), 1);
        // Depth 1 picks the single route with the best R(P), which here is
        // either route at 10 Mbps.
        assert!((set.total_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multipath_never_loses_to_single_path() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let single = best_combination(
            &s.net,
            &imap,
            &q,
            &MultipathConfig { max_depth: 1, ..Default::default() },
        );
        let multi = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert!(multi.total_rate() >= single.total_rate() - 1e-12);
    }

    #[test]
    fn max_hops_reports_longest_route() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert_eq!(set.max_hops(), 2);
    }

    fn assert_bit_identical(a: &RouteSet, b: &RouteSet) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.routes.iter().zip(&b.routes) {
            assert_eq!(x.path.links(), y.path.links());
            assert_eq!(x.nominal_rate.to_bits(), y.nominal_rate.to_bits());
        }
    }

    #[test]
    fn explorer_matches_reference_on_worked_examples() {
        let mut explorer = Explorer::new();
        let config = MultipathConfig::default();
        let s1 = fig1_scenario();
        let imap1 = SharedMedium.build_map(&s1.net);
        let q1 = RouteQuery::new(s1.gateway, s1.client);
        let s3 = fig3_scenario();
        let imap3 = SharedMedium.build_map(&s3.net);
        let q3 = RouteQuery::new(s3.source, s3.dest);
        // Explorer reused across queries, interleaved with reference runs.
        for _ in 0..2 {
            let opt = explorer.best_combination(&s1.net, &imap1, &q1, &config);
            assert_bit_identical(&opt, &best_combination_reference(&s1.net, &imap1, &q1, &config));
            let opt = explorer.best_combination(&s3.net, &imap3, &q3, &config);
            assert_bit_identical(&opt, &best_combination_reference(&s3.net, &imap3, &q3, &config));
        }
    }

    #[test]
    fn explorer_prunes_and_never_expands_more_than_reference() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let config = MultipathConfig::default();
        let mut explorer = Explorer::new();
        explorer.best_combination(&s.net, &imap, &q, &config);
        let opt = explorer.stats();
        let (_, base) = best_combination_reference_counted(&s.net, &imap, &q, &config);
        assert!(opt.subtrees_pruned > 0, "bound never fired: {opt:?}");
        assert!(
            opt.nodes_expanded < base.nodes_expanded,
            "optimized {} vs reference {}",
            opt.nodes_expanded,
            base.nodes_expanded
        );
        assert!(opt.clone_bytes_avoided > 0);
    }
}
