//! The multipath procedure (§3.2): exploration tree over `update(P, G)`.
//!
//! The tree's root is the initial multigraph `G₀`. From every vertex `G`,
//! the `j ≤ n` non-empty paths returned by `n-shortest(G)` become edges,
//! each leading to `update(Pᵢ, G)`. A root-to-leaf edge set `B(G_L)` is a
//! combination of paths usable simultaneously, with total capacity
//! `Σ_{P∈B(G_L)} R(P)` (each `R(P)` evaluated in the multigraph it was
//! selected in). The procedure returns the best leaf's combination.
//!
//! Termination: `update` zeroes at least the bottleneck link of the chosen
//! path, so each tree level strictly reduces the set of alive links. With
//! shared mediums many links die at once, which is why the paper observes a
//! tree depth of 1–3 in practice; a configurable `max_depth` guards against
//! pathological inputs.

use empower_model::{InterferenceMap, Network, Path};

use crate::dijkstra::CscMode;
use crate::ksp::k_shortest_paths;
use crate::metrics::LinkMetric;
use crate::query::RouteQuery;
use crate::update::update_multigraph;

/// Parameters of the multipath route computation.
#[derive(Debug, Clone)]
pub struct MultipathConfig {
    /// `n` of `n-shortest(G)`; the paper uses 5.
    pub n_shortest: usize,
    /// Hard cap on tree depth (i.e. on the number of combined routes).
    pub max_depth: usize,
    /// Channel-switching-cost policy for the underlying single-path steps.
    pub csc: CscMode,
    /// Ignore additional routes whose marginal rate is below this threshold
    /// (Mbps); keeps numerically-dead branches out of the combination.
    pub min_route_rate: f64,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig { n_shortest: 5, max_depth: 16, csc: CscMode::Paper, min_route_rate: 1e-6 }
    }
}

/// One selected route with its nominal rate `R(P)` (the rate `update`
/// assumed; the congestion controller refines actual rates online).
#[derive(Debug, Clone)]
pub struct RouteAllocation {
    pub path: Path,
    /// `R(P)` evaluated in the multigraph the path was selected in, Mbps.
    pub nominal_rate: f64,
}

/// The combination of routes returned by the multipath procedure.
#[derive(Debug, Clone, Default)]
pub struct RouteSet {
    pub routes: Vec<RouteAllocation>,
}

impl RouteSet {
    /// Total nominal capacity `C_B = Σ R(P)`.
    pub fn total_rate(&self) -> f64 {
        self.routes.iter().map(|r| r.nominal_rate).sum()
    }

    /// Number of routes (the paper's desirable data-dependent path count).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no route was found (disconnected pair).
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The paths, dropping rate annotations.
    pub fn paths(&self) -> Vec<Path> {
        self.routes.iter().map(|r| r.path.clone()).collect()
    }

    /// Longest route length in hops (drives the §6.1 step-size heuristic).
    pub fn max_hops(&self) -> usize {
        self.routes.iter().map(|r| r.path.hop_count()).max().unwrap_or(0)
    }
}

/// Runs the §3.2 exploration tree and returns the best combination of paths
/// for `query`.
pub fn best_combination(
    net: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    config: &MultipathConfig,
) -> RouteSet {
    let mut best = RouteSet::default();
    let mut best_total = 0.0;
    let mut chain: Vec<RouteAllocation> = Vec::new();
    explore(net, imap, query, config, 0, &mut chain, &mut best, &mut best_total);
    best
}

#[allow(clippy::too_many_arguments)]
fn explore(
    g: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    config: &MultipathConfig,
    depth: usize,
    chain: &mut Vec<RouteAllocation>,
    best: &mut RouteSet,
    best_total: &mut f64,
) {
    let total: f64 = chain.iter().map(|r| r.nominal_rate).sum();
    if total > *best_total {
        *best_total = total;
        *best = RouteSet { routes: chain.clone() };
    }
    if depth >= config.max_depth {
        return;
    }
    // n-shortest on the current (already-discounted) multigraph. The metric
    // must reflect the current capacities.
    let metric = LinkMetric::ett(g);
    let candidates = k_shortest_paths(g, &metric, config.csc, query, config.n_shortest);
    for outcome in candidates {
        let mut child = g.clone();
        let rate = update_multigraph(&mut child, imap, &outcome.path);
        if rate <= config.min_route_rate {
            continue; // empty path: no spare capacity on this branch
        }
        chain.push(RouteAllocation { path: outcome.path, nominal_rate: rate });
        explore(&child, imap, query, config, depth + 1, chain, best, best_total);
        chain.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn fig1_combination_matches_the_papers_example() {
        // Optimal load balancing: 10 Mbps on the hybrid route, 6.6 on the
        // WiFi-WiFi route — a 66 % improvement over single path.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert_eq!(set.len(), 2);
        assert!((set.total_rate() - (10.0 + 20.0 / 3.0)).abs() < 1e-6, "{}", set.total_rate());
        // First selected route is the hybrid one at 10 Mbps.
        assert!((set.routes[0].nominal_rate - 10.0).abs() < 1e-9);
        assert_eq!(set.routes[0].path.links()[0], s.plc_ab);
    }

    #[test]
    fn fig3_best_combination_avoids_the_best_single_route() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert!((set.total_rate() - 15.0).abs() < 1e-6, "{}", set.total_rate());
        assert_eq!(set.len(), 2);
        // Route 2 (the best isolated route) is not part of the combination.
        for route in &set.routes {
            assert_ne!(route.path.links(), &s.route2[..]);
        }
    }

    #[test]
    fn route_count_is_data_dependent() {
        // Remove the WiFi a-b link: only the hybrid route remains.
        let mut s = fig1_scenario();
        s.net.set_capacity(s.wifi_ab, 0.0);
        let rev = s.net.link(s.wifi_ab).reverse.unwrap();
        s.net.set_capacity(rev, 0.0);
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert_eq!(set.len(), 1);
        assert!((set.total_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_pair_yields_empty_set() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[empower_model::Medium::Plc]);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert!(set.is_empty());
        assert_eq!(set.total_rate(), 0.0);
    }

    #[test]
    fn depth_limit_bounds_route_count() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let config = MultipathConfig { max_depth: 1, ..Default::default() };
        let set = best_combination(&s.net, &imap, &q, &config);
        assert_eq!(set.len(), 1);
        // Depth 1 picks the single route with the best R(P), which here is
        // either route at 10 Mbps.
        assert!((set.total_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multipath_never_loses_to_single_path() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let single = best_combination(
            &s.net,
            &imap,
            &q,
            &MultipathConfig { max_depth: 1, ..Default::default() },
        );
        let multi = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert!(multi.total_rate() >= single.total_rate() - 1e-12);
    }

    #[test]
    fn max_hops_reports_longest_route() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let set = best_combination(&s.net, &imap, &q, &MultipathConfig::default());
        assert_eq!(set.max_hops(), 2);
    }
}
