//! The single-path procedure (§3.1): Dijkstra with channel-switching costs
//! on the virtual graph of network interfaces.
//!
//! A path's weight is the sum of its link weights `W(l)` plus, at every
//! intermediate node `u`, a channel-switching cost: `w_s(u)` if the path
//! changes interface at `u` and `w_ns(u)` if it stays on the same interface.
//! Requiring `w_s(u) < w_ns(u)` favours technology-alternating paths, which
//! mitigates intra-path interference. To keep the metric isotone (so that
//! Dijkstra is exact), the paper chooses the node-global values
//! `w_ns(u) = min_{l∈L(u)} d_l` and `w_s(u) = 0`.
//!
//! Running Dijkstra over states `(node, ingress medium)` is exactly Dijkstra
//! on the interface graph of Yang et al. \[44\].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use empower_model::{LinkId, Medium, Network, Path};

use crate::metrics::LinkMetric;
use crate::query::RouteQuery;

/// Maximum route length, hops. The layer-2.5 header's source-route field is
/// fixed at 12 bytes — 2 per ingress interface — so no route may exceed 6
/// hops (§6.1). The path search runs over (node, ingress medium, hops used)
/// states, which keeps it exact under the cap.
pub const MAX_ROUTE_HOPS: usize = 6;

/// Channel-switching-cost policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CscMode {
    /// The paper's choice: `w_ns(u) = min_{l∈L(u)} d_l`, `w_s(u) = 0`.
    Paper,
    /// No switching cost (used when only one medium is in play — "when
    /// using only WiFi, the CSC is set to 0", §5.1).
    Zero,
    /// Fixed custom costs (same for every node), for ablations.
    Custom { w_ns: f64, w_s: f64 },
}

impl CscMode {
    /// The cost of leaving node `u` on `egress` having arrived on `ingress`.
    fn cost(
        &self,
        net: &Network,
        query: &RouteQuery,
        u: empower_model::NodeId,
        ingress: Medium,
        egress: Medium,
    ) -> f64 {
        let switches = ingress != egress;
        match self {
            CscMode::Zero => 0.0,
            CscMode::Paper => {
                if switches {
                    0.0
                } else {
                    let w = query.min_permitted_egress_cost(net, u);
                    if w.is_finite() {
                        w
                    } else {
                        0.0
                    }
                }
            }
            CscMode::Custom { w_ns, w_s } => {
                if switches {
                    *w_s
                } else {
                    *w_ns
                }
            }
        }
    }
}

/// Result of a shortest-path computation.
#[derive(Debug, Clone)]
pub struct DijkstraOutcome {
    pub path: Path,
    /// Total weight including channel-switching costs.
    pub weight: f64,
}

/// Totally ordered f64 for the heap (weights are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Heap entry: min-heap via reversed comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    dist: OrdF64,
    state: usize,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.cmp(&self.dist).then_with(|| other.state.cmp(&self.state))
    }
}

/// Computes the shortest path for `query` under `metric` and `csc`.
///
/// Returns `None` when the destination is unreachable under the query's
/// restrictions.
pub fn shortest_path(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
) -> Option<DijkstraOutcome> {
    shortest_path_with_ingress(net, metric, csc, query, None)
}

/// Like [`shortest_path`] but starting as if the source had just been
/// reached over `ingress` — so the channel-switching cost at the source is
/// charged correctly. Used by Yen's algorithm for spur computations.
pub fn shortest_path_with_ingress(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    initial_ingress: Option<Medium>,
) -> Option<DijkstraOutcome> {
    shortest_path_with_budget(net, metric, csc, query, initial_ingress, MAX_ROUTE_HOPS)
}

/// Like [`shortest_path_with_ingress`] with an explicit hop budget — Yen's
/// spur searches must run under `MAX_ROUTE_HOPS − root length` for the
/// spliced paths to enumerate in true weight order.
pub fn shortest_path_with_budget(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    initial_ingress: Option<Medium>,
    max_hops: usize,
) -> Option<DijkstraOutcome> {
    let mut scratch = DijkstraScratch::new();
    shortest_path_with_scratch(net, metric, csc, query, initial_ingress, max_hops, &mut scratch)
}

/// Reusable Dijkstra working memory: the per-state distance and predecessor
/// tables plus the frontier heap. One instance amortizes the allocations
/// across the thousands of single-path searches a §3.2 exploration tree (or
/// a topology sweep) performs; results are identical to the allocating
/// entry points.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    pred: Vec<Option<(usize, LinkId)>>,
    heap: BinaryHeap<HeapEntry>,
    /// Per-node non-switching channel cost `w_ns(u)` for [`CscMode::Paper`],
    /// precomputed once per search. `w_ns` deliberately ignores Yen's
    /// temporary bans (see [`RouteQuery::min_permitted_egress_cost`]), so it
    /// is a function of the graph and the query's medium restriction only —
    /// caching it replaces an out-degree scan per same-medium edge
    /// relaxation with an indexed load, bit-identically.
    w_ns: Vec<f64>,
}

impl DijkstraScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for a state space of `states` entries.
    fn reset(&mut self, states: usize) {
        self.dist.clear();
        self.dist.resize(states, f64::INFINITY);
        self.pred.clear();
        self.pred.resize(states, None);
        self.heap.clear();
    }
}

/// [`shortest_path_with_budget`] running on caller-provided scratch
/// buffers (allocation-free after warm-up).
pub fn shortest_path_with_scratch(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    initial_ingress: Option<Medium>,
    max_hops: usize,
    scratch: &mut DijkstraScratch,
) -> Option<DijkstraOutcome> {
    if query.src == query.dst || max_hops == 0 {
        return None;
    }
    let mediums = net.mediums();
    let k = mediums.len();
    // empower-lint: allow(D005) — `net.mediums()` enumerates the medium
    // of every link, and the closure is only queried with link mediums.
    let medium_idx = |m: Medium| mediums.iter().position(|&x| x == m).expect("known medium");
    // State encoding: ((node * (k+1)) + (1 + ingress medium index)) *
    // (H+1) + hops, with ingress slot 0 for "no ingress yet" (the source).
    // Tracking the hop count keeps the search exact under the 6-hop header
    // cap (a cheaper 2-hop detour may enable a short completion where the
    // globally cheapest prefix would overrun the cap).
    let h = max_hops;
    let states = net.node_count() * (k + 1) * (h + 1);
    let state_of = |node: usize, ingress: Option<usize>, hops: usize| {
        (node * (k + 1) + ingress.map_or(0, |m| m + 1)) * (h + 1) + hops
    };
    scratch.reset(states);
    if csc == CscMode::Paper {
        // Same fold as `min_permitted_egress_cost`, computed once per node
        // instead of once per same-medium relaxation.
        scratch.w_ns.clear();
        scratch.w_ns.extend((0..net.node_count()).map(|n| {
            let w = query.min_permitted_egress_cost(net, empower_model::NodeId(n as u32));
            if w.is_finite() {
                w
            } else {
                0.0
            }
        }));
    }
    let DijkstraScratch { dist, pred, heap, w_ns } = scratch;

    let start = state_of(query.src.index(), initial_ingress.map(&medium_idx), 0);
    dist[start] = 0.0;
    heap.push(HeapEntry { dist: OrdF64(0.0), state: start });

    while let Some(HeapEntry { dist: OrdF64(d), state }) = heap.pop() {
        if d > dist[state] {
            continue; // stale entry
        }
        let hops = state % (h + 1);
        if hops == h {
            continue; // hop budget exhausted
        }
        let node_medium = state / (h + 1);
        let node = node_medium / (k + 1);
        let ingress = match node_medium % (k + 1) {
            0 => None,
            i => Some(mediums[i - 1]),
        };
        for link in net.out_links(empower_model::NodeId(node as u32)) {
            if !query.permits(net, link.id) {
                continue;
            }
            let w = metric.weight(link.id);
            if !w.is_finite() {
                continue;
            }
            let switch_cost = match ingress {
                // No CSC at the source.
                None => 0.0,
                // Paper mode reads the precomputed `w_ns` table (switching
                // is free, staying costs the node's best egress time).
                Some(m_in) if csc == CscMode::Paper && m_in == link.medium => w_ns[node],
                Some(m_in) => {
                    csc.cost(net, query, empower_model::NodeId(node as u32), m_in, link.medium)
                }
            };
            let next = state_of(link.to.index(), Some(medium_idx(link.medium)), hops + 1);
            let nd = d + w + switch_cost;
            if nd < dist[next] {
                dist[next] = nd;
                pred[next] = Some((state, link.id));
                heap.push(HeapEntry { dist: OrdF64(nd), state: next });
            }
        }
    }

    // Best terminal state at the destination, over all ingress mediums and
    // hop counts.
    let mut best: Option<(usize, f64)> = None;
    for m in 0..k {
        for hops in 1..=h {
            let s = state_of(query.dst.index(), Some(m), hops);
            if dist[s].is_finite() && best.is_none_or(|(_, bd)| dist[s] < bd) {
                best = Some((s, dist[s]));
            }
        }
    }
    let (mut state, weight) = best?;

    let mut links = Vec::new();
    while let Some((prev, link)) = pred[state] {
        links.push(link);
        state = prev;
    }
    links.reverse();
    // The per-interface state space cannot revisit a (node, medium) pair,
    // but it can revisit a *node* on different mediums; the paper's routes
    // are loop-free at node level, so reject such paths defensively.
    let path = Path::new(net, links).ok()?;
    Some(DijkstraOutcome { path, weight })
}

/// Total weight of a link sequence under `metric` and `csc`: `Σ W(l)` plus
/// the channel-switching cost at every interior node. The sequence need not
/// reach the query's destination (Yen's algorithm evaluates root prefixes).
pub fn path_weight(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    links: &[LinkId],
) -> f64 {
    let mut total = 0.0;
    for (i, &l) in links.iter().enumerate() {
        total += metric.weight(l);
        if i > 0 {
            let prev = net.link(links[i - 1]);
            let cur = net.link(l);
            total += csc.cost(net, query, prev.to, prev.medium, cur.medium);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::Medium;

    #[test]
    fn picks_the_hybrid_route_in_fig1() {
        // Gateway → client. Candidates: PLC+WiFi (weights 1/10 + 1/30, CSC 0
        // because of the switch) vs WiFi+WiFi (1/15 + 1/30 + w_ns(b)).
        // w_ns(extender) = min egress d = 1/30. Hybrid: 0.1333; WiFi-WiFi:
        // 0.1333... PLC first is favoured only through the CSC tie-break.
        // Weights: hybrid = 1/10 + 1/30 = 0.1333; wifi = 1/15 + 1/30 + 1/30
        // = 0.1333. Exact tie — accept either but require correctness.
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let out =
            shortest_path(&s.net, &metric, CscMode::Paper, &RouteQuery::new(s.gateway, s.client))
                .unwrap();
        assert_eq!(out.path.source(&s.net), s.gateway);
        assert_eq!(out.path.destination(&s.net), s.client);
        assert_eq!(out.path.hop_count(), 2);
        assert!(
            (out.weight - (0.1 + 1.0 / 30.0)).abs() < 1e-9
                || (out.weight - (1.0 / 15.0 + 1.0 / 30.0 + 1.0 / 30.0)).abs() < 1e-9
        );
    }

    #[test]
    fn csc_prefers_alternating_technologies() {
        // Raise the PLC capacity so the two routes tie on raw link weight;
        // the CSC must then break the tie toward the hybrid route.
        let mut s = fig1_scenario();
        s.net.set_capacity(s.plc_ab, 15.0);
        let rev = s.net.link(s.plc_ab).reverse.unwrap();
        s.net.set_capacity(rev, 15.0);
        let metric = LinkMetric::ett(&s.net);
        let out =
            shortest_path(&s.net, &metric, CscMode::Paper, &RouteQuery::new(s.gateway, s.client))
                .unwrap();
        let first_medium = s.net.link(out.path.links()[0]).medium;
        assert_eq!(first_medium, Medium::Plc, "CSC should favour PLC→WiFi");
    }

    #[test]
    fn zero_csc_ignores_switching() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[Medium::WIFI1]);
        let out = shortest_path(&s.net, &metric, CscMode::Zero, &q).unwrap();
        assert_eq!(out.path.hop_count(), 2);
        assert!((out.weight - (1.0 / 15.0 + 1.0 / 30.0)).abs() < 1e-12);
    }

    #[test]
    fn unreachable_returns_none() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        // Client only has WiFi; restrict to PLC.
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[Medium::Plc]);
        assert!(shortest_path(&s.net, &metric, CscMode::Paper, &q).is_none());
    }

    #[test]
    fn same_source_destination_returns_none() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        assert!(shortest_path(
            &s.net,
            &metric,
            CscMode::Paper,
            &RouteQuery::new(s.gateway, s.gateway)
        )
        .is_none());
    }

    #[test]
    fn banned_node_forces_detour_or_none() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let mut q = RouteQuery::new(s.gateway, s.client);
        q.banned_nodes.insert(s.extender);
        // Every gateway→client route passes the extender.
        assert!(shortest_path(&s.net, &metric, CscMode::Paper, &q).is_none());
    }

    #[test]
    fn fig3_shortest_path_is_route2() {
        // Route 2 (11/11 alternating) has weight 2/11 ≈ 0.1818 and zero CSC;
        // Route 1 has 1/20 + 1/10 = 0.15 (alternating, no CSC) — Route 1 is
        // actually shorter by raw weight. Direct Route 3: 1/10 = 0.1.
        // The single-path procedure should return the direct 10 Mbps link.
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let out =
            shortest_path(&s.net, &metric, CscMode::Paper, &RouteQuery::new(s.source, s.dest))
                .unwrap();
        assert_eq!(out.path.links(), &s.route3[..]);
    }

    #[test]
    fn custom_csc_can_penalize_switching() {
        // With a large w_s, the router avoids switching mediums.
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let csc = CscMode::Custom { w_ns: 0.0, w_s: 10.0 };
        let out =
            shortest_path(&s.net, &metric, csc, &RouteQuery::new(s.gateway, s.client)).unwrap();
        let mediums: Vec<Medium> = out.path.links().iter().map(|&l| s.net.link(l).medium).collect();
        assert_eq!(mediums, vec![Medium::WIFI1, Medium::WIFI1]);
    }
}
