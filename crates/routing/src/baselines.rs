//! Routing baselines used by the evaluation (§5.1):
//!
//! * **SP / SP-WiFi** — the single-path procedure of §3.1 alone;
//! * **MP-2bp** — "naive multipath routing returning two best paths
//!   (2-shortest)": the first two paths of Yen's algorithm, with nominal
//!   rates obtained by loading them in order.

use empower_model::{InterferenceMap, Network};

use crate::dijkstra::{shortest_path, CscMode};
use crate::ksp::k_shortest_paths;
use crate::metrics::LinkMetric;
use crate::multipath::{RouteAllocation, RouteSet};
use crate::query::RouteQuery;
use crate::update::update_multigraph;

/// The single-path procedure: one route per flow (SP/SP-WiFi schemes). The
/// nominal rate is the path's standalone capacity `R(P)`.
pub fn single_path_route(
    net: &Network,
    imap: &InterferenceMap,
    query: &RouteQuery,
    csc: CscMode,
) -> RouteSet {
    let metric = LinkMetric::ett(net);
    match shortest_path(net, &metric, csc, query) {
        Some(outcome) => {
            let rate = outcome.path.capacity(net, imap);
            RouteSet { routes: vec![RouteAllocation { path: outcome.path, nominal_rate: rate }] }
        }
        None => RouteSet::default(),
    }
}

/// MP-2bp: the two cheapest loopless paths, regardless of whether they make
/// a good *combination* (this is precisely what the exploration tree fixes).
/// The second path's nominal rate is evaluated after loading the first.
pub fn mp_2bp(net: &Network, imap: &InterferenceMap, query: &RouteQuery, csc: CscMode) -> RouteSet {
    let metric = LinkMetric::ett(net);
    let paths = k_shortest_paths(net, &metric, csc, query, 2);
    let mut g = net.clone();
    let mut routes = Vec::new();
    for outcome in paths {
        let rate = update_multigraph(&mut g, imap, &outcome.path);
        routes.push(RouteAllocation { path: outcome.path, nominal_rate: rate });
    }
    RouteSet { routes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig3_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn single_path_returns_one_route() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let set = single_path_route(&s.net, &imap, &q, CscMode::Paper);
        assert_eq!(set.len(), 1);
        // The shortest path by weight is the direct 10 Mbps Route 3.
        assert_eq!(set.routes[0].path.links(), &s.route3[..]);
        assert!((set.total_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mp_2bp_is_beaten_by_the_exploration_tree_on_fig3() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let naive = mp_2bp(&s.net, &imap, &q, CscMode::Paper);
        let smart = crate::multipath::best_combination(
            &s.net,
            &imap,
            &q,
            &crate::multipath::MultipathConfig::default(),
        );
        assert!(
            naive.total_rate() < smart.total_rate(),
            "{} vs {}",
            naive.total_rate(),
            smart.total_rate()
        );
    }

    #[test]
    fn mp_2bp_returns_at_most_two_routes() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let set = mp_2bp(&s.net, &imap, &q, CscMode::Paper);
        assert!(set.len() <= 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn disconnected_baselines_return_empty() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let q = RouteQuery::new(s.source, s.dest).with_mediums(&[empower_model::Medium::Plc]);
        assert!(single_path_route(&s.net, &imap, &q, CscMode::Paper).is_empty());
        assert!(mp_2bp(&s.net, &imap, &q, CscMode::Paper).is_empty());
    }
}
