//! Link metrics for the single-path procedure.
//!
//! EMPoWER uses `W(l) = d_l` — proportional to the expected transmission
//! time (ETT) of \[7\] — and handles intra-flow interference through the
//! channel-switching cost instead of baking it into the metric. The paper's
//! footnote 7 reports that alternative metrics (IRU of Yang et al., CATT of
//! Genetzakis & Siris, and plain hop count) all gave worse results; they are
//! provided here as baselines so that comparison is reproducible.

use empower_model::{InterferenceMap, LinkId, Network};

/// Selects a link metric by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// `W(l) = d_l` (EMPoWER's choice; ETT up to a constant factor).
    Ett,
    /// Interference-aware resource usage: `d_l · |I_l|` — charges a link for
    /// the number of links whose airtime its transmissions consume.
    Iru,
    /// Contention-aware transmission time: `Σ_{l'∈I_l} d_{l'}` — the total
    /// airtime a transmission occupies across its contention domain.
    Catt,
    /// Plain hop count (every alive link costs 1).
    HopCount,
}

/// A computed metric ready to evaluate links.
#[derive(Debug, Clone)]
pub struct LinkMetric {
    kind: MetricKind,
    /// Cached per-link weights for the interference-aware metrics.
    weights: Vec<f64>,
}

impl LinkMetric {
    /// Builds the metric. `imap` is only consulted for [`MetricKind::Iru`]
    /// and [`MetricKind::Catt`].
    pub fn new(kind: MetricKind, net: &Network, imap: &InterferenceMap) -> Self {
        let weights = net
            .links()
            .iter()
            .map(|l| match kind {
                MetricKind::Ett => l.cost(),
                MetricKind::HopCount => {
                    if l.is_alive() {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                }
                MetricKind::Iru => l.cost() * imap.domain(l.id).len() as f64,
                MetricKind::Catt => imap
                    .domain(l.id)
                    .iter()
                    .map(|&i| net.link(i).cost())
                    .filter(|c| c.is_finite())
                    .sum::<f64>()
                    .max(l.cost()),
            })
            .collect();
        LinkMetric { kind, weights }
    }

    /// EMPoWER's default metric, which needs no interference map.
    pub fn ett(net: &Network) -> Self {
        let weights = net.links().iter().map(|l| l.cost()).collect();
        LinkMetric { kind: MetricKind::Ett, weights }
    }

    /// The metric kind.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Weight of a link. Infinite for dead links.
    pub fn weight(&self, link: LinkId) -> f64 {
        self.weights[link.index()]
    }

    /// Recomputes a single link's weight after its capacity changed. Only
    /// exact for capacity-local metrics (ETT, hop count); the interference-
    /// aware baselines must be rebuilt instead.
    ///
    /// # Panics
    /// Panics for any other metric kind — a silent no-op would leave a
    /// stale weight in place, which is worse than failing loudly.
    pub fn refresh_link(&mut self, net: &Network, link: LinkId) {
        match self.kind {
            MetricKind::Ett => self.weights[link.index()] = net.link(link).cost(),
            MetricKind::HopCount => {
                self.weights[link.index()] =
                    if net.link(link).is_alive() { 1.0 } else { f64::INFINITY }
            }
            // empower-lint: allow(D005) — documented caller-contract
            // panic; a silent no-op would corrupt route weights.
            _ => panic!("refresh_link is only supported for ETT and hop count"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn ett_weight_is_link_cost() {
        let s = fig1_scenario();
        let m = LinkMetric::ett(&s.net);
        assert!((m.weight(s.plc_ab) - 0.1).abs() < 1e-12);
        assert!((m.weight(s.wifi_bc) - 1.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn iru_scales_with_domain_size() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let m = LinkMetric::new(MetricKind::Iru, &s.net, &imap);
        // wifi_ab contends with all 4 directed WiFi links: weight = d · 4.
        assert!((m.weight(s.wifi_ab) - (1.0 / 15.0) * 4.0).abs() < 1e-12);
        // plc_ab contends only with its own duplex pair: weight = d · 2.
        assert!((m.weight(s.plc_ab) - 0.1 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn catt_sums_domain_costs() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let m = LinkMetric::new(MetricKind::Catt, &s.net, &imap);
        // WiFi domain: two 15 Mbps directions + two 30 Mbps directions.
        let expected = 2.0 / 15.0 + 2.0 / 30.0;
        assert!((m.weight(s.wifi_ab) - expected).abs() < 1e-12);
    }

    #[test]
    fn hop_count_is_uniform() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let m = LinkMetric::new(MetricKind::HopCount, &s.net, &imap);
        assert_eq!(m.weight(s.plc_ab), 1.0);
        assert_eq!(m.weight(s.wifi_bc), 1.0);
    }

    #[test]
    fn dead_links_weigh_infinity() {
        let mut s = fig1_scenario();
        s.net.set_capacity(s.wifi_ab, 0.0);
        let m = LinkMetric::ett(&s.net);
        assert_eq!(m.weight(s.wifi_ab), f64::INFINITY);
    }

    #[test]
    fn refresh_link_tracks_capacity_changes() {
        let mut s = fig1_scenario();
        let mut m = LinkMetric::ett(&s.net);
        s.net.set_capacity(s.plc_ab, 20.0);
        m.refresh_link(&s.net, s.plc_ab);
        assert!((m.weight(s.plc_ab) - 0.05).abs() < 1e-12);
    }
}
