//! Route queries: source/destination plus the restrictions a scheme or a
//! k-shortest-path spur computation imposes.

use std::collections::BTreeSet;

use empower_model::{LinkId, Medium, Network, NodeId};

/// A routing request.
///
/// `allowed_mediums` implements the paper's evaluation schemes: SP-WiFi and
/// MP-WiFi restrict to one WiFi channel, MP-mWiFi to two channels, EMPoWER
/// to PLC + one WiFi channel. `banned_*` serve Yen's algorithm and failure
/// experiments.
#[derive(Debug, Clone)]
pub struct RouteQuery {
    pub src: NodeId,
    pub dst: NodeId,
    /// If set, only links on these mediums are considered.
    pub allowed_mediums: Option<Vec<Medium>>,
    /// Links that must not be used.
    pub banned_links: BTreeSet<LinkId>,
    /// Nodes that must not be traversed (source exempt).
    pub banned_nodes: BTreeSet<NodeId>,
}

impl RouteQuery {
    /// An unrestricted query.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        RouteQuery {
            src,
            dst,
            allowed_mediums: None,
            banned_links: BTreeSet::new(),
            banned_nodes: BTreeSet::new(),
        }
    }

    /// Restricts the query to the given mediums.
    pub fn with_mediums(mut self, mediums: &[Medium]) -> Self {
        self.allowed_mediums = Some(mediums.to_vec());
        self
    }

    /// True if the query permits using `link` (alive, allowed medium, not
    /// banned, not entering a banned node).
    pub fn permits(&self, net: &Network, link: LinkId) -> bool {
        let l = net.link(link);
        if !l.is_alive() || self.banned_links.contains(&link) || self.banned_nodes.contains(&l.to) {
            return false;
        }
        match &self.allowed_mediums {
            Some(allowed) => allowed.contains(&l.medium),
            None => true,
        }
    }

    /// Minimum egress cost of `node` under the query's *medium restriction*
    /// only — the `w_ns(u)` channel-switching cost of §3.1.
    ///
    /// Deliberately ignores `banned_links`/`banned_nodes`: `w_ns(u)` is a
    /// node-global constant of the metric (that is what keeps it isotone),
    /// and Yen's temporary spur bans must not perturb it — otherwise a spur
    /// search optimizes a different weight than the one the spliced path is
    /// finally scored with, and the k-shortest enumeration loses its
    /// ordering.
    pub fn min_permitted_egress_cost(&self, net: &Network, node: NodeId) -> f64 {
        net.out_links(node)
            .filter(|l| {
                l.is_alive()
                    && self
                        .allowed_mediums
                        .as_ref()
                        .is_none_or(|allowed| allowed.contains(&l.medium))
            })
            .map(|l| l.cost())
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;

    #[test]
    fn medium_restriction_filters_links() {
        let s = fig1_scenario();
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[Medium::WIFI1]);
        assert!(!q.permits(&s.net, s.plc_ab));
        assert!(q.permits(&s.net, s.wifi_ab));
    }

    #[test]
    fn banned_links_and_nodes_are_rejected() {
        let s = fig1_scenario();
        let mut q = RouteQuery::new(s.gateway, s.client);
        q.banned_links.insert(s.wifi_ab);
        assert!(!q.permits(&s.net, s.wifi_ab));
        assert!(q.permits(&s.net, s.plc_ab));
        q.banned_nodes.insert(s.extender);
        assert!(!q.permits(&s.net, s.plc_ab)); // enters the banned extender
    }

    #[test]
    fn dead_links_are_rejected() {
        let mut s = fig1_scenario();
        s.net.set_capacity(s.plc_ab, 0.0);
        let q = RouteQuery::new(s.gateway, s.client);
        assert!(!q.permits(&s.net, s.plc_ab));
    }

    #[test]
    fn min_permitted_egress_cost_respects_filter() {
        let s = fig1_scenario();
        let q = RouteQuery::new(s.gateway, s.client);
        // Unrestricted: fastest egress of the gateway is WiFi 15 Mbps.
        assert!((q.min_permitted_egress_cost(&s.net, s.gateway) - 1.0 / 15.0).abs() < 1e-12);
        let q = q.with_mediums(&[Medium::Plc]);
        assert!((q.min_permitted_egress_cost(&s.net, s.gateway) - 1.0 / 10.0).abs() < 1e-12);
    }
}
