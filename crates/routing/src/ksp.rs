//! `n-shortest(G)`: the n shortest loopless paths (Yen's algorithm) under
//! the single-path metric of §3.1.
//!
//! The multipath procedure of §3.2 explores combinations built from these
//! paths; the paper uses `n = 5`, "which enables route diversity while
//! limiting the number of possible combinations to be explored".

use std::collections::BTreeSet;

use empower_model::{Network, Path};

use crate::dijkstra::{
    path_weight, shortest_path, shortest_path_with_budget, CscMode, DijkstraOutcome, MAX_ROUTE_HOPS,
};
use crate::metrics::LinkMetric;
use crate::query::RouteQuery;

/// Computes up to `k` shortest loopless paths for `query`, cheapest first.
///
/// Ties are broken deterministically (by weight, then by link sequence), so
/// results are stable across runs.
pub fn k_shortest_paths(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    k: usize,
) -> Vec<DijkstraOutcome> {
    let mut accepted: Vec<DijkstraOutcome> = Vec::new();
    let Some(first) = shortest_path(net, metric, csc, query) else {
        return accepted;
    };
    accepted.push(first);

    // Candidate pool; kept sorted on extraction. Deduplicated by link
    // sequence.
    let mut candidates: Vec<DijkstraOutcome> = Vec::new();
    let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
    seen.insert(accepted[0].path.links().iter().map(|l| l.0).collect());

    while accepted.len() < k {
        // `accepted` starts with the first shortest path and only grows.
        let Some(last) = accepted.last() else { break };
        let prev = last.path.clone();
        let prev_nodes = prev.nodes(net);

        for spur_idx in 0..prev.hop_count() {
            let spur_node = prev_nodes[spur_idx];
            let root_links = &prev.links()[..spur_idx];

            let mut spur_query = query.clone();
            spur_query.src = spur_node;
            // Ban the next link of every *accepted* path sharing this root,
            // so the spur leg must deviate here. (Banning pending
            // candidates' links too would over-constrain the search and
            // break the weight ordering — duplicates are handled by the
            // `seen` set instead.)
            for known in accepted.iter().map(|o| &o.path) {
                if known.links().len() > spur_idx && &known.links()[..spur_idx] == root_links {
                    spur_query.banned_links.insert(known.links()[spur_idx]);
                }
            }
            // Ban the root's interior nodes to keep the total path loopless.
            for &node in &prev_nodes[..spur_idx] {
                spur_query.banned_nodes.insert(node);
            }

            let ingress = (spur_idx > 0).then(|| net.link(root_links[spur_idx - 1]).medium);
            // The spliced path must respect the header's 6-hop cap, so the
            // spur leg's budget shrinks by the root's length.
            let budget = MAX_ROUTE_HOPS - spur_idx;
            let Some(spur) =
                shortest_path_with_budget(net, metric, csc, &spur_query, ingress, budget)
            else {
                continue;
            };

            let mut links = root_links.to_vec();
            links.extend_from_slice(spur.path.links());
            let key: Vec<u32> = links.iter().map(|l| l.0).collect();
            if !seen.insert(key) {
                continue;
            }
            let Ok(path) = Path::new(net, links) else {
                continue;
            };
            debug_assert!(path.hop_count() <= MAX_ROUTE_HOPS, "budgeted spur overran the cap");
            let weight = path_weight(net, metric, csc, query, path.links());
            candidates.push(DijkstraOutcome { path, weight });
        }

        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable tie-break on links); the
        // emptiness check above makes the `min_by` always succeed.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.weight.total_cmp(&b.weight).then_with(|| a.path.links().cmp(b.path.links()))
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best_idx));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::Medium;

    #[test]
    fn finds_both_fig1_routes() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 5);
        assert_eq!(paths.len(), 2, "exactly two loopless gateway→client paths");
        let mediums: Vec<Vec<Medium>> = paths
            .iter()
            .map(|o| o.path.links().iter().map(|&l| s.net.link(l).medium).collect())
            .collect();
        assert!(mediums.contains(&vec![Medium::Plc, Medium::WIFI1]));
        assert!(mediums.contains(&vec![Medium::WIFI1, Medium::WIFI1]));
    }

    #[test]
    fn weights_are_nondecreasing() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        assert!(paths.len() >= 3);
        for w in paths.windows(2) {
            assert!(w[0].weight <= w[1].weight + 1e-12);
        }
    }

    #[test]
    fn finds_all_three_fig3_routes() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        let link_sets: Vec<&[empower_model::LinkId]> =
            paths.iter().map(|o| o.path.links()).collect();
        assert!(link_sets.contains(&&s.route1[..]));
        assert!(link_sets.contains(&&s.route2[..]));
        assert!(link_sets.contains(&&s.route3[..]));
    }

    #[test]
    fn paths_are_unique_and_loopless() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        let mut seen = std::collections::HashSet::new();
        for o in &paths {
            assert!(seen.insert(o.path.links().to_vec()), "duplicate path");
            // Node-loopless by Path construction.
            let nodes = o.path.nodes(&s.net);
            let mut uniq = nodes.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), nodes.len());
        }
    }

    #[test]
    fn k_one_equals_shortest_path() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let single = shortest_path(&s.net, &metric, CscMode::Paper, &q).unwrap();
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].path.links(), single.path.links());
    }

    #[test]
    fn no_paths_when_disconnected() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[Medium::Plc]);
        assert!(k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 5).is_empty());
    }

    #[test]
    fn medium_restriction_propagates_to_spurs() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest).with_mediums(&[Medium::WIFI1]);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        for o in &paths {
            for &l in o.path.links() {
                assert_eq!(s.net.link(l).medium, Medium::WIFI1);
            }
        }
    }
}
