//! `n-shortest(G)`: the n shortest loopless paths (Yen's algorithm) under
//! the single-path metric of §3.1.
//!
//! The multipath procedure of §3.2 explores combinations built from these
//! paths; the paper uses `n = 5`, "which enables route diversity while
//! limiting the number of possible combinations to be explored".

use std::collections::BTreeSet;

use empower_model::{LinkId, Network, Path};

use crate::dijkstra::{
    path_weight, shortest_path_with_scratch, CscMode, DijkstraOutcome, DijkstraScratch,
    MAX_ROUTE_HOPS,
};
use crate::metrics::LinkMetric;
use crate::query::RouteQuery;

/// Reusable working memory for [`k_shortest_paths_into`]: the Dijkstra
/// scratch, the candidate pool, the duplicate-suppression set, and the
/// lexicographic index over accepted paths that powers the prefix-range
/// spur-ban lookup. One workspace amortizes all allocations across the many
/// KSP invocations an exploration tree performs.
#[derive(Debug, Default)]
pub struct KspWorkspace {
    dijkstra: DijkstraScratch,
    candidates: Vec<DijkstraOutcome>,
    seen: BTreeSet<Vec<u32>>,
    /// Indices into the accepted list, sorted lexicographically by link
    /// sequence. Accepted paths sharing a root prefix form a contiguous
    /// range here, so the per-spur ban scan narrows a `[lo, hi)` window
    /// instead of re-scanning every accepted path at every spur index.
    order: Vec<usize>,
}

impl KspWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes up to `k` shortest loopless paths for `query`, cheapest first.
///
/// Ties are broken deterministically (by weight, then by link sequence), so
/// results are stable across runs.
pub fn k_shortest_paths(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    k: usize,
) -> Vec<DijkstraOutcome> {
    let mut ws = KspWorkspace::new();
    let mut out = Vec::new();
    k_shortest_paths_into(net, metric, csc, query, k, &mut ws, &mut out);
    out
}

/// [`k_shortest_paths`] writing into `out` and running on caller-provided
/// working memory. The accepted sequence is identical to the allocating
/// entry point.
pub fn k_shortest_paths_into(
    net: &Network,
    metric: &LinkMetric,
    csc: CscMode,
    query: &RouteQuery,
    k: usize,
    ws: &mut KspWorkspace,
    out: &mut Vec<DijkstraOutcome>,
) {
    out.clear();
    ws.candidates.clear();
    ws.seen.clear();
    ws.order.clear();
    if k == 0 {
        return;
    }
    let Some(first) =
        shortest_path_with_scratch(net, metric, csc, query, None, MAX_ROUTE_HOPS, &mut ws.dijkstra)
    else {
        return;
    };
    ws.seen.insert(first.path.links().iter().map(|l| l.0).collect());
    push_ordered(out, &mut ws.order, first);

    // One spur query per accepted path: the banned sets are edited in place
    // (tracked inserts, removed before the next spur index) instead of
    // cloning the query's BTreeSets for every spur.
    let mut spur_query = query.clone();
    let mut added_nodes: Vec<empower_model::NodeId> = Vec::new();
    let mut added_links: Vec<LinkId> = Vec::new();

    while out.len() < k {
        // `out` starts with the first shortest path and only grows.
        let Some(last_idx) = out.len().checked_sub(1) else { break };
        let prev_links: Vec<LinkId> = out[last_idx].path.links().to_vec();
        let prev_nodes = out[last_idx].path.nodes(net);

        // Accepted paths sharing the (empty) root prefix: all of them.
        let mut lo = 0usize;
        let mut hi = ws.order.len();
        debug_assert!(added_nodes.is_empty());

        for spur_idx in 0..prev_links.len() {
            let spur_node = prev_nodes[spur_idx];
            let root_links = &prev_links[..spur_idx];

            spur_query.src = spur_node;
            // Ban the next link of every *accepted* path sharing this root,
            // so the spur leg must deviate here. (Banning pending
            // candidates' links too would over-constrain the search and
            // break the weight ordering — duplicates are handled by the
            // `seen` set instead.) `order[lo..hi]` is exactly the accepted
            // paths whose first `spur_idx` links equal `root_links`; within
            // it, equal next-links are contiguous, so the distinct bans fall
            // out of a single sorted sweep.
            debug_assert!(ws.order[lo..hi]
                .iter()
                .all(|&i| out[i].path.links().starts_with(root_links)));
            for &i in &ws.order[lo..hi] {
                let known = out[i].path.links();
                if let Some(&next) = known.get(spur_idx) {
                    if spur_query.banned_links.insert(next) {
                        added_links.push(next);
                    }
                }
            }
            // Ban the root's interior nodes to keep the total path loopless;
            // the set grows by exactly one node per spur index.
            if spur_idx > 0 && spur_query.banned_nodes.insert(prev_nodes[spur_idx - 1]) {
                added_nodes.push(prev_nodes[spur_idx - 1]);
            }

            let ingress = (spur_idx > 0).then(|| net.link(root_links[spur_idx - 1]).medium);
            // The spliced path must respect the header's 6-hop cap, so the
            // spur leg's budget shrinks by the root's length.
            let budget = MAX_ROUTE_HOPS - spur_idx;
            let spur = shortest_path_with_scratch(
                net,
                metric,
                csc,
                &spur_query,
                ingress,
                budget,
                &mut ws.dijkstra,
            );
            for l in added_links.drain(..) {
                spur_query.banned_links.remove(&l);
            }

            // Narrow the prefix window for the next spur index: keep only
            // the accepted paths whose link at `spur_idx` matches `prev`'s.
            let target = prev_links[spur_idx];
            lo += ws.order[lo..hi]
                .partition_point(|&i| out[i].path.links().get(spur_idx) < Some(&target));
            hi = lo
                + ws.order[lo..hi]
                    .partition_point(|&i| out[i].path.links().get(spur_idx) <= Some(&target));

            let Some(spur) = spur else {
                continue;
            };
            let mut links = root_links.to_vec();
            links.extend_from_slice(spur.path.links());
            let key: Vec<u32> = links.iter().map(|l| l.0).collect();
            if !ws.seen.insert(key) {
                continue;
            }
            let Ok(path) = Path::new(net, links) else {
                continue;
            };
            debug_assert!(path.hop_count() <= MAX_ROUTE_HOPS, "budgeted spur overran the cap");
            let weight = path_weight(net, metric, csc, query, path.links());
            ws.candidates.push(DijkstraOutcome { path, weight });
        }
        // Reset the banned-node set for the next accepted path.
        for node in added_nodes.drain(..) {
            spur_query.banned_nodes.remove(&node);
        }

        if ws.candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable tie-break on links); the
        // emptiness check above makes the `min_by` always succeed.
        let Some(best_idx) = ws
            .candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.weight.total_cmp(&b.weight).then_with(|| a.path.links().cmp(b.path.links()))
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let best = ws.candidates.swap_remove(best_idx);
        push_ordered(out, &mut ws.order, best);
    }
    ws.candidates.clear();
    ws.seen.clear();
    ws.order.clear();
}

/// Appends `outcome` to `out` and inserts its index into `order`, keeping
/// `order` sorted lexicographically by link sequence.
fn push_ordered(out: &mut Vec<DijkstraOutcome>, order: &mut Vec<usize>, outcome: DijkstraOutcome) {
    let idx = out.len();
    let pos = order.partition_point(|&i| out[i].path.links() < outcome.path.links());
    out.push(outcome);
    order.insert(pos, idx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::Medium;

    #[test]
    fn finds_both_fig1_routes() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 5);
        assert_eq!(paths.len(), 2, "exactly two loopless gateway→client paths");
        let mediums: Vec<Vec<Medium>> = paths
            .iter()
            .map(|o| o.path.links().iter().map(|&l| s.net.link(l).medium).collect())
            .collect();
        assert!(mediums.contains(&vec![Medium::Plc, Medium::WIFI1]));
        assert!(mediums.contains(&vec![Medium::WIFI1, Medium::WIFI1]));
    }

    #[test]
    fn weights_are_nondecreasing() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        assert!(paths.len() >= 3);
        for w in paths.windows(2) {
            assert!(w[0].weight <= w[1].weight + 1e-12);
        }
    }

    #[test]
    fn finds_all_three_fig3_routes() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        let link_sets: Vec<&[empower_model::LinkId]> =
            paths.iter().map(|o| o.path.links()).collect();
        assert!(link_sets.contains(&&s.route1[..]));
        assert!(link_sets.contains(&&s.route2[..]));
        assert!(link_sets.contains(&&s.route3[..]));
    }

    #[test]
    fn paths_are_unique_and_loopless() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        let mut seen = std::collections::HashSet::new();
        for o in &paths {
            assert!(seen.insert(o.path.links().to_vec()), "duplicate path");
            // Node-loopless by Path construction.
            let nodes = o.path.nodes(&s.net);
            let mut uniq = nodes.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), nodes.len());
        }
    }

    #[test]
    fn k_one_equals_shortest_path() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client);
        let single = shortest_path(&s.net, &metric, CscMode::Paper, &q).unwrap();
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].path.links(), single.path.links());
    }

    #[test]
    fn no_paths_when_disconnected() {
        let s = fig1_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.gateway, s.client).with_mediums(&[Medium::Plc]);
        assert!(k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 5).is_empty());
    }

    #[test]
    fn medium_restriction_propagates_to_spurs() {
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q = RouteQuery::new(s.source, s.dest).with_mediums(&[Medium::WIFI1]);
        let paths = k_shortest_paths(&s.net, &metric, CscMode::Paper, &q, 10);
        for o in &paths {
            for &l in o.path.links() {
                assert_eq!(s.net.link(l).medium, Medium::WIFI1);
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        // The same workspace serving two different queries must reproduce
        // the fresh-workspace output of each, in order, bit for bit.
        let s = fig3_scenario();
        let metric = LinkMetric::ett(&s.net);
        let q1 = RouteQuery::new(s.source, s.dest);
        let q2 = RouteQuery::new(s.dest, s.source);
        let mut ws = KspWorkspace::new();
        let mut got = Vec::new();
        for q in [&q1, &q2, &q1] {
            k_shortest_paths_into(&s.net, &metric, CscMode::Paper, q, 10, &mut ws, &mut got);
            let fresh = k_shortest_paths(&s.net, &metric, CscMode::Paper, q, 10);
            assert_eq!(got.len(), fresh.len());
            for (a, b) in got.iter().zip(&fresh) {
                assert_eq!(a.path.links(), b.path.links());
                assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
        }
    }
}
