//! Equivalence oracle for the incremental exploration engine: across a
//! seeded corpus of random §5.1 topologies, [`Explorer::best_combination`]
//! must return a `RouteSet` that is *bit-identical* (same link sequences,
//! same `f64` bits of every nominal rate) to the retained exhaustive
//! reference — the pre-optimization cloning implementation.
//!
//! Set `EMPOWER_EQUIV_TOPOLOGIES` to override the corpus size (CI quick
//! mode uses a smaller corpus; the default exercises 50 topologies).

use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{CarrierSense, InterferenceModel};
use empower_routing::{
    best_combination_reference_counted, Explorer, MultipathConfig, RouteQuery, RouteSet,
};

fn corpus_size() -> usize {
    std::env::var("EMPOWER_EQUIV_TOPOLOGIES").ok().and_then(|v| v.parse().ok()).unwrap_or(50)
}

fn assert_bit_identical(seed: u64, flow: usize, opt: &RouteSet, reference: &RouteSet) {
    assert_eq!(
        opt.len(),
        reference.len(),
        "seed {seed} flow {flow}: route count {} vs {}",
        opt.len(),
        reference.len()
    );
    for (i, (a, b)) in opt.routes.iter().zip(&reference.routes).enumerate() {
        assert_eq!(
            a.path.links(),
            b.path.links(),
            "seed {seed} flow {flow}: route {i} link sequence differs"
        );
        assert_eq!(
            a.nominal_rate.to_bits(),
            b.nominal_rate.to_bits(),
            "seed {seed} flow {flow}: route {i} rate {} vs {} (bits differ)",
            a.nominal_rate,
            b.nominal_rate
        );
    }
}

#[test]
fn explorer_is_bit_identical_to_exhaustive_reference() {
    let config = MultipathConfig::default();
    // One Explorer across the whole corpus: workspace reuse must not leak
    // state between queries.
    let mut explorer = Explorer::new();
    let mut total_opt_nodes = 0u64;
    let mut total_ref_nodes = 0u64;
    for i in 0..corpus_size() {
        let seed = 0xE9_0000 + i as u64;
        let class = if i % 2 == 0 { TopologyClass::Residential } else { TopologyClass::Enterprise };
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = generate(&mut rng, &RandomTopologyConfig::new(class));
        let imap = CarrierSense::default().build_map(&topo.net);
        for flow in 0..2 {
            let (src, dst) = topo.sample_flow(&mut rng);
            let query = RouteQuery::new(src, dst);
            let opt = explorer.best_combination(&topo.net, &imap, &query, &config);
            let (reference, ref_stats) =
                best_combination_reference_counted(&topo.net, &imap, &query, &config);
            assert_bit_identical(seed, flow, &opt, &reference);
            total_ref_nodes += ref_stats.nodes_expanded;
        }
        // Exercise a medium-restricted query too (WiFi-only), which stresses
        // the disconnected / single-route corners of the search.
        let (src, dst) = topo.sample_flow(&mut rng);
        let query = RouteQuery::new(src, dst).with_mediums(&[empower_model::Medium::WIFI1]);
        let opt = explorer.best_combination(&topo.net, &imap, &query, &config);
        let (reference, ref_stats) =
            best_combination_reference_counted(&topo.net, &imap, &query, &config);
        assert_bit_identical(seed, 2, &opt, &reference);
        total_ref_nodes += ref_stats.nodes_expanded;
    }
    total_opt_nodes += explorer.stats().nodes_expanded;
    // The branch-and-bound engine must do strictly less tree work than the
    // exhaustive reference over the corpus.
    assert!(
        total_opt_nodes < total_ref_nodes,
        "optimized expanded {total_opt_nodes} nodes vs reference {total_ref_nodes}"
    );
}
