//! Property tests of the routing layer over randomized topologies.

use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{CarrierSense, InterferenceModel, Medium};
use empower_routing::{
    best_combination, k_shortest_paths, path_weight, shortest_path, CscMode, LinkMetric,
    MultipathConfig, RouteQuery, MAX_ROUTE_HOPS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instance(seed: u64) -> (empower_model::Network, empower_model::NodeId, empower_model::NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Enterprise));
    let n = topo.net.node_count();
    let a = empower_model::NodeId(rng.gen_range(0..n) as u32);
    let b = loop {
        let b = empower_model::NodeId(rng.gen_range(0..n) as u32);
        if b != a {
            break b;
        }
    };
    (topo.net, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Yen's paths are loopless, unique, weight-sorted, within the hop cap,
    /// and the first equals plain Dijkstra.
    #[test]
    fn yen_invariants(seed in 0u64..10_000) {
        let (net, src, dst) = instance(seed);
        let metric = LinkMetric::ett(&net);
        let q = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1, Medium::Plc]);
        let paths = k_shortest_paths(&net, &metric, CscMode::Paper, &q, 6);
        if paths.is_empty() {
            prop_assert!(shortest_path(&net, &metric, CscMode::Paper, &q).is_none());
            return Ok(());
        }
        let single = shortest_path(&net, &metric, CscMode::Paper, &q).unwrap();
        prop_assert_eq!(paths[0].path.links(), single.path.links());
        let mut seen = std::collections::HashSet::new();
        for w in paths.windows(2) {
            prop_assert!(w[0].weight <= w[1].weight + 1e-9);
        }
        for o in &paths {
            prop_assert!(seen.insert(o.path.links().to_vec()));
            prop_assert!(o.path.hop_count() <= MAX_ROUTE_HOPS);
            prop_assert_eq!(o.path.source(&net), src);
            prop_assert_eq!(o.path.destination(&net), dst);
            // Reported weight equals an independent recomputation.
            let w = path_weight(&net, &metric, CscMode::Paper, &q, o.path.links());
            prop_assert!((w - o.weight).abs() < 1e-9);
        }
    }

    /// Wider trees never hurt: the best combination with n-shortest width 5
    /// carries at least as much as width 1 or 2.
    #[test]
    fn wider_exploration_is_monotone(seed in 0u64..10_000) {
        let (net, src, dst) = instance(seed);
        let imap = CarrierSense::default().build_map(&net);
        let q = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1, Medium::Plc]);
        let rate = |n: usize| {
            best_combination(
                &net,
                &imap,
                &q,
                &MultipathConfig { n_shortest: n, ..Default::default() },
            )
            .total_rate()
        };
        let r1 = rate(1);
        let r2 = rate(2);
        let r5 = rate(5);
        prop_assert!(r2 >= r1 - 1e-9, "n=2 ({r2}) < n=1 ({r1})");
        prop_assert!(r5 >= r2 - 1e-9, "n=5 ({r5}) < n=2 ({r2})");
    }

    /// Restricting mediums never increases the achievable combination.
    #[test]
    fn more_mediums_never_hurt(seed in 0u64..10_000) {
        let (net, src, dst) = instance(seed);
        let imap = CarrierSense::default().build_map(&net);
        let hybrid = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1, Medium::Plc]);
        let wifi = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1]);
        let config = MultipathConfig::default();
        let rh = best_combination(&net, &imap, &hybrid, &config).total_rate();
        let rw = best_combination(&net, &imap, &wifi, &config).total_rate();
        prop_assert!(rh >= rw - 1e-9, "hybrid {rh} < wifi-only {rw}");
    }
}
