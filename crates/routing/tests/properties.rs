//! Property tests of the routing layer over randomized topologies. Each
//! property sweeps a deterministic seed list (the in-tree RNG replaces
//! proptest; the failing seed is in the assertion message).

use empower_model::rng::{Rng, SeedableRng, StdRng};
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{CarrierSense, InterferenceModel, Medium};
use empower_routing::{
    best_combination, k_shortest_paths, path_weight, shortest_path, CscMode, LinkMetric,
    MultipathConfig, RouteQuery, MAX_ROUTE_HOPS,
};

const CASES: u64 = 24;

fn instance(seed: u64) -> (empower_model::Network, empower_model::NodeId, empower_model::NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Enterprise));
    let n = topo.net.node_count();
    let a = empower_model::NodeId(rng.gen_range(0..n) as u32);
    let b = loop {
        let b = empower_model::NodeId(rng.gen_range(0..n) as u32);
        if b != a {
            break b;
        }
    };
    (topo.net, a, b)
}

fn seeds(meta_seed: u64) -> impl Iterator<Item = u64> {
    let mut meta = StdRng::seed_from_u64(meta_seed);
    (0..CASES).map(move |_| meta.gen_range(0u64..10_000))
}

/// Yen's paths are loopless, unique, weight-sorted, within the hop cap,
/// and the first equals plain Dijkstra.
#[test]
fn yen_invariants() {
    for seed in seeds(0xB001) {
        let (net, src, dst) = instance(seed);
        let metric = LinkMetric::ett(&net);
        let q = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1, Medium::Plc]);
        let paths = k_shortest_paths(&net, &metric, CscMode::Paper, &q, 6);
        if paths.is_empty() {
            assert!(shortest_path(&net, &metric, CscMode::Paper, &q).is_none());
            continue;
        }
        let single = shortest_path(&net, &metric, CscMode::Paper, &q).unwrap();
        assert_eq!(paths[0].path.links(), single.path.links(), "seed {seed}");
        let mut seen = std::collections::HashSet::new();
        for w in paths.windows(2) {
            assert!(w[0].weight <= w[1].weight + 1e-9, "seed {seed}: unsorted");
        }
        for o in &paths {
            assert!(seen.insert(o.path.links().to_vec()), "seed {seed}: duplicate path");
            assert!(o.path.hop_count() <= MAX_ROUTE_HOPS, "seed {seed}");
            assert_eq!(o.path.source(&net), src, "seed {seed}");
            assert_eq!(o.path.destination(&net), dst, "seed {seed}");
            // Reported weight equals an independent recomputation.
            let w = path_weight(&net, &metric, CscMode::Paper, &q, o.path.links());
            assert!((w - o.weight).abs() < 1e-9, "seed {seed}: weight mismatch");
        }
    }
}

/// Wider trees never hurt: the best combination with n-shortest width 5
/// carries at least as much as width 1 or 2.
#[test]
fn wider_exploration_is_monotone() {
    for seed in seeds(0xB002) {
        let (net, src, dst) = instance(seed);
        let imap = CarrierSense::default().build_map(&net);
        let q = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1, Medium::Plc]);
        let rate = |n: usize| {
            best_combination(
                &net,
                &imap,
                &q,
                &MultipathConfig { n_shortest: n, ..Default::default() },
            )
            .total_rate()
        };
        let r1 = rate(1);
        let r2 = rate(2);
        let r5 = rate(5);
        assert!(r2 >= r1 - 1e-9, "seed {seed}: n=2 ({r2}) < n=1 ({r1})");
        assert!(r5 >= r2 - 1e-9, "seed {seed}: n=5 ({r5}) < n=2 ({r2})");
    }
}

/// Restricting mediums never increases the achievable combination.
#[test]
fn more_mediums_never_hurt() {
    for seed in seeds(0xB003) {
        let (net, src, dst) = instance(seed);
        let imap = CarrierSense::default().build_map(&net);
        let hybrid = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1, Medium::Plc]);
        let wifi = RouteQuery::new(src, dst).with_mediums(&[Medium::WIFI1]);
        let config = MultipathConfig::default();
        let rh = best_combination(&net, &imap, &hybrid, &config).total_rate();
        let rw = best_combination(&net, &imap, &wifi, &config).total_rate();
        assert!(rh >= rw - 1e-9, "seed {seed}: hybrid {rh} < wifi-only {rw}");
    }
}
