//! Minimal 2-D geometry used by the topology generators and the
//! distance-based interference/capacity models.

/// A point on the floor plan, in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangle (the deployment area of a topology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Width in metres (x extent).
    pub width: f64,
    /// Height in metres (y extent).
    pub height: f64,
}

impl Rect {
    /// Creates a `width × height` rectangle anchored at the origin.
    pub const fn new(width: f64, height: f64) -> Self {
        Rect { width, height }
    }

    /// True if `p` lies inside the rectangle (boundary included).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= 0.0 && p.x <= self.width && p.y >= 0.0 && p.y <= self.height
    }

    /// Samples a uniformly random point inside the rectangle.
    pub fn sample_uniform<R: crate::rng::Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(rng.gen::<f64>() * self.width, rng.gen::<f64>() * self.height)
    }

    /// Splits the rectangle into `parts` vertical slices and returns the
    /// 0-based slice index containing `p`. Used for assigning electrical
    /// panels in the enterprise topology ("we divide the building area in
    /// two equal parts", §5.1).
    pub fn vertical_slice(&self, p: Point, parts: u32) -> u32 {
        debug_assert!(parts > 0);
        let frac = (p.x / self.width).clamp(0.0, 1.0);
        ((frac * parts as f64) as u32).min(parts - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;
    use crate::rng::StdRng;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((b.distance(a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(1.5, -2.5);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(50.0, 30.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(50.0, 30.0)));
        assert!(!r.contains(Point::new(50.1, 5.0)));
        assert!(!r.contains(Point::new(-0.1, 5.0)));
    }

    #[test]
    fn uniform_samples_stay_inside() {
        let r = Rect::new(100.0, 60.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(r.contains(r.sample_uniform(&mut rng)));
        }
    }

    #[test]
    fn vertical_slices_partition_the_area() {
        let r = Rect::new(100.0, 60.0);
        assert_eq!(r.vertical_slice(Point::new(10.0, 5.0), 2), 0);
        assert_eq!(r.vertical_slice(Point::new(60.0, 5.0), 2), 1);
        // Right boundary maps to the last slice, not one past it.
        assert_eq!(r.vertical_slice(Point::new(100.0, 5.0), 2), 1);
    }
}
