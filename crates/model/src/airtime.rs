//! The airtime model of §2 and Lemma 1 of §3.2.
//!
//! The airtime of an unsaturated link is `µ_l = x_l · d_l` (Eq. (1)). The
//! congestion-control constraint (2) requires the *aggregate* airtime demand
//! in every interference domain to stay below 1 (or `1 − δ` with a margin):
//!
//! ```text
//! Σ_{l'∈I_l} d_{l'} · Σ_{r: l'∈r} x_r  ≤  1 − δ      ∀ l ∈ L
//! ```
//!
//! [`AirtimeLedger`] evaluates that expression for a set of routes and rates.

use crate::graph::Network;
use crate::ids::LinkId;
use crate::interference::InterferenceMap;
use crate::path::Path;

/// Lemma 1: if `λ` links share one collision domain, the maximum rate
/// simultaneously achievable by *each* link is `R_max = (Σ d_i)⁻¹`.
///
/// Returns 0 when any link is dead or the set is empty.
pub fn lemma1_rmax(costs: &[f64]) -> f64 {
    if costs.is_empty() {
        return 0.0;
    }
    let sum: f64 = costs.iter().sum();
    if sum.is_finite() && sum > 0.0 {
        1.0 / sum
    } else {
        0.0
    }
}

/// Airtime `µ_l = x · d_l` of a link carrying rate `x` (Eq. (1)).
pub fn airtime_of(net: &Network, link: LinkId, rate: f64) -> f64 {
    rate * net.link(link).cost()
}

/// Accumulates per-link traffic from (route, rate) pairs and evaluates the
/// interference constraint (2)/(3).
#[derive(Debug, Clone)]
pub struct AirtimeLedger {
    /// Traffic rate `x_l = Σ_{r: l∈r} x_r` per link, Mbps.
    link_rates: Vec<f64>,
}

impl AirtimeLedger {
    /// Creates an empty ledger for `net`.
    pub fn new(net: &Network) -> Self {
        AirtimeLedger { link_rates: vec![0.0; net.link_count()] }
    }

    /// Clears all recorded traffic.
    pub fn clear(&mut self) {
        self.link_rates.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Adds `rate` Mbps flowing over every link of `path`.
    pub fn add_route(&mut self, path: &Path, rate: f64) {
        debug_assert!(rate >= 0.0);
        for &l in path.links() {
            self.link_rates[l.index()] += rate;
        }
    }

    /// Adds `rate` Mbps on a single link (external/background traffic).
    pub fn add_link_traffic(&mut self, link: LinkId, rate: f64) {
        self.link_rates[link.index()] += rate;
    }

    /// Traffic rate currently recorded on `link`.
    pub fn link_rate(&self, link: LinkId) -> f64 {
        self.link_rates[link.index()]
    }

    /// Airtime demand of a single link: `µ_l = x_l · d_l`. Infinite when a
    /// dead link carries traffic.
    pub fn link_airtime(&self, net: &Network, link: LinkId) -> f64 {
        let x = self.link_rates[link.index()];
        if x == 0.0 {
            0.0
        } else {
            x * net.link(link).cost()
        }
    }

    /// Aggregate airtime demand in the interference domain of `link`:
    /// `y_l = Σ_{l'∈I_l} d_{l'} x_{l'}` — the left-hand side of constraint (2).
    pub fn domain_airtime(&self, net: &Network, imap: &InterferenceMap, link: LinkId) -> f64 {
        imap.domain(link).iter().map(|&l| self.link_airtime(net, l)).sum()
    }

    /// The largest domain airtime demand over all links — ≤ 1 iff constraint
    /// (2) holds everywhere.
    pub fn max_domain_airtime(&self, net: &Network, imap: &InterferenceMap) -> f64 {
        (0..net.link_count())
            .map(|i| self.domain_airtime(net, imap, LinkId(i as u32)))
            .fold(0.0, f64::max)
    }

    /// True if constraint (3) holds with margin `delta` on every link.
    pub fn is_feasible(&self, net: &Network, imap: &InterferenceMap, delta: f64) -> bool {
        let budget = 1.0 - delta;
        (0..net.link_count())
            .all(|i| self.domain_airtime(net, imap, LinkId(i as u32)) <= budget + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::NetworkBuilder;
    use crate::interference::{InterferenceModel, SharedMedium};
    use crate::medium::Medium;
    use crate::path::Path;

    #[test]
    fn lemma1_matches_closed_form() {
        // Three links of 30, 15, 30 Mbps in one domain:
        // Rmax = 1/(1/30 + 1/15 + 1/30) = 7.5.
        let r = lemma1_rmax(&[1.0 / 30.0, 1.0 / 15.0, 1.0 / 30.0]);
        assert!((r - 7.5).abs() < 1e-9);
    }

    #[test]
    fn lemma1_degenerate_cases() {
        assert_eq!(lemma1_rmax(&[]), 0.0);
        assert_eq!(lemma1_rmax(&[f64::INFINITY, 0.1]), 0.0);
        assert!((lemma1_rmax(&[0.1]) - 10.0).abs() < 1e-12);
    }

    fn chain() -> (Network, Vec<LinkId>) {
        let mut b = NetworkBuilder::new();
        let m = vec![Medium::WIFI1];
        let n0 = b.add_node(Point::new(0.0, 0.0), m.clone(), None);
        let n1 = b.add_node(Point::new(10.0, 0.0), m.clone(), None);
        let n2 = b.add_node(Point::new(20.0, 0.0), m, None);
        let (l0, _) = b.add_duplex(n0, n1, Medium::WIFI1, 15.0);
        let (l1, _) = b.add_duplex(n1, n2, Medium::WIFI1, 30.0);
        (b.build(), vec![l0, l1])
    }

    #[test]
    fn ledger_accumulates_route_traffic() {
        let (net, ids) = chain();
        let imap = SharedMedium.build_map(&net);
        let mut ledger = AirtimeLedger::new(&net);
        let p = Path::new(&net, vec![ids[0], ids[1]]).unwrap();
        ledger.add_route(&p, 5.0);
        assert_eq!(ledger.link_rate(ids[0]), 5.0);
        assert_eq!(ledger.link_rate(ids[1]), 5.0);
        // Domain airtime: 5/15 + 5/30 = 0.5 on the shared WiFi medium.
        assert!((ledger.domain_airtime(&net, &imap, ids[0]) - 0.5).abs() < 1e-9);
        assert!(ledger.is_feasible(&net, &imap, 0.0));
        assert!(!ledger.is_feasible(&net, &imap, 0.6));
    }

    #[test]
    fn ledger_detects_overload() {
        let (net, ids) = chain();
        let imap = SharedMedium.build_map(&net);
        let mut ledger = AirtimeLedger::new(&net);
        let p = Path::new(&net, vec![ids[0], ids[1]]).unwrap();
        // Path capacity is 1/(1/15+1/30) = 10; inject 12.
        ledger.add_route(&p, 12.0);
        assert!(ledger.max_domain_airtime(&net, &imap) > 1.0);
        assert!(!ledger.is_feasible(&net, &imap, 0.0));
    }

    #[test]
    fn rate_at_path_capacity_saturates_exactly() {
        let (net, ids) = chain();
        let imap = SharedMedium.build_map(&net);
        let p = Path::new(&net, vec![ids[0], ids[1]]).unwrap();
        let cap = p.capacity(&net, &imap);
        let mut ledger = AirtimeLedger::new(&net);
        ledger.add_route(&p, cap);
        assert!((ledger.max_domain_airtime(&net, &imap) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_ledger() {
        let (net, ids) = chain();
        let mut ledger = AirtimeLedger::new(&net);
        ledger.add_link_traffic(ids[0], 3.0);
        ledger.clear();
        assert_eq!(ledger.link_rate(ids[0]), 0.0);
    }

    #[test]
    fn external_traffic_counts_toward_domain() {
        let (net, ids) = chain();
        let imap = SharedMedium.build_map(&net);
        let mut ledger = AirtimeLedger::new(&net);
        ledger.add_link_traffic(ids[1], 30.0); // saturates the 30 Mbps link
        assert!((ledger.domain_airtime(&net, &imap, ids[0]) - 1.0).abs() < 1e-9);
    }
}
