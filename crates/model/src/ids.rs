//! Strongly-typed identifiers for nodes, links and electrical panels.
//!
//! All identifiers are dense `u32` indices into the owning [`Network`]'s
//! internal vectors, which keeps lookups allocation-free and lets the
//! routing/congestion-control layers use plain `Vec`s indexed by id instead
//! of hash maps on hot paths.
//!
//! [`Network`]: crate::graph::Network

use std::fmt;

/// Identifier of a node (a station of the local network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a *directed* link of the multigraph.
///
/// An undirected physical link (e.g. a WiFi association) is represented by
/// two directed links, one per direction; both occupy the same medium and
/// therefore always belong to each other's interference domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Identifier of an electrical panel (IEEE 1901 central coordinator).
///
/// Two nodes can form a PLC link only when they are attached to the same
/// panel (§5.1: "a PLC link exists only when two nodes are connected to the
/// same central coordinator").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PanelId(pub u32);

impl NodeId {
    /// Index into node-indexed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Index into link-indexed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PanelId {
    /// Index into panel-indexed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for PanelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(12).to_string(), "l12");
        assert_eq!(PanelId(0).to_string(), "p0");
    }

    #[test]
    fn ids_index_round_trips() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(LinkId(0).index(), 0);
        assert_eq!(PanelId(2).index(), 2);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(5) > LinkId(4));
    }
}
