#![forbid(unsafe_code)]
//! # empower-model
//!
//! Network-model substrate for the EMPoWER reproduction (Henri et al.,
//! CoNEXT 2016, §2).
//!
//! A hybrid local network with `N` nodes and `K` technologies is modelled as
//! a multigraph `G(V, {E_1, …, E_K})`: the same pair of nodes may be joined
//! by several links, one per technology. Everything the EMPoWER algorithms
//! consume is expressed in terms of
//!
//! * link **capacities** `c_l` (equivalently costs `d_l = 1 / c_l`),
//! * **interference domains** `I_l` — the set of links that cannot transmit
//!   simultaneously with `l` (including `l` itself), and
//! * link **airtimes** `µ_l = x_l · d_l` (Eq. (1) of the paper).
//!
//! This crate provides those primitives, plus the topology generators used by
//! the evaluation (§5.1 residential/enterprise, the worked examples of
//! Figs. 1 and 3, and the 22-node testbed floor of §6) and the capacity
//! samplers/estimators that stand in for the paper's 802.11n-MCS / HomePlug-
//! BLE measurements.

pub mod airtime;
pub mod capacity;
pub mod estimate;
pub mod geometry;
pub mod graph;
pub mod ids;
pub mod interference;
pub mod link;
pub mod medium;
pub mod node;
pub mod path;
pub mod rng;
pub mod shard;
pub mod topology;

pub use airtime::{airtime_of, lemma1_rmax, AirtimeLedger};
pub use capacity::{CapacityModel, PlcCapacityModel, WifiCapacityModel};
pub use estimate::{CapacityEstimate, CapacityEstimator, EstimationMode};
pub use geometry::{Point, Rect};
pub use graph::{Network, NetworkBuilder};
pub use ids::{LinkId, NodeId, PanelId};
pub use interference::{CarrierSense, InterferenceMap, InterferenceModel, SharedMedium};
pub use link::Link;
pub use medium::Medium;
pub use node::Node;
pub use path::{Path, PathIncidence};
pub use shard::{extract_view, plan_shards, CouplingSpec, ShardPlan, ShardView, ViewScratch};
