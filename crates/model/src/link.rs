//! Directed links of the multigraph.

use crate::ids::{LinkId, NodeId};
use crate::medium::Medium;

/// Capacities below this many Mbps are treated as zero (the link is
/// considered absent). The `update(P, G)` procedure of §3.2 drives link
/// capacities to exactly zero at path bottlenecks, and floating-point
/// residue must not resurrect them.
pub const CAPACITY_EPSILON_MBPS: f64 = 1e-9;

/// A directed link `from → to` on a given medium.
///
/// The paper defines a link as present whenever its two endpoints can
/// communicate with nonzero capacity on the corresponding technology. We
/// store `c_l` in Mbps; the link cost is `d_l = 1 / c_l` (seconds of airtime
/// per megabit), equivalent to the ETT metric up to a constant factor (§3.1).
#[derive(Debug, Clone)]
pub struct Link {
    /// Dense identifier, equal to the link's position in [`Network::links`].
    ///
    /// [`Network::links`]: crate::graph::Network::links
    pub id: LinkId,
    pub from: NodeId,
    pub to: NodeId,
    pub medium: Medium,
    /// Capacity `c_l` in Mbps.
    pub capacity_mbps: f64,
    /// The opposite-direction twin of this link, if the physical link is
    /// bidirectional (always the case for the generated topologies).
    pub reverse: Option<LinkId>,
}

impl Link {
    /// Link cost `d_l = 1 / c_l` (airtime per unit of traffic, in
    /// seconds-per-megabit when capacity is in Mbps).
    ///
    /// Returns `f64::INFINITY` for a dead link, which naturally excludes it
    /// from shortest-path computations and makes Lemma 1 rates collapse to
    /// zero.
    pub fn cost(&self) -> f64 {
        if self.is_alive() {
            1.0 / self.capacity_mbps
        } else {
            f64::INFINITY
        }
    }

    /// True if the link still has usable capacity.
    pub fn is_alive(&self) -> bool {
        self.capacity_mbps > CAPACITY_EPSILON_MBPS
    }

    /// The time, in seconds, this link needs to carry `bits` bits — used by
    /// the packet-level MAC.
    pub fn tx_time_secs(&self, bits: u64) -> f64 {
        debug_assert!(self.is_alive());
        bits as f64 / (self.capacity_mbps * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(cap: f64) -> Link {
        Link {
            id: LinkId(0),
            from: NodeId(0),
            to: NodeId(1),
            medium: Medium::WIFI1,
            capacity_mbps: cap,
            reverse: None,
        }
    }

    #[test]
    fn cost_is_inverse_capacity() {
        assert!((link(20.0).cost() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn dead_links_have_infinite_cost() {
        assert_eq!(link(0.0).cost(), f64::INFINITY);
        assert_eq!(link(1e-12).cost(), f64::INFINITY);
        assert!(!link(0.0).is_alive());
    }

    #[test]
    fn tx_time_scales_with_size() {
        let l = link(100.0); // 100 Mbps
        let t = l.tx_time_secs(1500 * 8); // one 1500 B frame
        assert!((t - 0.00012).abs() < 1e-9);
        assert!((l.tx_time_secs(3000 * 8) - 2.0 * t).abs() < 1e-12);
    }
}
