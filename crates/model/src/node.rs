//! Network nodes (stations).

use crate::geometry::Point;
use crate::ids::{NodeId, PanelId};
use crate::medium::Medium;

/// A station of the hybrid local network.
///
/// A node owns one *interface* per medium it supports; the multigraph of §2
/// is equivalently a graph over interfaces (the "virtual graph" used by the
/// routing layer to make channel-switching costs Dijkstra-compatible).
#[derive(Debug, Clone)]
pub struct Node {
    /// Dense identifier, equal to the node's position in [`Network::nodes`].
    ///
    /// [`Network::nodes`]: crate::graph::Network::nodes
    pub id: NodeId,
    /// Position on the floor plan, metres.
    pub pos: Point,
    /// Mediums this node has an interface for (e.g. `[WIFI1]` for a laptop,
    /// `[WIFI1, WIFI2, Plc]` for a testbed router).
    pub mediums: Vec<Medium>,
    /// Electrical panel the node is wired to, if it has a PLC interface.
    pub panel: Option<PanelId>,
    /// Free-form label for traces ("gateway", "extender", …).
    pub label: String,
}

impl Node {
    /// True if the node has an interface on `medium`.
    pub fn supports(&self, medium: Medium) -> bool {
        self.mediums.contains(&medium)
    }

    /// True if the node has any WiFi interface.
    pub fn has_wifi(&self) -> bool {
        self.mediums.iter().any(|m| m.is_wifi())
    }

    /// True if the node has a PLC interface.
    pub fn has_plc(&self) -> bool {
        self.mediums.iter().any(|m| m.is_plc())
    }

    /// True if the node is hybrid (at least two distinct mediums).
    pub fn is_hybrid(&self) -> bool {
        self.mediums.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(mediums: Vec<Medium>) -> Node {
        Node {
            id: NodeId(0),
            pos: Point::new(0.0, 0.0),
            mediums,
            panel: None,
            label: String::new(),
        }
    }

    #[test]
    fn supports_checks_exact_medium() {
        let n = node(vec![Medium::WIFI1, Medium::Plc]);
        assert!(n.supports(Medium::WIFI1));
        assert!(!n.supports(Medium::WIFI2));
        assert!(n.supports(Medium::Plc));
    }

    #[test]
    fn hybrid_requires_two_mediums() {
        assert!(node(vec![Medium::WIFI1, Medium::Plc]).is_hybrid());
        assert!(!node(vec![Medium::WIFI1]).is_hybrid());
    }

    #[test]
    fn wifi_and_plc_predicates() {
        let n = node(vec![Medium::WIFI2]);
        assert!(n.has_wifi());
        assert!(!n.has_plc());
    }
}
