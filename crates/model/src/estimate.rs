//! Link-capacity estimation (§6.1).
//!
//! On the real testbed, capacities are estimated from modulation information
//! in the frame headers: the 802.11n MCS index for WiFi and the bit-loading
//! estimate (BLE) for PLC. The paper distinguishes two regimes:
//!
//! * **idle**: low-rate probes (~1 kB/s) give an estimate that is "precise
//!   although not perfect" and reacts to changes within seconds — good
//!   enough for routing, which only needs rough capacities;
//! * **active**: when a flow is running, the data traffic itself yields an
//!   extremely precise estimate that tracks capacity changes within ~100 ms —
//!   required by the congestion controller, for which an overestimated
//!   capacity means congestion.
//!
//! [`CapacityEstimator`] reproduces those two regimes with configurable
//! multiplicative noise and reaction latency, so experiments can study the
//! effect of estimation error (one of the explanations offered in §6.3 for
//! EMPoWER occasionally trailing the brute-force single path).

use crate::rng::Rng;

use crate::rng::normal;

/// Which traffic is available to estimate from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMode {
    /// Only the ~1 kB/s probes: noisier, slower to react.
    Idle,
    /// A live flow crosses the link: near-perfect, fast.
    Active,
}

/// One estimated capacity value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEstimate {
    /// Estimated capacity, Mbps.
    pub capacity_mbps: f64,
    /// The regime the estimate was produced in.
    pub mode: EstimationMode,
}

/// Noisy, lagging view of a true link capacity.
#[derive(Debug, Clone)]
pub struct CapacityEstimator {
    /// Relative standard deviation of the idle (probe-based) estimate.
    pub idle_rel_std: f64,
    /// Relative standard deviation of the active (traffic-based) estimate.
    pub active_rel_std: f64,
    /// Reaction delay of the idle estimator, seconds ("a few seconds").
    pub idle_reaction_secs: f64,
    /// Reaction delay of the active estimator, seconds ("order of hundred of
    /// milliseconds").
    pub active_reaction_secs: f64,
    /// Last capacity the estimator has caught up with, and when.
    tracked_capacity: f64,
    tracked_since: f64,
    /// Pending target after a capacity change, if still within the lag.
    pending: Option<(f64, f64)>,
}

impl Default for CapacityEstimator {
    fn default() -> Self {
        CapacityEstimator {
            idle_rel_std: 0.08,
            active_rel_std: 0.01,
            idle_reaction_secs: 3.0,
            active_reaction_secs: 0.1,
            tracked_capacity: 0.0,
            tracked_since: 0.0,
            pending: None,
        }
    }
}

impl CapacityEstimator {
    /// Creates an estimator locked onto `capacity` at time 0.
    pub fn new(capacity_mbps: f64) -> Self {
        CapacityEstimator { tracked_capacity: capacity_mbps, ..Default::default() }
    }

    /// Reports a change of the true capacity at time `now` (seconds). The
    /// estimator keeps returning the old value until the mode-dependent
    /// reaction delay has elapsed.
    pub fn capacity_changed(&mut self, now: f64, new_capacity_mbps: f64) {
        self.pending = Some((new_capacity_mbps, now));
    }

    /// The estimate available at time `now` under `mode`.
    pub fn estimate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        now: f64,
        mode: EstimationMode,
    ) -> CapacityEstimate {
        let lag = match mode {
            EstimationMode::Idle => self.idle_reaction_secs,
            EstimationMode::Active => self.active_reaction_secs,
        };
        if let Some((target, since)) = self.pending {
            if now - since >= lag {
                self.tracked_capacity = target;
                self.tracked_since = since + lag;
                self.pending = None;
            }
        }
        let rel_std = match mode {
            EstimationMode::Idle => self.idle_rel_std,
            EstimationMode::Active => self.active_rel_std,
        };
        let noise = normal(rng, 1.0, rel_std).max(0.0);
        CapacityEstimate { capacity_mbps: self.tracked_capacity * noise, mode }
    }

    /// The capacity the estimator is currently locked onto (no noise).
    pub fn tracked(&self) -> f64 {
        self.tracked_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;
    use crate::rng::StdRng;

    #[test]
    fn active_estimates_are_tighter_than_idle() {
        let mut est = CapacityEstimator::new(50.0);
        let mut rng = StdRng::seed_from_u64(1);
        let spread = |est: &mut CapacityEstimator, rng: &mut StdRng, mode| {
            let xs: Vec<f64> =
                (0..3000).map(|_| est.estimate(rng, 0.0, mode).capacity_mbps).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let idle = spread(&mut est, &mut rng, EstimationMode::Idle);
        let active = spread(&mut est, &mut rng, EstimationMode::Active);
        assert!(idle > 3.0 * active, "idle {idle} active {active}");
    }

    #[test]
    fn estimates_center_on_true_capacity() {
        let mut est = CapacityEstimator::new(80.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..5000)
            .map(|_| est.estimate(&mut rng, 0.0, EstimationMode::Idle).capacity_mbps)
            .sum::<f64>()
            / 5000.0;
        assert!((mean - 80.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn active_mode_reacts_within_lag() {
        let mut est = CapacityEstimator::new(50.0);
        let mut rng = StdRng::seed_from_u64(3);
        est.capacity_changed(10.0, 20.0);
        // Before the 100 ms active lag: still near 50.
        let before = est.estimate(&mut rng, 10.05, EstimationMode::Active).capacity_mbps;
        assert!((before - 50.0).abs() < 5.0, "{before}");
        // After: near 20.
        let after = est.estimate(&mut rng, 10.2, EstimationMode::Active).capacity_mbps;
        assert!((after - 20.0).abs() < 2.0, "{after}");
    }

    #[test]
    fn idle_mode_reacts_slower() {
        let mut est = CapacityEstimator::new(50.0);
        let mut rng = StdRng::seed_from_u64(4);
        est.capacity_changed(0.0, 10.0);
        let at_1s = est.estimate(&mut rng, 1.0, EstimationMode::Idle).capacity_mbps;
        assert!((at_1s - 50.0).abs() < 15.0, "{at_1s}"); // still old value
        let at_5s = est.estimate(&mut rng, 5.0, EstimationMode::Idle).capacity_mbps;
        assert!((at_5s - 10.0).abs() < 4.0, "{at_5s}");
    }

    #[test]
    fn estimates_never_go_negative() {
        let mut est = CapacityEstimator::new(1.0);
        est.idle_rel_std = 2.0; // absurd noise
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            assert!(est.estimate(&mut rng, 0.0, EstimationMode::Idle).capacity_mbps >= 0.0);
        }
    }
}
