//! Interference-domain sharding: partitions a network's links into
//! *atoms* — closed groups that never interact during a simulation — and
//! packs atoms onto a bounded number of shards.
//!
//! The sharded simulator (`empower-sim`) runs each shard on its own
//! worker thread. For the merged result to be byte-identical to the
//! single-threaded engine, everything that can couple two links at run
//! time must land in the same atom:
//!
//! * **R1 — interference**: all links of an interference domain
//!   ([`InterferenceMap::domain`]) share an atom; airtime feasibility
//!   (Eq. (1)) is computed over whole domains.
//! * **R2 — broadcast aggregation**: links leaving the same node on the
//!   same medium share an atom; the distributed controller's broadcast
//!   plan (§4.2) aggregates per `(sender, medium)`. Note this is *not*
//!   "all links touching a node" — an Ethernet riser and a WiFi access
//!   link at the same router stay separable.
//! * **R3 — flow closure**: all links any flow can ever use — every
//!   route in its multipath split, including replacement routes
//!   scheduled for later reroutes and, for TCP flows, the receiver's
//!   egress links (ACK-clocking couples them) — share an atom. Callers
//!   pass this closure in [`CouplingSpec::flow_links`].
//! * **R4 — fault adjacency**: links adjacent to a node with a scheduled
//!   [`NodeChange`]-style fault share an atom, so the fault's capacity
//!   edits stay within one shard.
//!
//! Under these rules no event in one atom can observe state in another,
//! so shards need no hand-off synchronisation at all (the conservative
//! lookahead is degenerate: the horizon is infinite). [`ShardPlan::handoff_pairs`]
//! reports the inter-atom link adjacencies that *would* need hand-off
//! events if a future PR relaxes R3 to allow cross-shard routes.
//!
//! Everything here is deterministic: atom ids are assigned by first
//! sight in ascending link-id order, and packing is first-fit-descending
//! with fixed tie-breaks, so the same inputs always yield the same
//! [`ShardPlan`] (a property the determinism gates rely on).

use std::collections::BTreeMap;

use crate::graph::{Network, NetworkBuilder};
use crate::ids::{LinkId, NodeId};
use crate::interference::InterferenceMap;
use crate::path::Path;

/// Run-time coupling the network graph alone cannot show: which links
/// each flow can ever touch, and which nodes have scheduled faults.
#[derive(Debug, Clone, Default)]
pub struct CouplingSpec {
    /// Per flow, the closure of links it may use over the whole run
    /// (all routes of all scheduled route sets; for TCP, the receiver's
    /// egress links too). Order is the flow registration order.
    pub flow_links: Vec<Vec<LinkId>>,
    /// Nodes with scheduled capacity faults (R4).
    pub fault_nodes: Vec<NodeId>,
}

/// A deterministic partition of links into atoms and atoms onto shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Atom id of every link, indexed by [`LinkId::index`].
    pub atom_of_link: Vec<u32>,
    /// Number of atoms.
    pub atom_count: u32,
    /// Shard id of every atom.
    pub shard_of_atom: Vec<u32>,
    /// Number of shards (≤ the requested count; never more than needed).
    pub shards: u32,
    /// Packing weight of every atom (links + 16 × flows).
    pub atom_weight: Vec<u64>,
}

impl ShardPlan {
    /// Shard id of a link.
    pub fn shard_of_link(&self, l: LinkId) -> u32 {
        self.shard_of_atom[self.atom_of_link[l.index()] as usize]
    }

    /// Directed link pairs `(a, b)` with `a.to == b.from` whose atoms
    /// differ — the places where traffic *could* hand off between atoms
    /// if flows were allowed to cross them. Sorted by `(a, b)` link id.
    pub fn handoff_pairs(&self, net: &Network) -> Vec<(LinkId, LinkId)> {
        let mut pairs = Vec::new();
        for a in net.links() {
            let atom_a = self.atom_of_link[a.id.index()];
            for b in net.out_links(a.to) {
                if self.atom_of_link[b.id.index()] != atom_a {
                    pairs.push((a.id, b.id));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }
}

/// Union-find over link indices with path halving.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Unions by *smaller root wins*, keeping roots stable under
    /// insertion order (determinism matters more than rank here; link
    /// counts are small).
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Builds a [`ShardPlan`] for `net` under coupling rules R1–R4, packing
/// atoms onto at most `shards` shards (clamped to ≥ 1).
pub fn plan_shards(
    net: &Network,
    imap: &InterferenceMap,
    spec: &CouplingSpec,
    shards: u32,
) -> ShardPlan {
    let n = net.link_count();
    assert_eq!(imap.link_count(), n, "interference map built for a different network");
    let mut dsu = Dsu::new(n);

    // R1: interference domains are atomic.
    for l in net.links() {
        for &m in imap.domain(l.id) {
            dsu.union(l.id.index() as u32, m.index() as u32);
        }
    }

    // R2: per-(sender, medium) broadcast aggregation.
    let mut first_by_sender: BTreeMap<(u32, u16), u32> = BTreeMap::new();
    for l in net.links() {
        let key = (l.from.0, l.medium.tag());
        match first_by_sender.get(&key) {
            Some(&first) => dsu.union(first, l.id.index() as u32),
            None => {
                first_by_sender.insert(key, l.id.index() as u32);
            }
        }
    }

    // R3: each flow's link closure is atomic.
    for links in &spec.flow_links {
        if let Some((&first, rest)) = links.split_first() {
            for &l in rest {
                dsu.union(first.index() as u32, l.index() as u32);
            }
        }
    }

    // R4: a faulted node's adjacent links are atomic.
    for &node in &spec.fault_nodes {
        let mut adj = net.out_links(node).chain(net.in_links(node)).map(|l| l.id.index() as u32);
        if let Some(first) = adj.next() {
            for l in adj {
                dsu.union(first, l);
            }
        }
    }

    // Number atoms by first sight in ascending link-id order.
    let mut atom_of_root: BTreeMap<u32, u32> = BTreeMap::new();
    let mut atom_of_link = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let root = dsu.find(i);
        let next = atom_of_root.len() as u32;
        let atom = *atom_of_root.entry(root).or_insert(next);
        atom_of_link.push(atom);
    }
    let atom_count = atom_of_root.len() as u32;

    // Weight = links + 16 × flows: event traffic is dominated by flow
    // scheduling, so flows count much more than idle links.
    let mut atom_weight = vec![0u64; atom_count as usize];
    for &a in &atom_of_link {
        atom_weight[a as usize] += 1;
    }
    for links in &spec.flow_links {
        if let Some(&first) = links.first() {
            atom_weight[atom_of_link[first.index()] as usize] += 16;
        }
    }

    // First-fit-descending: heaviest atom first (tie: lower atom id),
    // onto the least-loaded shard (tie: lowest shard index).
    let shards = shards.max(1).min(atom_count.max(1));
    let mut order: Vec<u32> = (0..atom_count).collect();
    order.sort_by_key(|&a| (std::cmp::Reverse(atom_weight[a as usize]), a));
    let mut load = vec![0u64; shards as usize];
    let mut shard_of_atom = vec![0u32; atom_count as usize];
    for a in order {
        let mut best = 0usize;
        for (s, &l) in load.iter().enumerate() {
            if l < load[best] {
                best = s;
            }
        }
        shard_of_atom[a as usize] = best as u32;
        load[best] += atom_weight[a as usize];
    }

    ShardPlan { atom_of_link, atom_count, shard_of_atom, shards, atom_weight }
}

/// Reusable scratch for [`extract_view`]: dense global→local index maps
/// and the kept-link list, so a worker extracting views run after run
/// never reallocates them.
#[derive(Debug, Default)]
pub struct ViewScratch {
    /// `local_link[g] = local id` or `u32::MAX` (dropped). Valid only
    /// during one extraction.
    local_link: Vec<u32>,
    local_node: Vec<u32>,
    kept: Vec<LinkId>,
}

/// A shard-local slice of a network: the subgraph induced by the shard's
/// *active* atoms, with its own dense [`LinkId`]/[`NodeId`] space and a
/// projected interference map.
///
/// Local ids are assigned in ascending global order, so the remap is
/// monotone: any iteration the engine performs in ascending local order
/// visits the same links/nodes in the same relative order as the
/// single-threaded engine does in ascending global order — the property
/// that keeps every floating-point sum in the control plane bit-identical
/// after restriction.
///
/// [`Link::reverse`] is deliberately left `None` in the view: the two
/// directions of an Ethernet duplex can land in *different* atoms (R2
/// groups per sender and Ethernet never interferes), and nothing in the
/// engine reads the back-pointer.
///
/// [`Link::reverse`]: crate::link::Link::reverse
#[derive(Debug, Clone)]
pub struct ShardView {
    /// The shard's subnetwork, dense local ids.
    pub net: Network,
    /// The interference map projected onto the subnetwork.
    pub imap: InterferenceMap,
    /// Local link id → global link id, strictly ascending.
    pub link_to_global: Vec<LinkId>,
    /// Local node id → global node id, strictly ascending.
    pub node_to_global: Vec<NodeId>,
}

impl ShardView {
    /// Local id of a global link, if the view contains it.
    pub fn local_link(&self, g: LinkId) -> Option<LinkId> {
        self.link_to_global.binary_search(&g).ok().map(|i| LinkId(i as u32))
    }

    /// Local id of a global node, if the view contains it.
    pub fn local_node(&self, g: NodeId) -> Option<NodeId> {
        self.node_to_global.binary_search(&g).ok().map(|i| NodeId(i as u32))
    }

    /// Global id of a local link.
    pub fn global_link(&self, l: LinkId) -> LinkId {
        self.link_to_global[l.index()]
    }

    /// Global id of a local node.
    pub fn global_node(&self, n: NodeId) -> NodeId {
        self.node_to_global[n.index()]
    }

    /// Rewrites a global-id path into local ids; `None` if any hop lies
    /// outside the view. A fully contained path stays valid by
    /// construction (the remap preserves endpoints), so no re-validation
    /// is needed.
    pub fn localize_path(&self, p: &Path) -> Option<Path> {
        let links: Option<Vec<LinkId>> = p.links().iter().map(|&l| self.local_link(l)).collect();
        Some(Path::from_links_unchecked(links?))
    }
}

/// Extracts `shard`'s view: the subgraph of links whose atom is packed
/// onto `shard` *and* flagged in `active_atom` (atoms hosting no flow and
/// no scheduled op contribute nothing to any run — zero demand, zero
/// violations — so they are simply left out).
pub fn extract_view(
    net: &Network,
    imap: &InterferenceMap,
    plan: &ShardPlan,
    shard: u32,
    active_atom: &[bool],
    scratch: &mut ViewScratch,
) -> ShardView {
    debug_assert_eq!(plan.atom_of_link.len(), net.link_count());
    debug_assert_eq!(active_atom.len(), plan.atom_count as usize);
    scratch.local_link.clear();
    scratch.local_link.resize(net.link_count(), u32::MAX);
    scratch.local_node.clear();
    scratch.local_node.resize(net.node_count(), u32::MAX);
    scratch.kept.clear();

    for l in net.links() {
        let atom = plan.atom_of_link[l.id.index()] as usize;
        if plan.shard_of_atom[atom] == shard && active_atom[atom] {
            scratch.local_link[l.id.index()] = scratch.kept.len() as u32;
            scratch.kept.push(l.id);
        }
    }

    // Mark endpoint nodes, then number them in ascending global order.
    for &g in &scratch.kept {
        let l = net.link(g);
        scratch.local_node[l.from.index()] = 0;
        scratch.local_node[l.to.index()] = 0;
    }
    let mut node_to_global = Vec::new();
    for i in 0..net.node_count() {
        if scratch.local_node[i] == 0 {
            scratch.local_node[i] = node_to_global.len() as u32;
            node_to_global.push(NodeId(i as u32));
        } else {
            scratch.local_node[i] = u32::MAX;
        }
    }

    let mut b = NetworkBuilder::new();
    for &g in &node_to_global {
        let n = net.node(g);
        b.add_labeled_node(n.pos, n.mediums.clone(), n.panel, n.label.clone());
    }
    for &g in &scratch.kept {
        let l = net.link(g);
        b.add_link(
            NodeId(scratch.local_node[l.from.index()]),
            NodeId(scratch.local_node[l.to.index()]),
            l.medium,
            l.capacity_mbps,
        );
    }

    ShardView {
        net: b.build(),
        imap: imap.restrict(&scratch.kept, &scratch.local_link),
        link_to_global: scratch.kept.clone(),
        node_to_global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::CarrierSense;
    use crate::medium::Medium;
    use crate::rng::{Rng, SeedableRng, StdRng};
    use crate::topology::campus::{campus, CampusConfig, CampusTopology};

    fn gen(seed: u64) -> CampusTopology {
        let mut rng = StdRng::seed_from_u64(seed);
        campus(&mut rng, &CampusConfig::new(2, 3, 4))
    }

    /// Intra-floor hybrid flows: every client's full closure to its
    /// router (WiFi and, where present, PLC).
    fn intra_floor_flows(t: &CampusTopology) -> Vec<Vec<LinkId>> {
        let mut flows = Vec::new();
        for fl in &t.floors {
            for &c in &fl.clients {
                let links: Vec<LinkId> =
                    t.net.out_links(c).filter(|l| l.to == fl.router).map(|l| l.id).collect();
                assert!(!links.is_empty());
                flows.push(links);
            }
        }
        flows
    }

    fn plan_for(seed: u64, shards: u32) -> (CampusTopology, CouplingSpec, ShardPlan) {
        let t = gen(seed);
        let imap = InterferenceMap::build(&t.net, &CarrierSense::default());
        let spec = CouplingSpec { flow_links: intra_floor_flows(&t), fault_nodes: Vec::new() };
        let plan = plan_shards(&t.net, &imap, &spec, shards);
        (t, spec, plan)
    }

    #[test]
    fn every_link_lands_in_exactly_one_shard_across_50_topologies() {
        for seed in 0..50 {
            let (t, _, plan) = plan_for(seed, 4);
            assert_eq!(plan.atom_of_link.len(), t.net.link_count());
            for l in t.net.links() {
                let atom = plan.atom_of_link[l.id.index()];
                assert!(atom < plan.atom_count);
                assert!(plan.shard_of_atom[atom as usize] < plan.shards);
            }
            assert!(plan.shards <= 4);
        }
    }

    #[test]
    fn interference_domains_never_span_atoms() {
        for seed in 0..50 {
            let (t, _, plan) = plan_for(seed, 4);
            let imap = InterferenceMap::build(&t.net, &CarrierSense::default());
            for l in t.net.links() {
                let atom = plan.atom_of_link[l.id.index()];
                for &m in imap.domain(l.id) {
                    assert_eq!(plan.atom_of_link[m.index()], atom);
                }
            }
        }
    }

    #[test]
    fn flow_closures_and_sender_groups_stay_within_an_atom() {
        for seed in 0..50 {
            let (t, spec, plan) = plan_for(seed, 4);
            for links in &spec.flow_links {
                let atom = plan.atom_of_link[links[0].index()];
                for &l in links {
                    assert_eq!(plan.atom_of_link[l.index()], atom);
                }
            }
            // R2: same sender, same medium → same atom.
            for a in t.net.links() {
                for b in t.net.links() {
                    if a.from == b.from && a.medium.tag() == b.medium.tag() {
                        assert_eq!(
                            plan.atom_of_link[a.id.index()],
                            plan.atom_of_link[b.id.index()]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plans_are_deterministic_for_a_fixed_seed() {
        for seed in 0..50 {
            let (_, _, a) = plan_for(seed, 4);
            let (_, _, b) = plan_for(seed, 4);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn handoff_pairs_are_discovered_symmetrically() {
        for seed in (0..50).step_by(7) {
            let (t, _, plan) = plan_for(seed, 4);
            let forward = plan.handoff_pairs(&t.net);
            // Reverse scan: walk in-links of every link's source.
            let mut reverse = Vec::new();
            for b in t.net.links() {
                let atom_b = plan.atom_of_link[b.id.index()];
                for a in t.net.in_links(b.from) {
                    if plan.atom_of_link[a.id.index()] != atom_b {
                        reverse.push((a.id, b.id));
                    }
                }
            }
            reverse.sort_unstable();
            assert_eq!(forward, reverse);
        }
    }

    #[test]
    fn campus_floors_become_separate_atoms() {
        let (t, _, plan) = plan_for(11, 4);
        // A floor's shared-medium links may split into a WiFi atom and a
        // PLC atom (hybrid flows usually bridge them), but no atom ever
        // spans two floors.
        let mut atoms_by_floor: Vec<std::collections::BTreeSet<u32>> = Vec::new();
        for fl in &t.floors {
            let atoms: std::collections::BTreeSet<u32> = t
                .net
                .out_links(fl.router)
                .chain(t.net.in_links(fl.router))
                .filter(|l| l.medium != Medium::Ethernet)
                .map(|l| plan.atom_of_link[l.id.index()])
                .collect();
            assert!(!atoms.is_empty());
            assert!(atoms.len() <= 2, "more than wifi+plc atoms on one floor: {atoms:?}");
            atoms_by_floor.push(atoms);
        }
        for (i, a) in atoms_by_floor.iter().enumerate() {
            for b in &atoms_by_floor[i + 1..] {
                assert!(a.is_disjoint(b), "an atom spans two floors");
            }
        }
    }

    #[test]
    fn fault_nodes_pull_their_links_together() {
        let t = gen(3);
        let imap = InterferenceMap::build(&t.net, &CarrierSense::default());
        // Fault the first floor router: its Ethernet uplink must join the
        // floor's wireless atom.
        let router = t.floors[0].router;
        let spec = CouplingSpec { flow_links: Vec::new(), fault_nodes: vec![router] };
        let plan = plan_shards(&t.net, &imap, &spec, 4);
        let atoms: std::collections::BTreeSet<u32> = t
            .net
            .out_links(router)
            .chain(t.net.in_links(router))
            .map(|l| plan.atom_of_link[l.id.index()])
            .collect();
        assert_eq!(atoms.len(), 1);
    }

    #[test]
    fn packing_balances_weights_first_fit_descending() {
        let (_, _, plan) = plan_for(19, 4);
        let mut load = vec![0u64; plan.shards as usize];
        for (a, &s) in plan.shard_of_atom.iter().enumerate() {
            load[s as usize] += plan.atom_weight[a];
        }
        let max = *load.iter().max().unwrap_or(&0);
        let min = *load.iter().min().unwrap_or(&0);
        // 6 floor atoms of similar weight over 4 shards: no shard should
        // carry more than two floors' worth.
        let heaviest = *plan.atom_weight.iter().max().unwrap_or(&0);
        assert!(max - min <= 2 * heaviest, "load spread {load:?}");
    }

    #[test]
    fn shard_count_is_clamped_to_atom_count() {
        let (_, _, plan) = plan_for(23, 64);
        assert!(plan.shards <= plan.atom_count);
        let (_, _, plan0) = plan_for(23, 0);
        assert_eq!(plan0.shards, 1);
    }

    #[test]
    fn random_coupling_spec_never_breaks_invariants() {
        // Fuzz R3/R4 with arbitrary link subsets and fault nodes.
        let t = gen(29);
        let imap = InterferenceMap::build(&t.net, &CarrierSense::default());
        let mut rng = StdRng::seed_from_u64(4242);
        for _ in 0..20 {
            let n_flows = rng.gen_range(0..6u32);
            let flow_links: Vec<Vec<LinkId>> = (0..n_flows)
                .map(|_| {
                    (0..rng.gen_range(1..5u32))
                        .map(|_| LinkId(rng.gen_range(0..t.net.link_count() as u32)))
                        .collect()
                })
                .collect();
            let fault_nodes: Vec<NodeId> = (0..rng.gen_range(0..3u32))
                .map(|_| NodeId(rng.gen_range(0..t.net.node_count() as u32)))
                .collect();
            let spec = CouplingSpec { flow_links, fault_nodes };
            let plan = plan_shards(&t.net, &imap, &spec, 3);
            for links in &spec.flow_links {
                let atom = plan.atom_of_link[links[0].index()];
                assert!(links.iter().all(|l| plan.atom_of_link[l.index()] == atom));
            }
            for &node in &spec.fault_nodes {
                let atoms: std::collections::BTreeSet<u32> = t
                    .net
                    .out_links(node)
                    .chain(t.net.in_links(node))
                    .map(|l| plan.atom_of_link[l.id.index()])
                    .collect();
                assert!(atoms.len() <= 1);
            }
        }
    }

    #[test]
    fn view_extraction_round_trips_across_50_topologies() {
        let mut scratch = ViewScratch::default();
        for seed in 0..50 {
            let (t, spec, plan) = plan_for(seed, 4);
            // Active atoms = those hosting a flow closure, as the sharded
            // simulator marks them.
            let mut active = vec![false; plan.atom_count as usize];
            for links in &spec.flow_links {
                active[plan.atom_of_link[links[0].index()] as usize] = true;
            }
            let mut covered = vec![0u32; t.net.link_count()];
            for shard in 0..plan.shards {
                let v = extract_view(&t.net, &t_imap(&t), &plan, shard, &active, &mut scratch);
                assert_eq!(v.net.link_count(), v.link_to_global.len());
                assert_eq!(v.net.node_count(), v.node_to_global.len());
                assert!(v.link_to_global.windows(2).all(|w| w[0] < w[1]));
                assert!(v.node_to_global.windows(2).all(|w| w[0] < w[1]));
                for l in v.net.links() {
                    let g = v.global_link(l.id);
                    // No view contains an out-of-atom element...
                    let atom = plan.atom_of_link[g.index()] as usize;
                    assert_eq!(plan.shard_of_atom[atom], shard);
                    assert!(active[atom]);
                    covered[g.index()] += 1;
                    // ...and every local link maps back to its global id
                    // with identical attributes and endpoints.
                    assert_eq!(v.local_link(g), Some(l.id));
                    let gl = t.net.link(g);
                    assert_eq!(l.medium, gl.medium);
                    assert_eq!(l.capacity_mbps, gl.capacity_mbps);
                    assert_eq!(v.global_node(l.from), gl.from);
                    assert_eq!(v.global_node(l.to), gl.to);
                }
                for n in 0..v.net.node_count() {
                    let local = NodeId(n as u32);
                    let g = v.global_node(local);
                    assert_eq!(v.local_node(g), Some(local));
                    // Nodes carry their full interface/panel/label state.
                    let (a, b) = (v.net.node(local), t.net.node(g));
                    assert_eq!(a.mediums, b.mediums);
                    assert_eq!(a.panel, b.panel);
                    assert_eq!(a.label, b.label);
                    // Every view node is an endpoint of some view link.
                    assert!(v.net.links().iter().any(|l| l.from == local || l.to == local));
                }
                // The projected interference map is the global map under
                // the remap, domain by domain, in order.
                let imap = t_imap(&t);
                for l in v.net.links() {
                    let global_domain: Vec<LinkId> = imap
                        .domain(v.global_link(l.id))
                        .iter()
                        .map(|&m| v.local_link(m).unwrap())
                        .collect();
                    assert_eq!(v.imap.domain(l.id), &global_domain[..]);
                }
                // Every flow owned by this shard localizes and maps back.
                for links in &spec.flow_links {
                    if plan.shard_of_link(links[0]) != shard {
                        continue;
                    }
                    let p = Path::from_links_unchecked(links.clone());
                    let local = v.localize_path(&p).expect("owned flow must fit its view");
                    let back: Vec<LinkId> =
                        local.links().iter().map(|&l| v.global_link(l)).collect();
                    assert_eq!(&back[..], &links[..]);
                }
            }
            // Views are disjoint and exactly cover the active atoms.
            for l in t.net.links() {
                let atom = plan.atom_of_link[l.id.index()] as usize;
                assert_eq!(covered[l.id.index()], u32::from(active[atom]));
            }
        }
    }

    fn t_imap(t: &CampusTopology) -> InterferenceMap {
        InterferenceMap::build(&t.net, &CarrierSense::default())
    }
}
