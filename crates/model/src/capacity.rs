//! Link-capacity models.
//!
//! The paper samples link capacities "from a distribution close to the
//! capacity distributions measured on our real testbed" (§5.1, detailed in
//! the companion technical report and the Electri-Fi measurement study
//! \[38\]). The measurements are not public, so these models are synthetic
//! stand-ins calibrated to the properties the paper *states and relies on*:
//!
//! * maximum link capacity ≈ 100 Mbps for both 802.11n (40 MHz) and
//!   HomePlug AV 200, so PLC/WiFi and 2-channel WiFi have comparable
//!   aggregate capacity (§6.1);
//! * WiFi connection radius ≈ 35 m, PLC radius ≈ 50 m (§5.1);
//! * WiFi typically beats PLC at short range, while PLC degrades more
//!   gracefully with distance and therefore wins at the edge of WiFi
//!   coverage (§5.2.1) — this is what produces the coverage gains of hybrid
//!   networks;
//! * PLC capacity depends on the *electrical* path, which is only loosely
//!   correlated with Euclidean distance, so PLC capacities carry more
//!   multiplicative randomness.

use crate::rng::Rng;

use crate::link::CAPACITY_EPSILON_MBPS;

/// Samples a capacity (Mbps) for a candidate link of a given length; `None`
/// means the link does not exist at that distance.
pub trait CapacityModel {
    /// Maximum distance at which a link can exist, metres.
    fn connection_radius_m(&self) -> f64;

    /// Samples the capacity for a link of length `distance_m`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, distance_m: f64) -> Option<f64>;
}

/// Distance-driven WiFi capacity: near-maximal at short range, decaying to
/// zero at the connection radius, with mild per-link fading noise.
#[derive(Debug, Clone)]
pub struct WifiCapacityModel {
    /// PHY-limited maximum link capacity, Mbps.
    pub max_capacity_mbps: f64,
    /// Connection radius, metres (35 m in the paper).
    pub radius_m: f64,
    /// Distance-decay exponent: capacity ∝ 1 − (d/R)^decay before noise.
    pub decay: f64,
    /// Lower bound of the uniform fading factor (upper bound is 1.0).
    pub fading_floor: f64,
    /// NLOS blocking: a candidate link of length `d` is absent with
    /// probability `blocking · (d/R)^blocking_exp`. Walls and furniture
    /// kill in-range WiFi links in real buildings — this is what gives
    /// hybrid PLC/WiFi its coverage advantage over multi-channel WiFi
    /// (§5.2.1: PLC "brings connectivity where multi-channel WiFi does
    /// not").
    pub blocking: f64,
    /// Exponent of the blocking-probability growth with distance.
    pub blocking_exp: f64,
}

impl Default for WifiCapacityModel {
    fn default() -> Self {
        WifiCapacityModel {
            max_capacity_mbps: 100.0,
            radius_m: 35.0,
            decay: 2.0,
            fading_floor: 0.65,
            blocking: 0.6,
            blocking_exp: 1.2,
        }
    }
}

impl CapacityModel for WifiCapacityModel {
    fn connection_radius_m(&self) -> f64 {
        self.radius_m
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, distance_m: f64) -> Option<f64> {
        if distance_m > self.radius_m {
            return None;
        }
        let ratio = (distance_m / self.radius_m).clamp(0.0, 1.0);
        // NLOS blocking first: the link may simply not exist.
        let p_block = self.blocking * ratio.powf(self.blocking_exp);
        if rng.gen::<f64>() < p_block {
            return None;
        }
        let base = self.max_capacity_mbps * (1.0 - ratio.powf(self.decay));
        let fading = rng.gen_range(self.fading_floor..=1.0);
        let cap = base * fading;
        (cap > CAPACITY_EPSILON_MBPS).then_some(cap)
    }
}

/// PLC capacity: weak distance dependence, strong per-outlet randomness.
#[derive(Debug, Clone)]
pub struct PlcCapacityModel {
    /// PHY-limited maximum link capacity, Mbps (HPAV 200 tops out around
    /// 100 Mbps of UDP goodput per the Electri-Fi measurements).
    pub max_capacity_mbps: f64,
    /// Connection radius, metres (50 m in the paper).
    pub radius_m: f64,
    /// Linear distance attenuation at the radius (0.45 ⇒ a link at full
    /// radius keeps 55 % of max before noise).
    pub distance_attenuation: f64,
    /// Exponent shaping the multiplicative outlet-quality factor: quality =
    /// u^shape for u ~ U(0,1]; larger values skew toward poor outlets.
    pub quality_shape: f64,
    /// Floor on the outlet-quality factor, keeping alive PLC links usable.
    pub quality_floor: f64,
}

impl Default for PlcCapacityModel {
    fn default() -> Self {
        PlcCapacityModel {
            max_capacity_mbps: 100.0,
            radius_m: 50.0,
            distance_attenuation: 0.45,
            quality_shape: 0.6,
            quality_floor: 0.15,
        }
    }
}

impl CapacityModel for PlcCapacityModel {
    fn connection_radius_m(&self) -> f64 {
        self.radius_m
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, distance_m: f64) -> Option<f64> {
        if distance_m > self.radius_m {
            return None;
        }
        let ratio = (distance_m / self.radius_m).clamp(0.0, 1.0);
        let base = self.max_capacity_mbps * (1.0 - self.distance_attenuation * ratio);
        let u: f64 = rng.gen_range(f64::EPSILON..=1.0);
        let quality = u.powf(self.quality_shape).max(self.quality_floor);
        let cap = base * quality;
        (cap > CAPACITY_EPSILON_MBPS).then_some(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;
    use crate::rng::StdRng;

    fn mean_capacity<M: CapacityModel>(model: &M, d: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000;
        let sum: f64 = (0..n).map(|_| model.sample(&mut rng, d).unwrap_or(0.0)).sum();
        sum / n as f64
    }

    #[test]
    fn wifi_dies_beyond_radius() {
        let model = WifiCapacityModel::default();
        // Near the edge the draw is genuinely probabilistic; seed 1 is a
        // stream where the 34.9 m sample survives the quality roll.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(model.sample(&mut rng, 36.0).is_none());
        assert!(model.sample(&mut rng, 34.9).is_some());
    }

    #[test]
    fn plc_dies_beyond_radius() {
        let model = PlcCapacityModel::default();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(model.sample(&mut rng, 51.0).is_none());
        assert!(model.sample(&mut rng, 49.0).is_some());
    }

    #[test]
    fn wifi_beats_plc_at_short_range_on_average() {
        let wifi = WifiCapacityModel::default();
        let plc = PlcCapacityModel::default();
        assert!(mean_capacity(&wifi, 5.0, 1) > mean_capacity(&plc, 5.0, 2));
    }

    #[test]
    fn plc_beats_wifi_at_long_range_on_average() {
        let wifi = WifiCapacityModel::default();
        let plc = PlcCapacityModel::default();
        assert!(mean_capacity(&plc, 33.0, 3) > mean_capacity(&wifi, 33.0, 4));
    }

    #[test]
    fn wifi_capacity_decreases_with_distance() {
        let wifi = WifiCapacityModel::default();
        let near = mean_capacity(&wifi, 5.0, 5);
        let mid = mean_capacity(&wifi, 20.0, 6);
        let far = mean_capacity(&wifi, 33.0, 7);
        assert!(near > mid && mid > far, "{near} {mid} {far}");
    }

    #[test]
    fn capacities_respect_phy_maximum() {
        let wifi = WifiCapacityModel::default();
        let plc = PlcCapacityModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..2000 {
            if let Some(c) = wifi.sample(&mut rng, 1.0) {
                assert!(c <= 100.0 + 1e-9);
            }
            if let Some(c) = plc.sample(&mut rng, 1.0) {
                assert!(c <= 100.0 + 1e-9);
            }
        }
    }

    #[test]
    fn plc_has_higher_relative_spread_than_wifi() {
        // PLC capacity is dominated by outlet quality, not distance.
        let wifi = WifiCapacityModel::default();
        let plc = PlcCapacityModel::default();
        let spread = |caps: &[f64]| {
            let mean = caps.iter().sum::<f64>() / caps.len() as f64;
            let var = caps.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / caps.len() as f64;
            var.sqrt() / mean
        };
        let mut rng = StdRng::seed_from_u64(9);
        let w: Vec<f64> = (0..3000).filter_map(|_| wifi.sample(&mut rng, 10.0)).collect();
        let p: Vec<f64> = (0..3000).filter_map(|_| plc.sample(&mut rng, 10.0)).collect();
        assert!(spread(&p) > 2.0 * spread(&w));
    }
}
