//! The multigraph `G(V, {E_1, …, E_K})` of §2.

use std::collections::BTreeSet;

use crate::geometry::Point;
use crate::ids::{LinkId, NodeId, PanelId};
use crate::link::Link;
use crate::medium::Medium;
use crate::node::Node;

/// The hybrid-network multigraph.
///
/// Nodes and links are stored densely; [`NodeId`]/[`LinkId`] index straight
/// into `nodes`/`links`. Links are directed; bidirectional physical links are
/// two directed links cross-referencing each other via [`Link::reverse`].
#[derive(Debug, Clone)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing links per node, in insertion order.
    out_adj: Vec<Vec<LinkId>>,
    /// Incoming links per node, in insertion order.
    in_adj: Vec<Vec<LinkId>>,
}

impl Network {
    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed links, indexable by [`LinkId::index`].
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link with the given id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The link with the given id, or `None` if no such link exists —
    /// the non-panicking lookup for ids that may come from another
    /// network instance (e.g. a stale route baseline).
    pub fn try_link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.index())
    }

    /// Outgoing links of `node` (including dead ones; filter with
    /// [`Link::is_alive`] where it matters).
    pub fn out_links(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.out_adj[node.index()].iter().map(|&l| self.link(l))
    }

    /// Incoming links of `node`.
    pub fn in_links(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.in_adj[node.index()].iter().map(|&l| self.link(l))
    }

    /// The distinct mediums present in the network, in a stable order.
    pub fn mediums(&self) -> Vec<Medium> {
        let set: BTreeSet<Medium> = self.links.iter().map(|l| l.medium).collect();
        set.into_iter().collect()
    }

    /// Minimum cost `d_l` over the *alive* egress links of `node`, used as
    /// the non-switching channel-switching cost `w_ns(u) = min_{l∈L(u)} d_l`
    /// of §3.1. Returns `None` when the node has no alive egress link.
    ///
    /// Costs are `capacity⁻¹`-derived and alive links have positive
    /// capacity, so they are never NaN; `total_cmp` makes the ordering
    /// total (and panic-free) regardless.
    pub fn min_egress_cost(&self, node: NodeId) -> Option<f64> {
        self.out_links(node).filter(|l| l.is_alive()).map(|l| l.cost()).min_by(f64::total_cmp)
    }

    /// Sets the capacity of a link (used by `update(P, G)` and by failure
    /// injection). Capacities are clamped at zero.
    pub fn set_capacity(&mut self, id: LinkId, capacity_mbps: f64) {
        self.links[id.index()].capacity_mbps = capacity_mbps.max(0.0);
    }

    /// Euclidean distance between two nodes.
    pub fn node_distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.node(a).pos.distance(self.node(b).pos)
    }

    /// Finds the directed link `from → to` on `medium`, if present.
    pub fn find_link(&self, from: NodeId, to: NodeId, medium: Medium) -> Option<&Link> {
        self.out_links(from).find(|l| l.to == to && l.medium == medium)
    }

    /// Sum of all alive link capacities — a safe upper bound for any
    /// end-to-end rate, used to clamp controller outputs.
    pub fn total_capacity(&self) -> f64 {
        self.links.iter().filter(|l| l.is_alive()).map(|l| l.capacity_mbps).sum()
    }
}

/// Incremental builder for [`Network`].
///
/// ```
/// use empower_model::{Medium, NetworkBuilder, Point};
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_node(Point::new(0.0, 0.0), vec![Medium::WIFI1, Medium::Plc], None);
/// let c = b.add_node(Point::new(10.0, 0.0), vec![Medium::WIFI1], None);
/// b.add_duplex(a, c, Medium::WIFI1, 30.0);
/// let net = b.build();
/// assert_eq!(net.node_count(), 2);
/// assert_eq!(net.link_count(), 2); // one duplex pair
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, pos: Point, mediums: Vec<Medium>, panel: Option<PanelId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, pos, mediums, panel, label: String::new() });
        id
    }

    /// Adds a labelled node and returns its id.
    pub fn add_labeled_node(
        &mut self,
        pos: Point,
        mediums: Vec<Medium>,
        panel: Option<PanelId>,
        label: impl Into<String>,
    ) -> NodeId {
        let id = self.add_node(pos, mediums, panel);
        self.nodes[id.index()].label = label.into();
        id
    }

    /// Adds a single directed link and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint lacks an interface on `medium`, or if the
    /// capacity is negative/non-finite — topology generators are expected to
    /// respect interface sets.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        medium: Medium,
        capacity_mbps: f64,
    ) -> LinkId {
        assert!(from != to, "self-links are not allowed");
        assert!(
            capacity_mbps.is_finite() && capacity_mbps >= 0.0,
            "capacity must be a finite non-negative number, got {capacity_mbps}"
        );
        for end in [from, to] {
            assert!(
                self.nodes[end.index()].supports(medium),
                "node {end} has no {medium} interface"
            );
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { id, from, to, medium, capacity_mbps, reverse: None });
        id
    }

    /// Adds a bidirectional link as two directed links with equal capacity,
    /// cross-referenced through [`Link::reverse`]. Returns `(fwd, rev)`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        medium: Medium,
        capacity_mbps: f64,
    ) -> (LinkId, LinkId) {
        self.add_duplex_asymmetric(a, b, medium, capacity_mbps, capacity_mbps)
    }

    /// Adds a bidirectional link with per-direction capacities (real WiFi
    /// and PLC links are rarely symmetric: different noise floors and, for
    /// PLC, different outlet impedances at each end). Returns `(a→b, b→a)`.
    pub fn add_duplex_asymmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        medium: Medium,
        capacity_ab_mbps: f64,
        capacity_ba_mbps: f64,
    ) -> (LinkId, LinkId) {
        let fwd = self.add_link(a, b, medium, capacity_ab_mbps);
        let rev = self.add_link(b, a, medium, capacity_ba_mbps);
        self.links[fwd.index()].reverse = Some(rev);
        self.links[rev.index()].reverse = Some(fwd);
        (fwd, rev)
    }

    /// Reads back a node added earlier (topology generators need positions
    /// and panels while still adding links).
    pub fn peek_node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes the network, computing adjacency indexes.
    pub fn build(self) -> Network {
        let mut out_adj = vec![Vec::new(); self.nodes.len()];
        let mut in_adj = vec![Vec::new(); self.nodes.len()];
        for link in &self.links {
            out_adj[link.from.index()].push(link.id);
            in_adj[link.to.index()].push(link.id);
        }
        Network { nodes: self.nodes, links: self.links, out_adj, in_adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> (Network, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let a =
            b.add_node(Point::new(0.0, 0.0), vec![Medium::WIFI1, Medium::Plc], Some(PanelId(0)));
        let c =
            b.add_node(Point::new(3.0, 4.0), vec![Medium::WIFI1, Medium::Plc], Some(PanelId(0)));
        b.add_duplex(a, c, Medium::WIFI1, 30.0);
        b.add_duplex(a, c, Medium::Plc, 10.0);
        (b.build(), a, c)
    }

    #[test]
    fn duplex_links_reference_each_other() {
        let (net, a, c) = two_node_net();
        let fwd = net.find_link(a, c, Medium::WIFI1).unwrap();
        let rev = net.link(fwd.reverse.unwrap());
        assert_eq!(rev.from, c);
        assert_eq!(rev.to, a);
        assert_eq!(rev.reverse, Some(fwd.id));
    }

    #[test]
    fn multigraph_allows_parallel_links_on_different_mediums() {
        let (net, a, c) = two_node_net();
        assert_eq!(net.out_links(a).count(), 2);
        assert!(net.find_link(a, c, Medium::Plc).is_some());
        assert!(net.find_link(a, c, Medium::WIFI2).is_none());
    }

    #[test]
    fn mediums_lists_distinct_technologies() {
        let (net, _, _) = two_node_net();
        assert_eq!(net.mediums(), vec![Medium::WIFI1, Medium::Plc]);
    }

    #[test]
    fn min_egress_cost_picks_highest_capacity() {
        let (net, a, _) = two_node_net();
        // Fastest egress is the 30 Mbps WiFi link: d = 1/30.
        assert!((net.min_egress_cost(a).unwrap() - 1.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn min_egress_cost_skips_dead_links() {
        let (mut net, a, c) = two_node_net();
        let wifi = net.find_link(a, c, Medium::WIFI1).unwrap().id;
        net.set_capacity(wifi, 0.0);
        assert!((net.min_egress_cost(a).unwrap() - 0.1).abs() < 1e-12); // PLC 10 Mbps
    }

    #[test]
    fn node_distance_is_euclidean() {
        let (net, a, c) = two_node_net();
        assert!((net.node_distance(a, c) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "has no plc interface")]
    fn adding_link_without_interface_panics() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0), vec![Medium::WIFI1], None);
        let c = b.add_node(Point::new(1.0, 0.0), vec![Medium::Plc], None);
        b.add_link(a, c, Medium::Plc, 10.0);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_links_panic() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0), vec![Medium::WIFI1], None);
        b.add_link(a, a, Medium::WIFI1, 10.0);
    }

    #[test]
    fn set_capacity_clamps_at_zero() {
        let (mut net, a, c) = two_node_net();
        let id = net.find_link(a, c, Medium::WIFI1).unwrap().id;
        net.set_capacity(id, -5.0);
        assert_eq!(net.link(id).capacity_mbps, 0.0);
        assert!(!net.link(id).is_alive());
    }

    #[test]
    fn total_capacity_sums_alive_links() {
        let (net, _, _) = two_node_net();
        assert!((net.total_capacity() - 80.0).abs() < 1e-9);
    }
}
