//! Communication technologies ("mediums") of the hybrid network.
//!
//! The paper's multigraph has one edge set `E_k` per technology `k`. The
//! evaluation uses three concrete mediums: two non-interfering 40 MHz WiFi
//! channels (Channel 1 at 5.8 GHz, Channel 2 at 2.4 GHz) and HomePlug AV
//! power-line communication. Links of *different* mediums never interfere;
//! whether two links of the *same* medium interfere is decided by an
//! [`InterferenceModel`](crate::interference::InterferenceModel).

use std::fmt;

/// A link technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Medium {
    /// An 802.11 channel. Channels with different numbers are assumed
    /// orthogonal (non-interfering), as in the paper's multi-channel WiFi
    /// baseline.
    Wifi {
        /// Logical channel number (1 = 5.8 GHz band, 2 = 2.4 GHz band in the
        /// paper's testbed; any further numbers are allowed).
        channel: u8,
    },
    /// HomePlug AV power-line communication (IEEE 1901 CSMA/CA MAC).
    Plc,
    /// Switched full-duplex Ethernet: point-to-point, interference-free.
    Ethernet,
}

impl Medium {
    /// WiFi channel 1 (the paper's 5.785–5.825 GHz band).
    pub const WIFI1: Medium = Medium::Wifi { channel: 1 };
    /// WiFi channel 2 (the paper's 2.412–2.452 GHz band).
    pub const WIFI2: Medium = Medium::Wifi { channel: 2 };

    /// True if this is any WiFi channel.
    pub fn is_wifi(self) -> bool {
        matches!(self, Medium::Wifi { .. })
    }

    /// True if this is power-line communication.
    pub fn is_plc(self) -> bool {
        matches!(self, Medium::Plc)
    }

    /// True if the medium is shared (CSMA-style contention): WiFi and PLC
    /// both are; switched Ethernet is not.
    pub fn is_shared(self) -> bool {
        !matches!(self, Medium::Ethernet)
    }

    /// Whether two mediums can interfere at all. Only identical shared
    /// mediums can; WiFi channels are orthogonal across channel numbers and
    /// WiFi never interferes with PLC (they occupy disjoint physical
    /// spectra — the premise of the whole paper).
    pub fn may_interfere_with(self, other: Medium) -> bool {
        self == other && self.is_shared()
    }

    /// A short stable label used in interface-id hashing and traces.
    pub fn label(self) -> String {
        match self {
            Medium::Wifi { channel } => format!("wifi{channel}"),
            Medium::Plc => "plc".to_string(),
            Medium::Ethernet => "eth".to_string(),
        }
    }

    /// A small integer tag, unique per medium, used for dense per-medium
    /// tables (e.g. the per-technology price broadcasts of §4.2).
    pub fn tag(self) -> u16 {
        match self {
            Medium::Wifi { channel } => 0x0100 | channel as u16,
            Medium::Plc => 0x0200,
            Medium::Ethernet => 0x0300,
        }
    }
}

impl fmt::Display for Medium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_wifi_channels_do_not_interfere() {
        assert!(!Medium::WIFI1.may_interfere_with(Medium::WIFI2));
        assert!(Medium::WIFI1.may_interfere_with(Medium::WIFI1));
    }

    #[test]
    fn plc_and_wifi_do_not_interfere() {
        assert!(!Medium::Plc.may_interfere_with(Medium::WIFI1));
        assert!(!Medium::WIFI2.may_interfere_with(Medium::Plc));
        assert!(Medium::Plc.may_interfere_with(Medium::Plc));
    }

    #[test]
    fn ethernet_never_interferes() {
        assert!(!Medium::Ethernet.may_interfere_with(Medium::Ethernet));
        assert!(!Medium::Ethernet.is_shared());
    }

    #[test]
    fn tags_are_unique() {
        let mediums = [Medium::WIFI1, Medium::WIFI2, Medium::Plc, Medium::Ethernet];
        for (i, a) in mediums.iter().enumerate() {
            for b in &mediums[i + 1..] {
                assert_ne!(a.tag(), b.tag(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Medium::WIFI1.label(), "wifi1");
        assert_eq!(Medium::Plc.label(), "plc");
        assert_eq!(Medium::Ethernet.label(), "eth");
    }
}
