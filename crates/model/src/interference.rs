//! Interference domains `I_l` (§2).
//!
//! `I_l` contains `l` itself plus every link that cannot transmit at the same
//! time as `l`. The EMPoWER algorithms never look deeper than this set: both
//! the multipath route computation (§3.2) and the congestion-control
//! constraint (2) are expressed over `I_l`.
//!
//! Two models are provided:
//!
//! * [`CarrierSense`] — the default used for randomized topologies: two links
//!   of the same shared medium interfere when any endpoint of one is within
//!   carrier-sensing range of any endpoint of the other (for WiFi), while PLC
//!   links interfere whenever they hang off the same electrical panel (the
//!   IEEE 1901 central coordinator forms one collision domain).
//! * [`SharedMedium`] — every pair of same-medium links interferes. This is
//!   the model of the worked examples (Fig. 3: "all links using the same
//!   medium interfere") and a good approximation for dense single-room
//!   deployments.

use crate::graph::Network;
use crate::ids::LinkId;
use crate::link::Link;

/// Decides whether two links interfere.
pub trait InterferenceModel {
    /// True if `a` and `b` cannot transmit simultaneously. Must be symmetric
    /// and reflexive for shared-medium links (`interferes(l, l)` is true
    /// because a link cannot transmit two frames at once).
    fn interferes(&self, net: &Network, a: &Link, b: &Link) -> bool;

    /// Precomputes all interference domains for `net`.
    fn build_map(&self, net: &Network) -> InterferenceMap
    where
        Self: Sized,
    {
        InterferenceMap::build(net, self)
    }
}

/// Range-based carrier sensing for WiFi + per-panel collision domains for PLC.
#[derive(Debug, Clone)]
pub struct CarrierSense {
    /// Carrier-sensing range for WiFi, metres. Two same-channel WiFi links
    /// interfere iff some endpoint of one is within this distance of some
    /// endpoint of the other. The paper's testbed-derived connection radius
    /// is 35 m; sensing typically reaches at least as far.
    pub wifi_sense_range_m: f64,
}

impl Default for CarrierSense {
    fn default() -> Self {
        // Carrier sensing reaches well beyond the communication range
        // (energy detection works at SNRs far below decodability): the
        // default is 2× the §5.1 WiFi connection radius. This also matches
        // the paper's "perfect sensing" MAC — on the 65×40 m testbed floor
        // every WiFi link then shares one collision domain, and the
        // per-(node, technology) price aggregation of §4.2 is exact.
        CarrierSense { wifi_sense_range_m: 70.0 }
    }
}

impl InterferenceModel for CarrierSense {
    fn interferes(&self, net: &Network, a: &Link, b: &Link) -> bool {
        if !a.medium.may_interfere_with(b.medium) {
            return false;
        }
        if a.id == b.id {
            return true;
        }
        if a.medium.is_plc() {
            // One collision domain per electrical panel. Links only exist
            // within a panel, so compare the panels of the transmitters.
            let pa = net.node(a.from).panel;
            let pb = net.node(b.from).panel;
            return pa.is_some() && pa == pb;
        }
        // WiFi same channel: endpoint-to-endpoint proximity.
        let ends_a = [a.from, a.to];
        let ends_b = [b.from, b.to];
        ends_a.iter().any(|&u| {
            ends_b.iter().any(|&v| u == v || net.node_distance(u, v) <= self.wifi_sense_range_m)
        })
    }
}

/// Every pair of links on the same shared medium interferes (single collision
/// domain per medium).
#[derive(Debug, Clone, Default)]
pub struct SharedMedium;

impl InterferenceModel for SharedMedium {
    fn interferes(&self, _net: &Network, a: &Link, b: &Link) -> bool {
        a.medium.may_interfere_with(b.medium) || a.id == b.id
    }
}

/// Bits per packed incidence word.
const WORD_BITS: usize = 64;

/// Precomputed interference domains: `domains[l]` is `I_l`, sorted by id and
/// always containing `l` itself.
///
/// Besides the sorted id lists, the map keeps a packed bit-matrix of the
/// interference relation (`stride` words per link), so membership tests
/// (`interferes`), per-path incidence masks and domain unions are bitwise
/// instead of per-link scans — these are the inner loops of `update(P, G)`
/// and of the §3.2 exploration tree.
#[derive(Debug, Clone)]
pub struct InterferenceMap {
    domains: Vec<Vec<LinkId>>,
    /// Row-major packed incidence matrix: bit `b` of row `l` (words
    /// `[l·stride, (l+1)·stride)`) is set iff links `l` and `b` interfere.
    words: Vec<u64>,
    /// Words per row: `⌈link_count / 64⌉`.
    stride: usize,
}

impl InterferenceMap {
    /// Builds the map by evaluating `model` on every link pair. O(L²) with
    /// tiny constants; local networks have at most a few hundred links.
    pub fn build<M: InterferenceModel + ?Sized>(net: &Network, model: &M) -> Self {
        let links = net.links();
        let mut domains = vec![Vec::new(); links.len()];
        for a in links {
            domains[a.id.index()].push(a.id); // reflexive, even for Ethernet
            for b in links.iter().skip(a.id.index() + 1) {
                if model.interferes(net, a, b) {
                    debug_assert!(
                        model.interferes(net, b, a),
                        "interference model must be symmetric"
                    );
                    domains[a.id.index()].push(b.id);
                    domains[b.id.index()].push(a.id);
                }
            }
        }
        let stride = links.len().div_ceil(WORD_BITS);
        let mut words = vec![0u64; links.len() * stride];
        for d in &mut domains {
            d.sort_unstable();
        }
        for (l, d) in domains.iter().enumerate() {
            let row = &mut words[l * stride..(l + 1) * stride];
            for m in d {
                row[m.index() / WORD_BITS] |= 1u64 << (m.index() % WORD_BITS);
            }
        }
        InterferenceMap { domains, words, stride }
    }

    /// The interference domain `I_l` of `link` (sorted, contains `link`).
    pub fn domain(&self, link: LinkId) -> &[LinkId] {
        &self.domains[link.index()]
    }

    /// The packed bitset row of `I_l`: bit `b` set iff link `b ∈ I_l`.
    pub fn domain_words(&self, link: LinkId) -> &[u64] {
        &self.words[link.index() * self.stride..(link.index() + 1) * self.stride]
    }

    /// Number of links covered by the map.
    pub fn link_count(&self) -> usize {
        self.domains.len()
    }

    /// True if `a` and `b` interfere. O(1): one bit test.
    #[inline]
    pub fn interferes(&self, a: LinkId, b: LinkId) -> bool {
        debug_assert!(b.index() < self.domains.len());
        self.words[a.index() * self.stride + b.index() / WORD_BITS] >> (b.index() % WORD_BITS) & 1
            != 0
    }

    /// Iterates over `I_l ∩ P` for a path given as a slice of link ids —
    /// the set that Lemma 1 and `R(l, P)` sum over.
    pub fn domain_intersect<'a>(
        &'a self,
        link: LinkId,
        path: &'a [LinkId],
    ) -> impl Iterator<Item = LinkId> + 'a {
        path.iter().copied().filter(move |&p| self.interferes(link, p))
    }

    /// Bitmask over *path positions*: bit `j` is set iff `path[j] ∈ I_l`.
    /// The mask drives [`crate::Path::residual_idle_fraction_masked`];
    /// positions beyond 64 hops are unsupported (the routing header caps
    /// routes at 6 hops, see `MAX_ROUTE_HOPS` in `empower-routing`).
    #[inline]
    pub fn incidence_mask(&self, link: LinkId, path: &[LinkId]) -> u64 {
        debug_assert!(path.len() <= WORD_BITS, "paths longer than 64 hops are unsupported");
        let mut mask = 0u64;
        for (j, &p) in path.iter().enumerate() {
            mask |= (self.interferes(link, p) as u64) << j;
        }
        mask
    }

    /// Writes `⋃_{l∈links} I_l` into `out` as a packed bitset (`stride`
    /// words). Reuses `out`'s allocation; iterate it with
    /// [`InterferenceMap::iter_links`] to visit the union in ascending id
    /// order — the same order a sorted set of the union would produce.
    pub fn union_domains_into(&self, links: &[LinkId], out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.stride, 0);
        for &l in links {
            for (o, w) in out.iter_mut().zip(self.domain_words(l)) {
                *o |= w;
            }
        }
    }

    /// Projects the map onto a subnetwork keeping only `kept` (ascending
    /// global link ids), remapping every domain through `local_of`
    /// (`local_of[g] = local id`, `u32::MAX` = dropped). The caller must keep
    /// domains closed: every member of a kept link's domain must itself be
    /// kept — true whenever `kept` is a union of whole interference atoms
    /// (see [`crate::shard`]). The remap is monotone, so the restricted
    /// domains stay sorted and per-domain iteration visits the same links in
    /// the same relative order as the full map.
    pub fn restrict(&self, kept: &[LinkId], local_of: &[u32]) -> InterferenceMap {
        let stride = kept.len().div_ceil(WORD_BITS);
        let mut domains = Vec::with_capacity(kept.len());
        let mut words = vec![0u64; kept.len() * stride];
        for (l, &g) in kept.iter().enumerate() {
            let domain: Vec<LinkId> = self.domains[g.index()]
                .iter()
                .map(|m| {
                    let lm = local_of[m.index()];
                    debug_assert!(lm != u32::MAX, "domain of {g} leaks outside the kept set");
                    LinkId(lm)
                })
                .collect();
            let row = &mut words[l * stride..(l + 1) * stride];
            for m in &domain {
                row[m.index() / WORD_BITS] |= 1u64 << (m.index() % WORD_BITS);
            }
            domains.push(domain);
        }
        InterferenceMap { domains, words, stride }
    }

    /// Iterates the link ids whose bits are set in a packed word slice, in
    /// ascending id order.
    pub fn iter_links(words: &[u64]) -> impl Iterator<Item = LinkId> + '_ {
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(LinkId((wi * WORD_BITS) as u32 + bit))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::NetworkBuilder;
    use crate::ids::{NodeId, PanelId};
    use crate::medium::Medium;

    /// Four nodes in a line, 30 m apart: a(0) b(30) c(60) d(90).
    /// WiFi links a-b, b-c, c-d (all channel 1); PLC a-b (panel 0) and
    /// c-d (panel 1).
    fn line_net() -> (Network, Vec<LinkId>) {
        let mut b = NetworkBuilder::new();
        let mediums = vec![Medium::WIFI1, Medium::Plc];
        let n: Vec<NodeId> = (0..4)
            .map(|i| {
                b.add_node(
                    Point::new(30.0 * i as f64, 0.0),
                    mediums.clone(),
                    Some(PanelId(if i < 2 { 0 } else { 1 })),
                )
            })
            .collect();
        let (w_ab, _) = b.add_duplex(n[0], n[1], Medium::WIFI1, 30.0);
        let (w_bc, _) = b.add_duplex(n[1], n[2], Medium::WIFI1, 30.0);
        let (w_cd, _) = b.add_duplex(n[2], n[3], Medium::WIFI1, 30.0);
        let (p_ab, _) = b.add_duplex(n[0], n[1], Medium::Plc, 10.0);
        let (p_cd, _) = b.add_duplex(n[2], n[3], Medium::Plc, 10.0);
        (b.build(), vec![w_ab, w_bc, w_cd, p_ab, p_cd])
    }

    #[test]
    fn carrier_sense_adjacent_wifi_links_interfere() {
        let (net, ids) = line_net();
        let map = CarrierSense::default().build_map(&net);
        // a-b and b-c share node b.
        assert!(map.interferes(ids[0], ids[1]));
        // b-c and c-d share node c.
        assert!(map.interferes(ids[1], ids[2]));
    }

    #[test]
    fn carrier_sense_far_wifi_links_do_not_interfere() {
        let (net, ids) = line_net();
        // a-b endpoints at 0 and 30; c-d endpoints at 60 and 90: min distance
        // 30 m ≤ 35 m default, so they DO interfere by default...
        let map = CarrierSense::default().build_map(&net);
        assert!(map.interferes(ids[0], ids[2]));
        // ...but not with a tighter 25 m sensing range.
        let map = CarrierSense { wifi_sense_range_m: 25.0 }.build_map(&net);
        assert!(!map.interferes(ids[0], ids[2]));
    }

    #[test]
    fn plc_domains_are_per_panel() {
        let (net, ids) = line_net();
        let map = CarrierSense::default().build_map(&net);
        // PLC a-b (panel 0) vs PLC c-d (panel 1): no interference.
        assert!(!map.interferes(ids[3], ids[4]));
        // A PLC link always interferes with its own reverse (same panel).
        let rev = net.link(ids[3]).reverse.unwrap();
        assert!(map.interferes(ids[3], rev));
    }

    #[test]
    fn plc_never_interferes_with_wifi() {
        let (net, ids) = line_net();
        let map = CarrierSense::default().build_map(&net);
        assert!(!map.interferes(ids[0], ids[3])); // same node pair, different medium
    }

    #[test]
    fn domains_contain_self() {
        let (net, _) = line_net();
        let map = CarrierSense::default().build_map(&net);
        for l in net.links() {
            assert!(map.domain(l.id).contains(&l.id), "{} not in its own I_l", l.id);
        }
    }

    #[test]
    fn shared_medium_merges_everything_per_medium() {
        let (net, ids) = line_net();
        let map = SharedMedium.build_map(&net);
        assert!(map.interferes(ids[0], ids[2])); // distant WiFi links
        assert!(map.interferes(ids[3], ids[4])); // cross-panel PLC
        assert!(!map.interferes(ids[0], ids[3])); // cross-medium, never
    }

    #[test]
    fn domain_intersect_filters_path_links() {
        let (net, ids) = line_net();
        let map = CarrierSense::default().build_map(&net);
        // Path = WiFi a-b, WiFi b-c, PLC c-d(panel1).
        let path = vec![ids[0], ids[1], ids[4]];
        let inter: Vec<LinkId> = map.domain_intersect(ids[0], &path).collect();
        assert_eq!(inter, vec![ids[0], ids[1]]);
        let inter: Vec<LinkId> = map.domain_intersect(ids[4], &path).collect();
        assert_eq!(inter, vec![ids[4]]);
        let _ = net;
    }

    #[test]
    fn domains_are_sorted() {
        let (net, _) = line_net();
        let map = SharedMedium.build_map(&net);
        for l in net.links() {
            let d = map.domain(l.id);
            assert!(d.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn bitset_rows_agree_with_domain_lists() {
        let (net, _) = line_net();
        for map in [CarrierSense::default().build_map(&net), SharedMedium.build_map(&net)] {
            for a in net.links() {
                let from_bits: Vec<LinkId> =
                    InterferenceMap::iter_links(map.domain_words(a.id)).collect();
                assert_eq!(from_bits, map.domain(a.id), "row {} disagrees", a.id);
                for b in net.links() {
                    assert_eq!(
                        map.interferes(a.id, b.id),
                        map.domain(a.id).binary_search(&b.id).is_ok()
                    );
                }
            }
        }
    }

    #[test]
    fn union_domains_matches_sorted_set_union() {
        let (net, ids) = line_net();
        let map = CarrierSense::default().build_map(&net);
        let path = vec![ids[0], ids[4]];
        let mut words = Vec::new();
        map.union_domains_into(&path, &mut words);
        let got: Vec<LinkId> = InterferenceMap::iter_links(&words).collect();
        let mut want: Vec<LinkId> =
            path.iter().flat_map(|&l| map.domain(l).iter().copied()).collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        // Reuse keeps the buffer correct.
        map.union_domains_into(&[ids[1]], &mut words);
        let got: Vec<LinkId> = InterferenceMap::iter_links(&words).collect();
        assert_eq!(got, map.domain(ids[1]));
    }

    #[test]
    fn incidence_mask_mirrors_domain_intersect() {
        let (net, ids) = line_net();
        let map = CarrierSense::default().build_map(&net);
        let path = vec![ids[0], ids[1], ids[4]];
        for l in net.links() {
            let mask = map.incidence_mask(l.id, &path);
            let from_mask: Vec<LinkId> =
                (0..path.len()).filter(|&j| mask >> j & 1 != 0).map(|j| path[j]).collect();
            let from_scan: Vec<LinkId> = map.domain_intersect(l.id, &path).collect();
            assert_eq!(from_mask, from_scan, "link {}", l.id);
        }
    }
}
