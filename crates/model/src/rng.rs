//! Small random-sampling helpers shared by the capacity models and workload
//! generators.
//!
//! The offline dependency set contains `rand` but not `rand_distr`, so the
//! non-uniform distributions needed here (Gaussian noise for capacity
//! estimation, exponential inter-arrivals for the Poisson download workload
//! of Table 1) are implemented directly.

use rand::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, std)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples an exponential variate with the given mean (`1/λ`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 60.0)).sum::<f64>() / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 1.0) > 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
