//! Deterministic random-number generation and sampling helpers.
//!
//! The build environment carries no external crates, so this module provides
//! the small slice of the `rand` API the workspace actually uses — a seedable
//! generator ([`StdRng`]), the [`Rng`] trait with `gen` / `gen_range` /
//! `gen_bool`, and the non-uniform distributions needed by the capacity
//! models and workload generators (Gaussian noise for capacity estimation,
//! exponential inter-arrivals for the Poisson download workload of Table 1).
//!
//! Determinism contract (DESIGN.md §3.4): the generator is xoshiro256++
//! seeded via SplitMix64, both fully specified algorithms with no
//! platform-dependent behaviour, so a given seed yields the same stream on
//! every build and architecture. Nothing here reads entropy from the OS.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly random 64-bit words plus derived sampling methods.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its natural uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, full range for integers).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Samples uniformly from a range (see [`SampleRange`] for the
    /// supported range types).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from raw generator output.
pub trait Sample {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = x as u128 * span as u128;
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's deterministic generator: xoshiro256++ seeded via
/// SplitMix64. Fast, 256-bit state, passes BigCrush; most importantly the
/// stream is a pure function of the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// SplitMix64 finalizer: one full avalanche round over `x`.
fn splitmix_finalize(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent per-entity stream seed from a master seed.
///
/// `tag` names the stream family (e.g. "per-flow traffic draws" vs
/// "per-link estimation noise") and `idx` the entity within the family.
/// Two rounds of the SplitMix64 finalizer decorrelate the inputs, the same
/// construction the workload compiler uses for `instance_seed`. The point
/// of per-entity streams (DESIGN.md §13) is *composability*: an entity's
/// draw sequence depends only on `(master, tag, idx)` and its own draw
/// count, never on how many draws other entities made — which is what lets
/// a sharded run reproduce the single-threaded stream exactly.
pub fn stream_seed(master: u64, tag: u64, idx: u64) -> u64 {
    splitmix_finalize(splitmix_finalize(master ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ idx)
}

// ---------------------------------------------------------------------
// Distribution helpers
// ---------------------------------------------------------------------

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, std)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples an exponential variate with the given mean (`1/λ`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 60.0)).sum::<f64>() / n as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 1.0) > 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn unit_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let w = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn stream_seeds_are_distinct_and_deterministic() {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for tag in [0x1u64, 0x2, 0xF10A] {
            for idx in 0..200u64 {
                assert!(seen.insert(stream_seed(7, tag, idx)), "collision at {tag:#x}/{idx}");
                assert_eq!(stream_seed(7, tag, idx), stream_seed(7, tag, idx));
            }
        }
        // Different master seeds move every stream.
        assert_ne!(stream_seed(7, 1, 0), stream_seed(8, 1, 0));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
