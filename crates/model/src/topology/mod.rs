//! Topology generators for the paper's evaluation scenarios.
//!
//! * [`examples`] — the deterministic worked examples of Figs. 1 and 3, plus
//!   small synthetic fixtures used across the test suites.
//! * [`random`] — the randomized residential (50×30 m, 10 nodes) and
//!   enterprise (100×60 m, 20 nodes, two electrical panels) topologies of
//!   §5.1.
//! * [`testbed22`](testbed22::testbed22) — the simulated stand-in for the 22-node office testbed
//!   of §6 (65×40 m floor).
//! * [`campus`] — seeded hierarchical multi-floor/multi-building campuses
//!   (100/500/1000+ nodes) for the sharded-simulation scale experiments.

pub mod campus;
pub mod examples;
pub mod random;
pub mod testbed22;

pub use campus::{campus, CampusConfig, CampusFloor, CampusTopology};
pub use examples::{fig1_scenario, fig3_scenario, Fig1Scenario, Fig3Scenario};
pub use random::{enterprise, residential, RandomTopologyConfig, TopologyClass};
pub use testbed22::{testbed22, Testbed22};
