//! Seeded hierarchical campus topologies: multi-floor, multi-building
//! deployments at 100/500/1000+-node scale.
//!
//! The paper's evaluation stops at one 22-node office floor (§6); the
//! ROADMAP's "millions of users" north star needs topologies where the
//! *locality* of the interference model (§4.1) becomes structural. A
//! campus is a grid of floors: every floor is a self-contained
//! hybrid-network cell — one floor router, `clients_per_floor` stations,
//! WiFi on the floor's reuse channel, PLC behind the floor's electrical
//! panel — and floors connect upward through interference-free switched
//! Ethernet risers (floor router → building router → campus core).
//!
//! Interference-domain structure by construction:
//!
//! * **WiFi**: floors are laid out on a grid with ≥ `FLOOR_SPACING_M`
//!   between floor origins — farther than the carrier-sense range plus
//!   both floors' WiFi radii — so even same-channel floors never share a
//!   domain. Channels cycle per floor (`wifi_channels`), the dense reuse
//!   pattern of real enterprise deployments. (The grid is planar; the
//!   horizontal spacing stands in for the concrete slabs that isolate
//!   stacked floors in the real building.)
//! * **PLC**: one [`PanelId`] per floor — hierarchical panels, so PLC
//!   domains end at the floor's breaker box, as in the enterprise
//!   deployment studies.
//! * **Ethernet**: risers never interfere with anything
//!   ([`Medium::may_interfere_with`]), so the backbone adds no coupling.
//!
//! The result: one interference atom per floor (plus singleton Ethernet
//! atoms) — exactly the boundaries the sharded simulator
//! ([`crate::shard`]) partitions along.

use crate::capacity::{CapacityModel, PlcCapacityModel, WifiCapacityModel};
use crate::geometry::Point;
use crate::graph::{Network, NetworkBuilder};
use crate::ids::{NodeId, PanelId};
use crate::medium::Medium;
use crate::rng::Rng;

/// Grid spacing between floor origins, metres. Must exceed the 70 m
/// carrier-sense range plus the floor diagonal so same-channel floors
/// stay out of each other's WiFi domains (worst-case endpoint distance
/// is `FLOOR_SPACING_M − FLOOR_W_M = 120 m > 70 m`).
const FLOOR_SPACING_M: f64 = 160.0;
/// Floor extent, metres.
const FLOOR_W_M: f64 = 40.0;
const FLOOR_H_M: f64 = 25.0;
/// Riser capacities, Mbps: gigabit floor uplinks, 10 GbE building spine.
const RISER_MBPS: f64 = 1000.0;
const SPINE_MBPS: f64 = 10_000.0;

/// Campus generation parameters.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Buildings on the campus (grid rows).
    pub buildings: u32,
    /// Floors per building (grid columns).
    pub floors_per_building: u32,
    /// Client stations per floor.
    pub clients_per_floor: u32,
    /// WiFi channel-reuse cycle length: floor `f` of every building uses
    /// channel `1 + f % wifi_channels`.
    pub wifi_channels: u8,
    /// Every `hybrid_every`-th client is hybrid PLC/WiFi; the rest are
    /// WiFi-only unless NLOS blocking kills their WiFi link, in which
    /// case they fall back to PLC (every client stays attached).
    pub hybrid_every: u32,
    pub wifi: WifiCapacityModel,
    pub plc: PlcCapacityModel,
}

impl CampusConfig {
    /// A campus with the given grid, defaulting the per-floor mix to
    /// 3-channel reuse and every-other-client hybrid.
    pub fn new(buildings: u32, floors_per_building: u32, clients_per_floor: u32) -> Self {
        CampusConfig {
            buildings,
            floors_per_building,
            clients_per_floor,
            wifi_channels: 3,
            hybrid_every: 2,
            wifi: WifiCapacityModel::default(),
            plc: PlcCapacityModel::default(),
        }
    }

    /// Total node count: per building, `floors × (router + clients)` plus
    /// the building router; plus the campus core.
    pub fn node_count(&self) -> usize {
        let per_building =
            self.floors_per_building as usize * (1 + self.clients_per_floor as usize);
        self.buildings as usize * (per_building + 1) + 1
    }
}

/// One generated floor cell.
#[derive(Debug, Clone)]
pub struct CampusFloor {
    /// Building (grid row) and floor (grid column) indices.
    pub building: u32,
    pub floor: u32,
    /// The floor router (hybrid WiFi/PLC, Ethernet uplink).
    pub router: NodeId,
    /// Client stations, in generation order.
    pub clients: Vec<NodeId>,
    /// Clients with a PLC link to the router (superset of the configured
    /// hybrid mix: WiFi-blocked clients fall back to PLC).
    pub plc_clients: Vec<NodeId>,
    /// The floor's WiFi reuse channel.
    pub channel: u8,
    /// The floor's electrical panel.
    pub panel: PanelId,
}

/// A generated campus.
#[derive(Debug, Clone)]
pub struct CampusTopology {
    pub net: Network,
    /// Floors in `(building, floor)` row-major order.
    pub floors: Vec<CampusFloor>,
    /// One Ethernet aggregation router per building.
    pub building_routers: Vec<NodeId>,
    /// The campus core switch.
    pub core: NodeId,
}

/// Generates a campus topology. Purely a function of the generator state
/// and the config: the same seeded [`Rng`] reproduces the same network.
pub fn campus<R: Rng + ?Sized>(rng: &mut R, config: &CampusConfig) -> CampusTopology {
    assert!(config.buildings > 0 && config.floors_per_building > 0, "empty campus");
    assert!(config.wifi_channels > 0, "at least one WiFi channel");
    let mut b = NetworkBuilder::new();
    let mut floors = Vec::new();

    let core = b.add_labeled_node(
        Point::new(-2.0 * FLOOR_SPACING_M, -FLOOR_SPACING_M),
        vec![Medium::Ethernet],
        None,
        "core",
    );
    let mut building_routers = Vec::new();
    for bi in 0..config.buildings {
        let br = b.add_labeled_node(
            Point::new(-FLOOR_SPACING_M, bi as f64 * FLOOR_SPACING_M),
            vec![Medium::Ethernet],
            None,
            format!("b{bi}/agg"),
        );
        b.add_duplex(br, core, Medium::Ethernet, SPINE_MBPS);
        building_routers.push(br);

        for fi in 0..config.floors_per_building {
            let origin = Point::new(fi as f64 * FLOOR_SPACING_M, bi as f64 * FLOOR_SPACING_M);
            let channel = 1 + (fi % config.wifi_channels as u32) as u8;
            let wifi = Medium::Wifi { channel };
            let panel = PanelId(bi * config.floors_per_building + fi);
            let router_pos = Point::new(origin.x + FLOOR_W_M / 2.0, origin.y + FLOOR_H_M / 2.0);
            let router = b.add_labeled_node(
                router_pos,
                vec![wifi, Medium::Plc, Medium::Ethernet],
                Some(panel),
                format!("b{bi}/f{fi}/ap"),
            );
            b.add_duplex(router, br, Medium::Ethernet, RISER_MBPS);

            let mut clients = Vec::new();
            let mut plc_clients = Vec::new();
            for ci in 0..config.clients_per_floor {
                let pos = Point::new(
                    origin.x + rng.gen_range(0.0..FLOOR_W_M),
                    origin.y + rng.gen_range(0.0..FLOOR_H_M),
                );
                let dist = pos.distance(router_pos);
                let wifi_cap = config.wifi.sample(rng, dist);
                let wants_plc = config.hybrid_every > 0 && ci % config.hybrid_every == 0;
                // WiFi-blocked clients keep connectivity through the
                // power line — the paper's core coverage argument
                // (§5.2.1) at campus scale.
                let use_plc = wants_plc || wifi_cap.is_none();
                let mut mediums = Vec::new();
                if wifi_cap.is_some() {
                    mediums.push(wifi);
                }
                if use_plc {
                    mediums.push(Medium::Plc);
                }
                let id = b.add_labeled_node(
                    pos,
                    mediums,
                    use_plc.then_some(panel),
                    format!("b{bi}/f{fi}/c{ci}"),
                );
                if let Some(cap) = wifi_cap {
                    b.add_duplex(id, router, wifi, cap);
                }
                if use_plc {
                    let cap = config
                        .plc
                        .sample(rng, dist)
                        .unwrap_or(config.plc.max_capacity_mbps * config.plc.quality_floor);
                    b.add_duplex(id, router, Medium::Plc, cap);
                    plc_clients.push(id);
                }
                clients.push(id);
            }
            floors.push(CampusFloor {
                building: bi,
                floor: fi,
                router,
                clients,
                plc_clients,
                channel,
                panel,
            });
        }
    }

    CampusTopology { net: b.build(), floors, building_routers, core }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{CarrierSense, InterferenceMap};
    use crate::rng::{SeedableRng, StdRng};

    fn small() -> CampusTopology {
        let mut rng = StdRng::seed_from_u64(7);
        campus(&mut rng, &CampusConfig::new(2, 3, 5))
    }

    #[test]
    fn node_count_matches_formula() {
        let cfg = CampusConfig::new(2, 5, 9);
        assert_eq!(cfg.node_count(), 103);
        assert_eq!(CampusConfig::new(5, 10, 9).node_count(), 506);
        assert_eq!(CampusConfig::new(10, 10, 9).node_count(), 1011);
        let mut rng = StdRng::seed_from_u64(1);
        let t = campus(&mut rng, &cfg);
        assert_eq!(t.net.node_count(), cfg.node_count());
    }

    #[test]
    fn every_client_reaches_its_router() {
        let t = small();
        for fl in &t.floors {
            for &c in &fl.clients {
                let attached = t.net.out_links(c).any(|l| l.to == fl.router && l.is_alive());
                assert!(attached, "client {c} has no link to its floor router");
            }
        }
    }

    #[test]
    fn wifi_domains_stay_within_a_floor() {
        let t = small();
        let imap = InterferenceMap::build(&t.net, &CarrierSense::default());
        // Map every link to its floor (by router membership); Ethernet
        // links have no floor.
        let floor_of =
            |n: NodeId| t.floors.iter().position(|f| f.router == n || f.clients.contains(&n));
        for l in t.net.links() {
            if l.medium == Medium::Ethernet {
                continue;
            }
            let fa = floor_of(l.from).expect("shared-medium link endpoint on a floor");
            for &m in imap.domain(l.id) {
                let lm = t.net.link(m);
                let fb = floor_of(lm.from).expect("domain member on a floor");
                assert_eq!(fa, fb, "links {l:?} and {lm:?} share a domain across floors");
            }
        }
    }

    #[test]
    fn channels_cycle_and_panels_are_per_floor() {
        let t = small();
        assert_eq!(t.floors[0].channel, 1);
        assert_eq!(t.floors[1].channel, 2);
        assert_eq!(t.floors[2].channel, 3);
        // Same floor index in the next building reuses the channel.
        assert_eq!(t.floors[3].channel, 1);
        let panels: std::collections::BTreeSet<_> = t.floors.iter().map(|f| f.panel).collect();
        assert_eq!(panels.len(), t.floors.len(), "one panel per floor");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = campus(&mut StdRng::seed_from_u64(3), &CampusConfig::new(2, 2, 6));
        let b = campus(&mut StdRng::seed_from_u64(3), &CampusConfig::new(2, 2, 6));
        assert_eq!(a.net.link_count(), b.net.link_count());
        for (x, y) in a.net.links().iter().zip(b.net.links()) {
            assert_eq!(x.capacity_mbps, y.capacity_mbps);
            assert_eq!(x.medium, y.medium);
        }
    }

    #[test]
    fn risers_are_ethernet_and_reach_the_core() {
        let t = small();
        for fl in &t.floors {
            let up = t
                .net
                .out_links(fl.router)
                .find(|l| l.medium == Medium::Ethernet)
                .expect("floor uplink");
            assert_eq!(up.to, t.building_routers[fl.building as usize]);
        }
        for &br in &t.building_routers {
            assert!(t.net.out_links(br).any(|l| l.to == t.core));
        }
    }
}
