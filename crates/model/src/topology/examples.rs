//! Deterministic worked examples from the paper.

use crate::geometry::Point;
use crate::graph::{Network, NetworkBuilder};
use crate::ids::{LinkId, NodeId, PanelId};
use crate::medium::Medium;

/// The Figure 1 scenario: a hybrid PLC/WiFi gateway `a`, a PLC/WiFi range
/// extender `b` and a WiFi-only client `c`.
///
/// Link capacities: PLC `a↔b` 10 Mbps, WiFi `a↔b` 15 Mbps, WiFi `b↔c`
/// 30 Mbps. The optimal load balance for a download `a → c` is 10 Mbps on
/// the hybrid Route 1 (PLC then WiFi) and ≈ 6.6 Mbps on the all-WiFi
/// Route 2.
#[derive(Debug, Clone)]
pub struct Fig1Scenario {
    pub net: Network,
    pub gateway: NodeId,
    pub extender: NodeId,
    pub client: NodeId,
    /// PLC link `a → b` (forward direction of the duplex pair).
    pub plc_ab: LinkId,
    /// WiFi link `a → b`.
    pub wifi_ab: LinkId,
    /// WiFi link `b → c`.
    pub wifi_bc: LinkId,
}

/// Builds the Figure 1 scenario.
pub fn fig1_scenario() -> Fig1Scenario {
    let mut b = NetworkBuilder::new();
    let hybrid = vec![Medium::WIFI1, Medium::Plc];
    let gateway =
        b.add_labeled_node(Point::new(0.0, 0.0), hybrid.clone(), Some(PanelId(0)), "gateway");
    let extender = b.add_labeled_node(Point::new(15.0, 0.0), hybrid, Some(PanelId(0)), "extender");
    let client = b.add_labeled_node(Point::new(30.0, 0.0), vec![Medium::WIFI1], None, "client");
    let (plc_ab, _) = b.add_duplex(gateway, extender, Medium::Plc, 10.0);
    let (wifi_ab, _) = b.add_duplex(gateway, extender, Medium::WIFI1, 15.0);
    let (wifi_bc, _) = b.add_duplex(extender, client, Medium::WIFI1, 30.0);
    Fig1Scenario { net: b.build(), gateway, extender, client, plc_ab, wifi_ab, wifi_bc }
}

/// A reconstruction of the Figure 3 example: the multigraph where the best
/// *isolated* route is not part of the best *combination* of routes.
///
/// The original figure's exact seven link capacities cannot be recovered from
/// the text, so this network reproduces the stated properties exactly:
///
/// * Route 2 (`s → v → d`, alternating mediums, 11 Mbps bottlenecks) is the
///   best isolated route at 11 Mbps, but using it exhausts **both** mediums,
///   leaving nothing else (total 11 Mbps);
/// * Routes 1 (`s → u → d`, medium A then B, caps 20/10) and 3 (`s → d`
///   direct on medium A, cap 10) each carry 10 Mbps in isolation;
/// * the best combination is Route 1 followed by Route 3, which carries
///   `10 + 5 = 15` Mbps — Route 1's 10 Mbps consume half of medium A's
///   airtime, halving Route 3's direct link to 5 Mbps.
///
/// Mediums A and B are modelled as two orthogonal WiFi channels under the
/// shared-medium interference model ("all links using the same medium
/// interfere", as in the figure).
#[derive(Debug, Clone)]
pub struct Fig3Scenario {
    pub net: Network,
    pub source: NodeId,
    pub dest: NodeId,
    /// Intermediate node of Route 1.
    pub via_u: NodeId,
    /// Intermediate node of Route 2.
    pub via_v: NodeId,
    /// Route 1 links: `s → u` on medium A (20 Mbps), `u → d` on medium B
    /// (10 Mbps).
    pub route1: [LinkId; 2],
    /// Route 2 links: `s → v` on medium A (11 Mbps), `v → d` on medium B
    /// (11 Mbps).
    pub route2: [LinkId; 2],
    /// Route 3 link: `s → d` direct on medium A (10 Mbps).
    pub route3: [LinkId; 1],
}

/// Builds the Figure 3 reconstruction.
pub fn fig3_scenario() -> Fig3Scenario {
    let mut b = NetworkBuilder::new();
    let both = vec![Medium::WIFI1, Medium::WIFI2];
    let s = b.add_labeled_node(Point::new(0.0, 0.0), both.clone(), None, "s");
    let u = b.add_labeled_node(Point::new(10.0, 10.0), both.clone(), None, "u");
    let v = b.add_labeled_node(Point::new(10.0, -10.0), both.clone(), None, "v");
    let d = b.add_labeled_node(Point::new(20.0, 0.0), both, None, "d");
    let (r1a, _) = b.add_duplex(s, u, Medium::WIFI1, 20.0);
    let (r1b, _) = b.add_duplex(u, d, Medium::WIFI2, 10.0);
    let (r2a, _) = b.add_duplex(s, v, Medium::WIFI1, 11.0);
    let (r2b, _) = b.add_duplex(v, d, Medium::WIFI2, 11.0);
    let (r3, _) = b.add_duplex(s, d, Medium::WIFI1, 10.0);
    Fig3Scenario {
        net: b.build(),
        source: s,
        dest: d,
        via_u: u,
        via_v: v,
        route1: [r1a, r1b],
        route2: [r2a, r2b],
        route3: [r3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{InterferenceModel, SharedMedium};
    use crate::path::Path;

    #[test]
    fn fig1_route_capacities_match_paper() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        assert!((route1.capacity(&s.net, &imap) - 10.0).abs() < 1e-9);
        assert!((route2.capacity(&s.net, &imap) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_isolated_route_capacities() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let r1 = Path::new(&s.net, s.route1.to_vec()).unwrap();
        let r2 = Path::new(&s.net, s.route2.to_vec()).unwrap();
        let r3 = Path::new(&s.net, s.route3.to_vec()).unwrap();
        assert!((r1.capacity(&s.net, &imap) - 10.0).abs() < 1e-9);
        assert!((r2.capacity(&s.net, &imap) - 11.0).abs() < 1e-9);
        assert!((r3.capacity(&s.net, &imap) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_best_single_route_is_route2() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let caps: Vec<f64> = [s.route1.to_vec(), s.route2.to_vec(), s.route3.to_vec()]
            .into_iter()
            .map(|links| Path::new(&s.net, links).unwrap().capacity(&s.net, &imap))
            .collect();
        assert!(caps[1] > caps[0] && caps[1] > caps[2]);
    }

    #[test]
    fn fig3_route1_leaves_half_of_medium_a_for_route3() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let r1 = Path::new(&s.net, s.route1.to_vec()).unwrap();
        let rate = r1.capacity(&s.net, &imap); // 10
                                               // Residual on route 3's direct link (medium A): 1 − 10/20 = 0.5.
        let resid = r1.residual_idle_fraction(&s.net, &imap, s.route3[0], rate);
        assert!((resid - 0.5).abs() < 1e-9);
        // Route 1's own bottleneck (medium B link) is exhausted.
        let resid_b = r1.residual_idle_fraction(&s.net, &imap, s.route1[1], rate);
        assert!(resid_b.abs() < 1e-9);
    }

    #[test]
    fn fig3_route2_exhausts_both_mediums() {
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let r2 = Path::new(&s.net, s.route2.to_vec()).unwrap();
        let rate = r2.capacity(&s.net, &imap); // 11
        for probe in [s.route1[0], s.route1[1], s.route3[0]] {
            let resid = r2.residual_idle_fraction(&s.net, &imap, probe, rate);
            assert!(resid.abs() < 1e-9, "link {probe} keeps {resid}");
        }
    }
}
