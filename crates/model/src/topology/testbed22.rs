//! Simulated stand-in for the 22-node office testbed of §6.
//!
//! The real testbed spreads 22 APU1D boards over a 65×40 m office floor
//! (Fig. 8); every node has two WiFi interfaces (Atheros AR9280, one per
//! channel) and a HomePlug AV PLC interface (QCA7420) on the building's
//! electrical network. The exact floor plan and per-link capacities are not
//! published, so this module:
//!
//! * fixes 22 node positions spread over the 65×40 m floor, loosely
//!   following the map of Fig. 8 (clusters along the corridors, nodes 1 and
//!   13 far apart so that Flow 1-13 needs multiple hops, node 4 and node 7
//!   between them as in the Fig. 9 example);
//! * samples link capacities from the calibrated distance models of
//!   [`crate::capacity`] with a caller-provided seed, so each "measurement
//!   campaign" is reproducible;
//! * treats the whole floor as one electrical panel (the testbed's PLC
//!   links span the floor).
//!
//! Experiments that need the exact capacities printed in the paper (e.g.
//! Fig. 9-left) override individual links with
//! [`Network::set_capacity`](crate::graph::Network::set_capacity).

use crate::rng::SeedableRng;
use crate::rng::StdRng;

use crate::capacity::{CapacityModel, PlcCapacityModel, WifiCapacityModel};
use crate::geometry::Point;
use crate::graph::{Network, NetworkBuilder};
use crate::ids::{NodeId, PanelId};
use crate::medium::Medium;

/// Floor dimensions, metres (Fig. 8).
pub const FLOOR_WIDTH_M: f64 = 65.0;
pub const FLOOR_HEIGHT_M: f64 = 40.0;

/// Fixed node positions (metres), index 0 ↔ paper's "Node 1".
///
/// Chosen to span the floor with realistic office spacing: WiFi (35 m
/// radius) cannot cover the floor in one hop, PLC (50 m) almost can.
pub const NODE_POSITIONS: [(f64, f64); 22] = [
    (4.0, 35.0),  // 1  north-west corner (Fig. 9 source)
    (2.0, 26.0),  // 2
    (10.0, 30.0), // 3
    (14.0, 24.0), // 4  first relay of Fig. 9
    (8.0, 16.0),  // 5
    (3.0, 7.0),   // 6
    (24.0, 28.0), // 7  central relay of Fig. 9
    (20.0, 12.0), // 8
    (28.0, 6.0),  // 9
    (30.0, 18.0), // 10
    (34.0, 33.0), // 11
    (38.0, 25.0), // 12
    (42.0, 12.0), // 13 Fig. 9 destination, ~47 m from node 1
    (44.0, 30.0), // 14
    (48.0, 20.0), // 15
    (46.0, 6.0),  // 16
    (52.0, 34.0), // 17
    (54.0, 12.0), // 18
    (58.0, 26.0), // 19
    (60.0, 5.0),  // 20
    (62.0, 17.0), // 21
    (63.0, 36.0), // 22 south-east corner
];

/// The simulated testbed.
#[derive(Debug, Clone)]
pub struct Testbed22 {
    pub net: Network,
}

impl Testbed22 {
    /// The [`NodeId`] for the paper's 1-based node numbering.
    pub fn node(&self, paper_number: u32) -> NodeId {
        assert!((1..=22).contains(&paper_number), "testbed nodes are numbered 1..=22");
        NodeId(paper_number - 1)
    }
}

/// Builds the testbed with capacities drawn from `seed`.
pub fn testbed22(seed: u64) -> Testbed22 {
    testbed22_with_models(seed, &WifiCapacityModel::default(), &PlcCapacityModel::default())
}

/// Builds the testbed with explicit capacity models.
pub fn testbed22_with_models(
    seed: u64,
    wifi: &WifiCapacityModel,
    plc: &PlcCapacityModel,
) -> Testbed22 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let mediums = vec![Medium::WIFI1, Medium::WIFI2, Medium::Plc];
    let nodes: Vec<NodeId> = NODE_POSITIONS
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            b.add_labeled_node(
                Point::new(x, y),
                mediums.clone(),
                Some(PanelId(0)),
                format!("node{}", i + 1),
            )
        })
        .collect();

    for (i, &na) in nodes.iter().enumerate() {
        for &nb in nodes.iter().skip(i + 1) {
            let dist = b.peek_node(na).pos.distance(b.peek_node(nb).pos);
            if let Some(cap) = wifi.sample(&mut rng, dist) {
                b.add_duplex(na, nb, Medium::WIFI1, cap);
                // The second channel mirrors the first: same band width,
                // same capacities (§5.1 / §6.1).
                b.add_duplex(na, nb, Medium::WIFI2, cap);
            }
            if let Some(cap) = plc.sample(&mut rng, dist) {
                b.add_duplex(na, nb, Medium::Plc, cap);
            }
        }
    }
    Testbed22 { net: b.build() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_22_triple_interface_nodes() {
        let t = testbed22(1);
        assert_eq!(t.net.node_count(), 22);
        for n in t.net.nodes() {
            assert_eq!(n.mediums.len(), 3);
            assert!(n.has_wifi() && n.has_plc());
        }
    }

    #[test]
    fn positions_fit_the_floor() {
        for &(x, y) in &NODE_POSITIONS {
            assert!((0.0..=FLOOR_WIDTH_M).contains(&x));
            assert!((0.0..=FLOOR_HEIGHT_M).contains(&y));
        }
    }

    #[test]
    fn paper_numbering_maps_to_ids() {
        let t = testbed22(1);
        assert_eq!(t.node(1), NodeId(0));
        assert_eq!(t.node(22), NodeId(21));
    }

    #[test]
    #[should_panic(expected = "numbered 1..=22")]
    fn node_zero_is_rejected() {
        testbed22(1).node(0);
    }

    #[test]
    fn floor_is_not_one_wifi_hop() {
        // Node 1 (NW) and node 22 (SE) are beyond WiFi range of each other.
        let t = testbed22(1);
        let d = t.net.node_distance(t.node(1), t.node(22));
        assert!(d > 35.0, "{d}");
        assert!(t.net.find_link(t.node(1), t.node(22), Medium::WIFI1).is_none());
    }

    #[test]
    fn fig9_nodes_are_reachable_as_in_the_paper() {
        // Flow 1-13: no direct WiFi link (distance > 35 m) but a direct PLC
        // link (distance < 50 m), and node 4 within WiFi range of node 1.
        let t = testbed22(1);
        let (n1, n4, n13) = (t.node(1), t.node(4), t.node(13));
        assert!(t.net.node_distance(n1, n13) > 35.0);
        assert!(t.net.node_distance(n1, n13) < 50.0);
        assert!(t.net.find_link(n1, n13, Medium::Plc).is_some());
        assert!(t.net.find_link(n1, n4, Medium::WIFI1).is_some());
    }

    #[test]
    fn capacities_are_reproducible_per_seed() {
        let a = testbed22(7);
        let b = testbed22(7);
        let c = testbed22(8);
        assert_eq!(a.net.link_count(), b.net.link_count());
        for (la, lb) in a.net.links().iter().zip(b.net.links()) {
            assert_eq!(la.capacity_mbps, lb.capacity_mbps);
        }
        // A different seed changes at least one capacity.
        let differs = a
            .net
            .links()
            .iter()
            .zip(c.net.links())
            .any(|(x, y)| x.capacity_mbps != y.capacity_mbps);
        assert!(differs);
    }

    #[test]
    fn wifi_channels_mirror_capacities() {
        let t = testbed22(3);
        for l in t.net.links() {
            if l.medium == Medium::WIFI1 {
                let twin = t.net.find_link(l.from, l.to, Medium::WIFI2).unwrap();
                assert_eq!(twin.capacity_mbps, l.capacity_mbps);
            }
        }
    }
}
