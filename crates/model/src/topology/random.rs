//! Randomized residential and enterprise topologies (§5.1).
//!
//! *Residential*: a 50×30 m rectangle with 10 nodes dropped uniformly at
//! random; 5 are hybrid PLC/WiFi (gateways, extenders, desktops, TVs, …) and
//! 5 are WiFi-only (phones, laptops). One electrical panel.
//!
//! *Enterprise*: a 100×60 m rectangle with 20 nodes; 10 PLC/WiFi APs on a
//! 10×10 m grid (jittered), 10 WiFi-only clients uniform at random. The
//! building has two electrical panels splitting the floor in half, and a PLC
//! link exists only between nodes on the same panel.
//!
//! For the multi-channel-WiFi baselines every WiFi node carries a second
//! WiFi interface whose links mirror the channel-1 links with identical
//! capacities ("the two channels have the same bandwidth, consequently the
//! same link capacities", §5.1).

use crate::rng::Rng;

use crate::capacity::{CapacityModel, PlcCapacityModel, WifiCapacityModel};
use crate::geometry::{Point, Rect};
use crate::graph::{Network, NetworkBuilder};
use crate::ids::{NodeId, PanelId};
use crate::medium::Medium;

/// Which §5.1 topology class to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyClass {
    Residential,
    Enterprise,
}

/// Generation parameters; defaults follow §5.1.
#[derive(Debug, Clone)]
pub struct RandomTopologyConfig {
    pub class: TopologyClass,
    /// Whether to add a mirrored second WiFi channel on every WiFi interface
    /// (needed by the MP-mWiFi baseline; harmless otherwise since schemes
    /// select which mediums they use).
    pub second_wifi_channel: bool,
    /// Relative capacity asymmetry between a link's two directions: each
    /// direction's capacity is scaled by `1 ± U(0, asymmetry)`. Zero (the
    /// default, matching the calibrated experiment results) keeps links
    /// symmetric.
    pub asymmetry: f64,
    pub wifi: WifiCapacityModel,
    pub plc: PlcCapacityModel,
}

impl RandomTopologyConfig {
    /// Default configuration for a topology class.
    pub fn new(class: TopologyClass) -> Self {
        RandomTopologyConfig {
            class,
            second_wifi_channel: true,
            asymmetry: 0.0,
            wifi: WifiCapacityModel::default(),
            plc: PlcCapacityModel::default(),
        }
    }

    /// The deployment rectangle.
    pub fn area(&self) -> Rect {
        match self.class {
            TopologyClass::Residential => Rect::new(50.0, 30.0),
            TopologyClass::Enterprise => Rect::new(100.0, 60.0),
        }
    }

    /// Number of electrical panels ("we assume that buildings of 100×60 m
    /// typically employ two panels").
    pub fn panels(&self) -> u32 {
        match self.class {
            TopologyClass::Residential => 1,
            TopologyClass::Enterprise => 2,
        }
    }
}

/// A generated random topology with its node-role bookkeeping.
#[derive(Debug, Clone)]
pub struct RandomTopology {
    pub net: Network,
    /// Hybrid PLC/WiFi nodes — eligible flow sources (§5.1: "the source of a
    /// flow is chosen among the PLC/WiFi nodes").
    pub hybrid_nodes: Vec<NodeId>,
    /// WiFi-only nodes.
    pub wifi_only_nodes: Vec<NodeId>,
}

impl RandomTopology {
    /// Draws a random (source, destination) flow pair: source uniform among
    /// hybrid nodes, destination uniform among all other nodes (the paper
    /// excludes flows between two WiFi-only nodes, which source-side
    /// hybridness already guarantees).
    pub fn sample_flow<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        let src = self.hybrid_nodes[rng.gen_range(0..self.hybrid_nodes.len())];
        loop {
            let all = self.net.node_count();
            let dst = NodeId(rng.gen_range(0..all) as u32);
            if dst != src {
                return (src, dst);
            }
        }
    }
}

/// Generates a residential topology.
pub fn residential<R: Rng + ?Sized>(rng: &mut R) -> RandomTopology {
    generate(rng, &RandomTopologyConfig::new(TopologyClass::Residential))
}

/// Generates an enterprise topology.
pub fn enterprise<R: Rng + ?Sized>(rng: &mut R) -> RandomTopology {
    generate(rng, &RandomTopologyConfig::new(TopologyClass::Enterprise))
}

/// Generates a topology per `config`.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: &RandomTopologyConfig) -> RandomTopology {
    let area = config.area();
    let mut b = NetworkBuilder::new();
    let mut hybrid_nodes = Vec::new();
    let mut wifi_only_nodes = Vec::new();

    let mut wifi_mediums = vec![Medium::WIFI1];
    if config.second_wifi_channel {
        wifi_mediums.push(Medium::WIFI2);
    }
    let mut hybrid_mediums = wifi_mediums.clone();
    hybrid_mediums.push(Medium::Plc);

    match config.class {
        TopologyClass::Residential => {
            for i in 0..10 {
                let pos = area.sample_uniform(rng);
                if i < 5 {
                    let id = b.add_labeled_node(
                        pos,
                        hybrid_mediums.clone(),
                        Some(PanelId(0)),
                        format!("hybrid{i}"),
                    );
                    hybrid_nodes.push(id);
                } else {
                    let id =
                        b.add_labeled_node(pos, wifi_mediums.clone(), None, format!("wifi{i}"));
                    wifi_only_nodes.push(id);
                }
            }
        }
        TopologyClass::Enterprise => {
            // 10 PLC/WiFi APs "randomly located on a 10×10 m grid": snap a
            // uniform draw to the grid, rejecting duplicates.
            let mut taken: Vec<(i64, i64)> = Vec::new();
            for i in 0..10 {
                let cell = loop {
                    let p = area.sample_uniform(rng);
                    let cell = ((p.x / 10.0).floor() as i64, (p.y / 10.0).floor() as i64);
                    if !taken.contains(&cell) {
                        break cell;
                    }
                };
                taken.push(cell);
                let pos = Point::new(cell.0 as f64 * 10.0 + 5.0, cell.1 as f64 * 10.0 + 5.0);
                let panel = PanelId(area.vertical_slice(pos, config.panels()));
                let id =
                    b.add_labeled_node(pos, hybrid_mediums.clone(), Some(panel), format!("ap{i}"));
                hybrid_nodes.push(id);
            }
            for i in 0..10 {
                let pos = area.sample_uniform(rng);
                let id = b.add_labeled_node(pos, wifi_mediums.clone(), None, format!("client{i}"));
                wifi_only_nodes.push(id);
            }
        }
    }

    // Links: WiFi within 35 m (both channels with identical capacity), PLC
    // within 50 m and same panel.
    let positions: Vec<(NodeId, Point, bool, Option<PanelId>)> = hybrid_nodes
        .iter()
        .map(|&n| (n, b_node_pos(&b, n), true, b_node_panel(&b, n)))
        .chain(wifi_only_nodes.iter().map(|&n| (n, b_node_pos(&b, n), false, None)))
        .collect();

    for (i, &(na, pa, hybrid_a, panel_a)) in positions.iter().enumerate() {
        for &(nb, pb, hybrid_b, panel_b) in positions.iter().skip(i + 1) {
            let dist = pa.distance(pb);
            let skew = |cap: f64, rng: &mut R| {
                if config.asymmetry > 0.0 {
                    let s = rng.gen_range(0.0..=config.asymmetry);
                    (cap * (1.0 + s), cap * (1.0 - s))
                } else {
                    (cap, cap)
                }
            };
            if let Some(cap) = config.wifi.sample(rng, dist) {
                let (ab, ba) = skew(cap, rng);
                b.add_duplex_asymmetric(na, nb, Medium::WIFI1, ab, ba);
                if config.second_wifi_channel {
                    // Mirrored capacity on the orthogonal channel.
                    b.add_duplex_asymmetric(na, nb, Medium::WIFI2, ab, ba);
                }
            }
            if hybrid_a && hybrid_b && panel_a == panel_b {
                if let Some(cap) = config.plc.sample(rng, dist) {
                    let (ab, ba) = skew(cap, rng);
                    b.add_duplex_asymmetric(na, nb, Medium::Plc, ab, ba);
                }
            }
        }
    }

    RandomTopology { net: b.build(), hybrid_nodes, wifi_only_nodes }
}

// NetworkBuilder does not expose nodes pre-build; these helpers peek through
// a temporary build-free path by reconstructing from ids. To keep the
// builder API minimal we instead track positions here.
fn b_node_pos(b: &NetworkBuilder, id: NodeId) -> Point {
    b.peek_node(id).pos
}

fn b_node_panel(b: &NetworkBuilder, id: NodeId) -> Option<PanelId> {
    b.peek_node(id).panel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;
    use crate::rng::StdRng;

    #[test]
    fn residential_has_ten_nodes_half_hybrid() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = residential(&mut rng);
        assert_eq!(t.net.node_count(), 10);
        assert_eq!(t.hybrid_nodes.len(), 5);
        assert_eq!(t.wifi_only_nodes.len(), 5);
    }

    #[test]
    fn enterprise_has_twenty_nodes_and_two_panels() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = enterprise(&mut rng);
        assert_eq!(t.net.node_count(), 20);
        assert_eq!(t.hybrid_nodes.len(), 10);
        let panels: std::collections::BTreeSet<_> =
            t.hybrid_nodes.iter().filter_map(|&n| t.net.node(n).panel).collect();
        assert!(!panels.is_empty() && panels.len() <= 2);
    }

    #[test]
    fn wifi_links_respect_radius() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = residential(&mut rng);
        for l in t.net.links() {
            if l.medium.is_wifi() {
                assert!(t.net.node_distance(l.from, l.to) <= 35.0 + 1e-9);
            }
        }
    }

    #[test]
    fn plc_links_respect_radius_and_panel() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let t = enterprise(&mut rng);
            for l in t.net.links() {
                if l.medium.is_plc() {
                    assert!(t.net.node_distance(l.from, l.to) <= 50.0 + 1e-9);
                    assert_eq!(t.net.node(l.from).panel, t.net.node(l.to).panel);
                    assert!(t.net.node(l.from).panel.is_some());
                }
            }
        }
    }

    #[test]
    fn second_channel_mirrors_first() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = residential(&mut rng);
        for l in t.net.links() {
            if l.medium == Medium::WIFI1 {
                let twin = t
                    .net
                    .find_link(l.from, l.to, Medium::WIFI2)
                    .expect("every ch1 link has a ch2 twin");
                assert_eq!(twin.capacity_mbps, l.capacity_mbps);
            }
        }
    }

    #[test]
    fn flow_sources_are_hybrid() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = residential(&mut rng);
        for _ in 0..100 {
            let (src, dst) = t.sample_flow(&mut rng);
            assert!(t.hybrid_nodes.contains(&src));
            assert_ne!(src, dst);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t1 = residential(&mut StdRng::seed_from_u64(9));
        let t2 = residential(&mut StdRng::seed_from_u64(9));
        assert_eq!(t1.net.link_count(), t2.net.link_count());
        for (a, b) in t1.net.links().iter().zip(t2.net.links()) {
            assert_eq!(a.capacity_mbps, b.capacity_mbps);
        }
    }

    #[test]
    fn enterprise_aps_sit_on_grid_centers() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = enterprise(&mut rng);
        for &ap in &t.hybrid_nodes {
            let p = t.net.node(ap).pos;
            assert!((p.x - 5.0).rem_euclid(10.0).abs() < 1e-9);
            assert!((p.y - 5.0).rem_euclid(10.0).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod asymmetry_tests {
    use super::*;
    use crate::rng::SeedableRng;
    use crate::rng::StdRng;

    #[test]
    fn asymmetric_links_differ_per_direction_but_share_a_mean() {
        let mut config = RandomTopologyConfig::new(TopologyClass::Residential);
        config.asymmetry = 0.3;
        let mut rng = StdRng::seed_from_u64(11);
        let topo = generate(&mut rng, &config);
        let mut any_skew = false;
        for l in topo.net.links() {
            let rev = topo.net.link(l.reverse.expect("duplex"));
            let mean = 0.5 * (l.capacity_mbps + rev.capacity_mbps);
            assert!(l.capacity_mbps <= mean * 1.3 + 1e-9);
            assert!(l.capacity_mbps >= mean * 0.7 - 1e-9);
            if (l.capacity_mbps - rev.capacity_mbps).abs() > 1e-9 {
                any_skew = true;
            }
        }
        assert!(any_skew, "asymmetry 0.3 must skew at least one link");
    }

    #[test]
    fn zero_asymmetry_keeps_links_symmetric() {
        let mut rng = StdRng::seed_from_u64(12);
        let topo = residential(&mut rng);
        for l in topo.net.links() {
            let rev = topo.net.link(l.reverse.expect("duplex"));
            assert_eq!(l.capacity_mbps, rev.capacity_mbps);
        }
    }
}
