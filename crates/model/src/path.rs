//! Routes (paths) through the multigraph, and the per-path rate computations
//! of §3.2.
//!
//! For a path `P` and a link `l ∈ P`, the maximum traffic rate supported by
//! `l` is `R(l, P) = (Σ_{l'∈ I_l ∩ P} d_{l'})⁻¹` (Lemma 1 applied to the
//! links of the path that contend with `l`), and the end-to-end capacity of
//! the path is `R(P) = min_{l∈P} R(l, P)`. When traffic flows on `P` at rate
//! `R(P)`, a link `l` (of the whole network, not only of `P`) keeps the idle
//! fraction `r(l, P) = 1 − Σ_{l'∈ I_l ∩ P} R(P)·d_{l'}`.

use crate::graph::Network;
use crate::ids::{LinkId, NodeId};
use crate::interference::InterferenceMap;

/// A loop-free route: an ordered sequence of directed links where each link
/// starts at the previous link's head.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    links: Vec<LinkId>,
}

/// Errors returned by [`Path::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path has no links.
    Empty,
    /// Two consecutive links do not share the intermediate node.
    Disconnected { at_hop: usize },
    /// The path visits a node twice.
    Loop { node: NodeId },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no links"),
            PathError::Disconnected { at_hop } => {
                write!(f, "links at hops {} and {} do not connect", at_hop, at_hop + 1)
            }
            PathError::Loop { node } => write!(f, "path visits node {node} twice"),
        }
    }
}

impl std::error::Error for PathError {}

/// Precomputed self-interference incidence of one path (see
/// [`Path::incidence`]): `masks[i]` has bit `j` set iff hop `j` belongs to
/// the interference domain of hop `i`. Valid only for the path (and the
/// interference map) it was computed from; capacities may change freely —
/// interference is geometric and capacity-independent.
#[derive(Debug, Clone, Default)]
pub struct PathIncidence {
    masks: Vec<u64>,
}

impl PathIncidence {
    /// The per-hop incidence masks.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }
}

impl Path {
    /// Builds a validated path from a sequence of link ids.
    pub fn new(net: &Network, links: Vec<LinkId>) -> Result<Self, PathError> {
        if links.is_empty() {
            return Err(PathError::Empty);
        }
        let mut visited = vec![net.link(links[0]).from];
        for (hop, pair) in links.windows(2).enumerate() {
            let (a, b) = (net.link(pair[0]), net.link(pair[1]));
            if a.to != b.from {
                return Err(PathError::Disconnected { at_hop: hop });
            }
        }
        for &l in &links {
            let node = net.link(l).to;
            if visited.contains(&node) {
                return Err(PathError::Loop { node });
            }
            visited.push(node);
        }
        Ok(Path { links })
    }

    /// Builds a path without validation (for internal use where the sequence
    /// is constructed correct by construction, e.g. Dijkstra back-tracking).
    pub fn from_links_unchecked(links: Vec<LinkId>) -> Self {
        debug_assert!(!links.is_empty());
        Path { links }
    }

    /// The links of the path, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// The source node.
    pub fn source(&self, net: &Network) -> NodeId {
        net.link(self.links[0]).from
    }

    /// The destination node.
    pub fn destination(&self, net: &Network) -> NodeId {
        // empower-lint: allow(D005) — `Path::new` rejects empty link
        // lists (`PathError::Empty`), so `links` is always non-empty.
        net.link(*self.links.last().expect("paths are non-empty")).to
    }

    /// The ordered list of nodes visited, source first.
    pub fn nodes(&self, net: &Network) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.links.len() + 1);
        nodes.push(self.source(net));
        nodes.extend(self.links.iter().map(|&l| net.link(l).to));
        nodes
    }

    /// True if the path traverses `link`.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// `R(l, P)`: the maximum rate on `P` supported by `l`, i.e.
    /// `(Σ_{l'∈I_l∩P} d_{l'})⁻¹`. Zero if any contending path link is dead.
    pub fn rate_limit_at(&self, net: &Network, imap: &InterferenceMap, link: LinkId) -> f64 {
        let mut sum = 0.0;
        for l in imap.domain_intersect(link, &self.links) {
            let cost = net.link(l).cost();
            if !cost.is_finite() {
                return 0.0;
            }
            sum += cost;
        }
        if sum <= 0.0 {
            0.0
        } else {
            1.0 / sum
        }
    }

    /// `R(P) = min_{l∈P} R(l, P)`: the end-to-end capacity of the path under
    /// intra-path interference.
    pub fn capacity(&self, net: &Network, imap: &InterferenceMap) -> f64 {
        self.links
            .iter()
            .map(|&l| self.rate_limit_at(net, imap, l))
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    /// The bottleneck link `l₀ = argmin_{l∈P} R(l, P)`.
    ///
    /// Rate limits come from capacities and idle fractions, both finite
    /// and non-negative, so NaN cannot occur; `total_cmp` keeps the
    /// ordering total (and panic-free) regardless.
    pub fn bottleneck(&self, net: &Network, imap: &InterferenceMap) -> LinkId {
        *self
            .links
            .iter()
            .min_by(|&&a, &&b| {
                self.rate_limit_at(net, imap, a).total_cmp(&self.rate_limit_at(net, imap, b))
            })
            // empower-lint: allow(D005) — `Path::new` rejects empty link
            // lists (`PathError::Empty`), so `links` is always non-empty.
            .expect("paths are non-empty")
    }

    /// `r(l, P) = 1 − Σ_{l'∈I_l∩P} R(P)·d_{l'}`: the idle-time fraction left
    /// on an arbitrary network link `l` when `P` carries rate `rate`
    /// (normally `R(P)`). Clamped to `[0, 1]`.
    pub fn residual_idle_fraction(
        &self,
        net: &Network,
        imap: &InterferenceMap,
        link: LinkId,
        rate: f64,
    ) -> f64 {
        self.residual_idle_fraction_masked(net, imap.incidence_mask(link, &self.links), rate)
    }

    /// [`Path::residual_idle_fraction`] with the `I_l ∩ P` membership
    /// precomputed as a bitmask over path positions (bit `j` ⇔ `links[j] ∈
    /// I_l`, see [`InterferenceMap::incidence_mask`]) — the bitwise airtime
    /// accounting `update(P, G)` runs per affected link. Evaluation order is
    /// path order, so results are bit-identical to the scanning form.
    pub fn residual_idle_fraction_masked(&self, net: &Network, mask: u64, rate: f64) -> f64 {
        let mut used = 0.0;
        let mut rest = mask;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let cost = net.link(self.links[j]).cost();
            if cost.is_finite() {
                used += rate * cost;
            } else {
                return 0.0;
            }
        }
        (1.0 - used).clamp(0.0, 1.0)
    }

    /// Precomputes this path's *self*-incidence — for every hop `i` the
    /// bitmask of hops `j` with `links[j] ∈ I_{links[i]}` — so repeated
    /// capacity evaluations ([`Path::capacity_with`]) are pure bit-loops
    /// with no interference-map queries.
    pub fn incidence(&self, imap: &InterferenceMap) -> PathIncidence {
        PathIncidence {
            masks: self.links.iter().map(|&l| imap.incidence_mask(l, &self.links)).collect(),
        }
    }

    /// `R(P)` evaluated from a precomputed [`PathIncidence`]; bit-identical
    /// to [`Path::capacity`] (same per-hop summation order).
    pub fn capacity_with(&self, net: &Network, inc: &PathIncidence) -> f64 {
        debug_assert_eq!(inc.masks.len(), self.links.len(), "incidence from another path");
        inc.masks
            .iter()
            .map(|&mask| {
                let mut sum = 0.0;
                let mut rest = mask;
                while rest != 0 {
                    let j = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let cost = net.link(self.links[j]).cost();
                    if !cost.is_finite() {
                        return 0.0;
                    }
                    sum += cost;
                }
                if sum <= 0.0 {
                    0.0
                } else {
                    1.0 / sum
                }
            })
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    /// Sum of link costs `Σ d_l` — the raw (CSC-free) path weight.
    pub fn cost(&self, net: &Network) -> f64 {
        self.links.iter().map(|&l| net.link(l).cost()).sum()
    }

    /// Human-readable rendering, e.g. `n0 -wifi1-> n1 -plc-> n2`.
    pub fn render(&self, net: &Network) -> String {
        let mut s = self.source(net).to_string();
        for &l in &self.links {
            let link = net.link(l);
            s.push_str(&format!(" -{}-> {}", link.medium, link.to));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::NetworkBuilder;
    use crate::interference::{InterferenceModel, SharedMedium};
    use crate::medium::Medium;

    /// The Figure 1 scenario: gateway a, extender b, client c.
    /// PLC a-b 10 Mbps, WiFi a-b 15 Mbps, WiFi b-c 30 Mbps.
    fn fig1() -> (Network, Vec<LinkId>) {
        let mut b = NetworkBuilder::new();
        let hybrid = vec![Medium::WIFI1, Medium::Plc];
        let a = b.add_node(Point::new(0.0, 0.0), hybrid.clone(), Some(crate::ids::PanelId(0)));
        let ext = b.add_node(Point::new(10.0, 0.0), hybrid, Some(crate::ids::PanelId(0)));
        let c = b.add_node(Point::new(20.0, 0.0), vec![Medium::WIFI1], None);
        let (plc_ab, _) = b.add_duplex(a, ext, Medium::Plc, 10.0);
        let (wifi_ab, _) = b.add_duplex(a, ext, Medium::WIFI1, 15.0);
        let (wifi_bc, _) = b.add_duplex(ext, c, Medium::WIFI1, 30.0);
        (b.build(), vec![plc_ab, wifi_ab, wifi_bc])
    }

    #[test]
    fn path_validation_rejects_disconnected() {
        let (net, ids) = fig1();
        // plc a->b then wifi a->b: second link starts at a, not b.
        let err = Path::new(&net, vec![ids[0], ids[1]]).unwrap_err();
        assert_eq!(err, PathError::Disconnected { at_hop: 0 });
    }

    #[test]
    fn path_validation_rejects_loops() {
        let (net, ids) = fig1();
        let rev = net.link(ids[1]).reverse.unwrap();
        // plc a->b then wifi b->a revisits a.
        let err = Path::new(&net, vec![ids[0], rev]).unwrap_err();
        assert!(matches!(err, PathError::Loop { .. }));
    }

    #[test]
    fn path_validation_rejects_empty() {
        let (net, _) = fig1();
        assert_eq!(Path::new(&net, vec![]).unwrap_err(), PathError::Empty);
    }

    #[test]
    fn hybrid_route_capacity_is_bottleneck_capacity() {
        // Route 1 of Fig. 1: PLC a->b then WiFi b->c. No intra-path
        // interference, so R = min(10, 30) = 10 Mbps.
        let (net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        let p = Path::new(&net, vec![ids[0], ids[2]]).unwrap();
        assert!((p.capacity(&net, &imap) - 10.0).abs() < 1e-9);
        assert_eq!(p.bottleneck(&net, &imap), ids[0]);
    }

    #[test]
    fn self_interfering_route_shares_airtime() {
        // Route 2 of Fig. 1: WiFi a->b (15) then WiFi b->c (30), same
        // channel: R = 1 / (1/15 + 1/30) = 10 Mbps.
        let (net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        let p = Path::new(&net, vec![ids[1], ids[2]]).unwrap();
        assert!((p.capacity(&net, &imap) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_back_of_envelope_residuals() {
        // After Route 1 (PLC a->b + WiFi b->c) is loaded at 10 Mbps, the WiFi
        // medium keeps 1 − 10/30 = 2/3 idle time on both WiFi links; solving
        // x(1/15 + 1/30) = 2/3 gives the paper's x ≈ 6.6 Mbps on Route 2.
        let (net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        let route1 = Path::new(&net, vec![ids[0], ids[2]]).unwrap();
        let r = route1.residual_idle_fraction(&net, &imap, ids[1], 10.0);
        assert!((r - 2.0 / 3.0).abs() < 1e-9);
        let x = r / (1.0 / 15.0 + 1.0 / 30.0);
        assert!((x - 20.0 / 3.0).abs() < 1e-9); // 6.67 Mbps
    }

    #[test]
    fn residual_is_zero_at_bottleneck() {
        let (net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        let p = Path::new(&net, vec![ids[1], ids[2]]).unwrap();
        let rate = p.capacity(&net, &imap);
        // Both links of a 2-link single-domain path are bottlenecked jointly.
        let r1 = p.residual_idle_fraction(&net, &imap, ids[1], rate);
        assert!(r1.abs() < 1e-9);
    }

    #[test]
    fn nodes_and_render() {
        let (net, ids) = fig1();
        let p = Path::new(&net, vec![ids[0], ids[2]]).unwrap();
        let nodes = p.nodes(&net);
        assert_eq!(nodes.len(), 3);
        assert_eq!(p.render(&net), "n0 -plc-> n1 -wifi1-> n2");
        assert_eq!(p.source(&net), nodes[0]);
        assert_eq!(p.destination(&net), nodes[2]);
    }

    #[test]
    fn dead_link_kills_capacity() {
        let (mut net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        let p = Path::new(&net, vec![ids[0], ids[2]]).unwrap();
        net.set_capacity(ids[2], 0.0);
        assert_eq!(p.capacity(&net, &imap), 0.0);
    }

    #[test]
    fn capacity_with_incidence_is_bit_identical() {
        let (mut net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        for links in [vec![ids[0], ids[2]], vec![ids[1], ids[2]]] {
            let p = Path::new(&net, links).unwrap();
            let inc = p.incidence(&imap);
            assert_eq!(p.capacity_with(&net, &inc).to_bits(), p.capacity(&net, &imap).to_bits());
            // Incidence survives capacity changes (interference is
            // geometric), including a dead link on the path.
            net.set_capacity(ids[2], 17.0);
            assert_eq!(p.capacity_with(&net, &inc).to_bits(), p.capacity(&net, &imap).to_bits());
            net.set_capacity(ids[2], 0.0);
            assert_eq!(p.capacity_with(&net, &inc), 0.0);
            net.set_capacity(ids[2], 30.0);
        }
    }

    #[test]
    fn masked_residual_matches_scanning_residual() {
        let (net, ids) = fig1();
        let imap = SharedMedium.build_map(&net);
        let p = Path::new(&net, vec![ids[0], ids[2]]).unwrap();
        let rate = p.capacity(&net, &imap);
        for l in net.links() {
            let mask = imap.incidence_mask(l.id, p.links());
            assert_eq!(
                p.residual_idle_fraction_masked(&net, mask, rate).to_bits(),
                p.residual_idle_fraction(&net, &imap, l.id, rate).to_bits()
            );
        }
    }
}
