//! Property tests of the network-model substrate over randomized
//! topologies. Each property runs over a deterministic sweep of seeds so
//! failures reproduce exactly (the in-tree RNG replaces proptest; the
//! failing seed is in the assertion message).

use empower_model::rng::{Rng, SeedableRng, StdRng};
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{
    lemma1_rmax, AirtimeLedger, CarrierSense, InterferenceMap, InterferenceModel, LinkId,
    SharedMedium,
};

const CASES: u64 = 32;

fn random_net(seed: u64, enterprise: bool) -> empower_model::Network {
    let class = if enterprise { TopologyClass::Enterprise } else { TopologyClass::Residential };
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&mut rng, &RandomTopologyConfig::new(class)).net
}

/// Interference maps are symmetric and reflexive, and cross-medium
/// pairs never interfere.
#[test]
fn interference_maps_are_well_formed() {
    let mut meta = StdRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let seed = meta.gen_range(0u64..10_000);
        let enterprise = meta.gen_bool(0.5);
        let net = random_net(seed, enterprise);
        for model in [&CarrierSense::default() as &dyn InterferenceModel, &SharedMedium] {
            let map = InterferenceMap::build(&net, model);
            for a in net.links() {
                assert!(map.interferes(a.id, a.id), "seed {seed}: not reflexive at {}", a.id);
                for b in net.links() {
                    assert_eq!(
                        map.interferes(a.id, b.id),
                        map.interferes(b.id, a.id),
                        "seed {seed}: asymmetric at {} / {}",
                        a.id,
                        b.id
                    );
                    if map.interferes(a.id, b.id) && a.id != b.id {
                        assert!(
                            a.medium.may_interfere_with(b.medium),
                            "seed {seed}: cross-medium interference {} / {}",
                            a.medium,
                            b.medium
                        );
                    }
                }
            }
        }
    }
}

/// Lemma 1 is monotone: adding a contender can only lower R_max.
#[test]
fn lemma1_is_monotone() {
    let mut meta = StdRng::seed_from_u64(0xA002);
    for case in 0..CASES {
        let n = meta.gen_range(1usize..12);
        let costs: Vec<f64> = (0..n).map(|_| meta.gen_range(0.005f64..1.0)).collect();
        let full = lemma1_rmax(&costs);
        for k in 1..costs.len() {
            let partial = lemma1_rmax(&costs[..k]);
            assert!(partial >= full - 1e-12, "case {case}: dropping contenders lowered R_max");
        }
    }
}

/// The shared-medium model upper-bounds carrier sensing: every
/// carrier-sense conflict is also a shared-medium conflict, so the
/// shared-medium feasible region is contained in the carrier-sense one.
#[test]
fn shared_medium_dominates_carrier_sense() {
    let mut meta = StdRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let seed = meta.gen_range(0u64..10_000);
        let net = random_net(seed, true);
        let cs = CarrierSense::default().build_map(&net);
        let sm = SharedMedium.build_map(&net);
        for a in net.links() {
            for &b in cs.domain(a.id) {
                assert!(sm.interferes(a.id, b), "seed {seed}: CS conflict not in SM");
            }
        }
    }
}

/// Airtime ledgers are additive: the domain airtime of the sum of two
/// traffic patterns equals the sum of the individual domain airtimes.
#[test]
fn airtime_is_additive() {
    let mut meta = StdRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let seed = meta.gen_range(0u64..10_000);
        let r1 = meta.gen_range(0.1f64..40.0);
        let r2 = meta.gen_range(0.1f64..40.0);
        let net = random_net(seed, false);
        let imap = CarrierSense::default().build_map(&net);
        if net.link_count() < 2 {
            continue;
        }
        let la = LinkId(0);
        let lb = LinkId((net.link_count() / 2) as u32);
        let mut both = AirtimeLedger::new(&net);
        both.add_link_traffic(la, r1);
        both.add_link_traffic(lb, r2);
        let mut only_a = AirtimeLedger::new(&net);
        only_a.add_link_traffic(la, r1);
        let mut only_b = AirtimeLedger::new(&net);
        only_b.add_link_traffic(lb, r2);
        for l in net.links() {
            let sum =
                only_a.domain_airtime(&net, &imap, l.id) + only_b.domain_airtime(&net, &imap, l.id);
            let joint = both.domain_airtime(&net, &imap, l.id);
            assert!((sum - joint).abs() < 1e-9, "seed {seed}: ledger not additive");
        }
    }
}
