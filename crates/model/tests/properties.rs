//! Property tests of the network-model substrate over randomized
//! topologies.

use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{
    lemma1_rmax, AirtimeLedger, CarrierSense, InterferenceMap, InterferenceModel, LinkId,
    SharedMedium,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_net(seed: u64, enterprise: bool) -> empower_model::Network {
    let class = if enterprise { TopologyClass::Enterprise } else { TopologyClass::Residential };
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&mut rng, &RandomTopologyConfig::new(class)).net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interference maps are symmetric and reflexive, and cross-medium
    /// pairs never interfere.
    #[test]
    fn interference_maps_are_well_formed(seed in 0u64..10_000, enterprise in any::<bool>()) {
        let net = random_net(seed, enterprise);
        for model in [&CarrierSense::default() as &dyn InterferenceModel, &SharedMedium] {
            let map = InterferenceMap::build(&net, model);
            for a in net.links() {
                prop_assert!(map.interferes(a.id, a.id), "not reflexive at {}", a.id);
                for b in net.links() {
                    prop_assert_eq!(
                        map.interferes(a.id, b.id),
                        map.interferes(b.id, a.id),
                        "asymmetric at {} / {}", a.id, b.id
                    );
                    if map.interferes(a.id, b.id) && a.id != b.id {
                        prop_assert!(
                            a.medium.may_interfere_with(b.medium),
                            "cross-medium interference {} / {}", a.medium, b.medium
                        );
                    }
                }
            }
        }
    }

    /// Lemma 1 is monotone: adding a contender can only lower R_max.
    #[test]
    fn lemma1_is_monotone(costs in prop::collection::vec(0.005f64..1.0, 1..12)) {
        let full = lemma1_rmax(&costs);
        for k in 1..costs.len() {
            let partial = lemma1_rmax(&costs[..k]);
            prop_assert!(partial >= full - 1e-12, "dropping contenders lowered R_max");
        }
    }

    /// The shared-medium model upper-bounds carrier sensing: every
    /// carrier-sense conflict is also a shared-medium conflict, so the
    /// shared-medium feasible region is contained in the carrier-sense one.
    #[test]
    fn shared_medium_dominates_carrier_sense(seed in 0u64..10_000) {
        let net = random_net(seed, true);
        let cs = CarrierSense::default().build_map(&net);
        let sm = SharedMedium.build_map(&net);
        for a in net.links() {
            for &b in cs.domain(a.id) {
                prop_assert!(sm.interferes(a.id, b));
            }
        }
    }

    /// Airtime ledgers are additive: the domain airtime of the sum of two
    /// traffic patterns equals the sum of the individual domain airtimes.
    #[test]
    fn airtime_is_additive(seed in 0u64..10_000, r1 in 0.1f64..40.0, r2 in 0.1f64..40.0) {
        let net = random_net(seed, false);
        let imap = CarrierSense::default().build_map(&net);
        if net.link_count() < 2 {
            return Ok(());
        }
        let la = LinkId(0);
        let lb = LinkId((net.link_count() / 2) as u32);
        let mut both = AirtimeLedger::new(&net);
        both.add_link_traffic(la, r1);
        both.add_link_traffic(lb, r2);
        let mut only_a = AirtimeLedger::new(&net);
        only_a.add_link_traffic(la, r1);
        let mut only_b = AirtimeLedger::new(&net);
        only_b.add_link_traffic(lb, r2);
        for l in net.links() {
            let sum = only_a.domain_airtime(&net, &imap, l.id)
                + only_b.domain_airtime(&net, &imap, l.id);
            let joint = both.domain_airtime(&net, &imap, l.id);
            prop_assert!((sum - joint).abs() < 1e-9);
        }
    }
}
