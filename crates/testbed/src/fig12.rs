//! §6.4 / Fig. 12: TCP over EMPoWER, time series for Flow 9-13.
//!
//! The paper sends TCP traffic for 500 s over the best single path without
//! the EMPoWER controller (SP-w/o-CC), then 500 s with the full stack
//! (congestion controller + both routes + delay equalization), δ = 0.3. The
//! figure shows the per-route rates the controller admits and the
//! throughput the TCP receiver sees.

use empower_core::{RunConfig, Scheme};
use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::Telemetry;

/// Phase length, seconds (500 in the paper).
pub const PHASE_SECS: f64 = 500.0;
/// δ for TCP coexistence (§6.4 finds 0.3 works best).
pub const TCP_DELTA: f64 = 0.3;

/// The two phases' series.
#[derive(Debug, Clone)]
pub struct Fig12Data {
    /// Phase 1 (SP-w/o-CC): received TCP throughput per second.
    pub phase1_received: Vec<f64>,
    /// Phase 2 (EMPoWER): per-route admitted rates per second.
    pub phase2_route_rates: Vec<Vec<f64>>,
    /// Phase 2: received TCP throughput per second.
    pub phase2_received: Vec<f64>,
}

empower_telemetry::impl_to_json_struct!(Fig12Data {
    phase1_received,
    phase2_route_rates,
    phase2_received,
});

/// Runs both phases for the paper's flow 9 → 13.
pub fn run(net: &Network, imap: &InterferenceMap, seed: u64) -> Fig12Data {
    run_flow(net, imap, seed, 9, 13)
}

/// Runs both phases for an arbitrary flow (1-based node numbers).
pub fn run_flow(
    net: &Network,
    imap: &InterferenceMap,
    seed: u64,
    src_no: u32,
    dst_no: u32,
) -> Fig12Data {
    run_flow_traced(net, imap, seed, src_no, dst_no, &Telemetry::disabled())
}

/// Like [`run_flow`], with engine counters recorded on `tele`.
pub fn run_flow_traced(
    net: &Network,
    imap: &InterferenceMap,
    seed: u64,
    src_no: u32,
    dst_no: u32,
    tele: &Telemetry,
) -> Fig12Data {
    let src = NodeId(src_no - 1);
    let dst = NodeId(dst_no - 1);
    let tcp = TrafficPattern::Tcp { start: 0.0, stop: PHASE_SECS, size_bytes: 0 };
    // Phase 1: plain TCP on the single best path, no controller.
    let (mut sim1, map1) = RunConfig::new(Scheme::SpWoCc)
        .telemetry(tele.clone())
        .build_simulation(
            net,
            imap,
            &[(src, dst, tcp)],
            SimConfig { delta: TCP_DELTA, seed, ..Default::default() },
        )
        // empower-lint: allow(D005) — RunConfig defaults to tolerant
        // connectivity, which is build_simulation's only error path.
        .expect("tolerant mode cannot fail");
    let rep1 = sim1.run(PHASE_SECS);
    let phase1_received =
        map1[0].map(|f| rep1.flows[f].throughput_series.clone()).unwrap_or_default();
    // Phase 2: the full stack.
    let (mut sim2, map2) = RunConfig::new(Scheme::Empower)
        .telemetry(tele.clone())
        .build_simulation(
            net,
            imap,
            &[(src, dst, tcp)],
            SimConfig { delta: TCP_DELTA, seed, ..Default::default() },
        )
        // empower-lint: allow(D005) — RunConfig defaults to tolerant
        // connectivity, which is build_simulation's only error path.
        .expect("tolerant mode cannot fail");
    let rep2 = sim2.run(PHASE_SECS);
    let (phase2_route_rates, phase2_received) = match map2[0] {
        Some(f) => (rep2.flows[f].rate_series.clone(), rep2.flows[f].throughput_series.clone()),
        None => (Vec::new(), Vec::new()),
    };
    Fig12Data { phase1_received, phase2_route_rates, phase2_received }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;
    use empower_model::{CarrierSense, InterferenceModel};

    fn mean_tail(xs: &[f64]) -> f64 {
        let lo = xs.len().saturating_sub(60);
        if xs.len() == lo {
            return 0.0;
        }
        xs[lo..].iter().sum::<f64>() / (xs.len() - lo) as f64
    }

    #[test]
    fn empower_tcp_is_stable_and_near_the_admission_reserve() {
        // Against our idealized loss-free MAC, plain single-path TCP fills
        // the whole path — a *stronger* baseline than the paper's hardware,
        // where multihop wireless TCP collapses under self-interference.
        // What must hold here: EMPoWER TCP sustains at least the δ-reserved
        // share of the single-path baseline (≥ (1 − δ) up to TCP overhead),
        // i.e. the stack imposes no cost beyond the deliberate margin.
        // See EXPERIMENTS.md for the full discussion of this deviation.
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let data = run_flow(&t.net, &imap, 3, 9, 13);
        let p1 = mean_tail(&data.phase1_received);
        let p2 = mean_tail(&data.phase2_received);
        assert!(p1 > 0.0, "phase 1 TCP moves data");
        assert!(
            p2 >= 0.95 * (1.0 - TCP_DELTA) * p1,
            "EMPoWER TCP {p2:.1} fell below the δ-reserved share of SP TCP {p1:.1}"
        );
    }

    #[test]
    fn received_matches_admitted_rate_in_phase2() {
        // §6.4's headline: "the received throughput matches the traffic
        // sent by our congestion controller".
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let data = run(&t.net, &imap, 3);
        let admitted: f64 = data.phase2_route_rates.iter().map(|r| mean_tail(r)).sum();
        let received = mean_tail(&data.phase2_received);
        assert!(received > 0.6 * admitted, "received {received:.1} vs admitted {admitted:.1}");
    }
}
