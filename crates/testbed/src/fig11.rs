//! §6.3 / Fig. 11: mean ± std of the converged throughput for the ten
//! selected flows, under EMPoWER, MP-mWiFi and SP.
//!
//! The standard deviation over the last 100 s of per-second measurements is
//! the paper's check that multipath reordering does not add throughput
//! variance compared to single path.

use empower_core::{RunConfig, Scheme};
use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::Telemetry;

/// The flows of Fig. 11, in the paper's (1-based) numbering.
pub const FLOWS: [(u32, u32); 10] =
    [(4, 19), (1, 11), (17, 1), (19, 3), (9, 4), (11, 5), (13, 21), (11, 15), (20, 19), (7, 6)];

/// The three compared schemes.
pub const SCHEMES: [Scheme; 3] = [Scheme::Empower, Scheme::MpMwifi, Scheme::Sp];

/// Result for one flow under one scheme.
#[derive(Debug, Clone)]
pub struct Fig11Cell {
    pub mean_mbps: f64,
    pub std_mbps: f64,
}

/// One bar group: a flow with its three scheme measurements.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub src: u32,
    pub dst: u32,
    /// Indexed like [`SCHEMES`].
    pub cells: Vec<Fig11Cell>,
}

empower_telemetry::impl_to_json_struct!(Fig11Cell { mean_mbps, std_mbps });
empower_telemetry::impl_to_json_struct!(Fig11Row { src, dst, cells });

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// Simulated seconds per run; statistics use the last 100 s.
    pub duration: f64,
    pub delta: f64,
    pub seed: u64,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config { duration: 300.0, delta: 0.05, seed: 1 }
    }
}

/// Runs the ten isolated flows under the three schemes.
pub fn run(net: &Network, imap: &InterferenceMap, config: &Fig11Config) -> Vec<Fig11Row> {
    run_flows(net, imap, config, &FLOWS)
}

/// Runs an explicit flow list (used by tests and ablations).
pub fn run_flows(
    net: &Network,
    imap: &InterferenceMap,
    config: &Fig11Config,
    flows: &[(u32, u32)],
) -> Vec<Fig11Row> {
    run_flows_traced(net, imap, config, flows, &Telemetry::disabled())
}

/// Like [`run_flows`], with engine counters recorded on `tele`.
pub fn run_flows_traced(
    net: &Network,
    imap: &InterferenceMap,
    config: &Fig11Config,
    flows: &[(u32, u32)],
    tele: &Telemetry,
) -> Vec<Fig11Row> {
    flows
        .iter()
        .map(|&(s, d)| {
            let src = NodeId(s - 1);
            let dst = NodeId(d - 1);
            let cells = SCHEMES
                .iter()
                .map(|&scheme| {
                    let fl = [(
                        src,
                        dst,
                        TrafficPattern::SaturatedUdp { start: 0.0, stop: config.duration },
                    )];
                    let sim_cfg =
                        SimConfig { delta: config.delta, seed: config.seed, ..Default::default() };
                    let (mut sim, mapping) = RunConfig::new(scheme)
                        .telemetry(tele.clone())
                        .build_simulation(net, imap, &fl, sim_cfg)
                        // empower-lint: allow(D005) — RunConfig defaults to tolerant
                        // connectivity, which is build_simulation's only error path.
                        .expect("tolerant mode cannot fail");
                    match mapping[0] {
                        None => Fig11Cell { mean_mbps: 0.0, std_mbps: 0.0 },
                        Some(f) => {
                            let report = sim.run(config.duration);
                            let to = config.duration as usize;
                            let from = to.saturating_sub(100);
                            Fig11Cell {
                                mean_mbps: report.flows[f].mean_throughput(from, to),
                                std_mbps: report.flows[f].std_throughput(from, to),
                            }
                        }
                    }
                })
                .collect();
            Fig11Row { src: s, dst: d, cells }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;
    use empower_model::{CarrierSense, InterferenceModel};

    #[test]
    fn one_flow_produces_three_cells() {
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        // Shrink to one flow for test speed by running the full harness on
        // a short horizon and checking the first row only.
        let config = Fig11Config { duration: 60.0, ..Default::default() };
        let rows = run_subset(&t.net, &imap, &config, 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 3);
        assert!(rows[0].cells[0].mean_mbps > 0.0);
        assert!(rows[0].cells[0].std_mbps >= 0.0);
    }

    /// Test-only helper: first `n` flows.
    fn run_subset(
        net: &Network,
        imap: &InterferenceMap,
        config: &Fig11Config,
        n: usize,
    ) -> Vec<Fig11Row> {
        let mut rows = run_flows(net, imap, config, &FLOWS[..n]);
        rows.truncate(n);
        rows
    }

    #[test]
    fn flow_list_matches_the_paper() {
        assert_eq!(FLOWS.len(), 10);
        assert_eq!(FLOWS[0], (4, 19));
        assert_eq!(FLOWS[9], (7, 6));
    }
}
