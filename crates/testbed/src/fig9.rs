//! The §6.2 worked example (Fig. 9): Flow 1-13 over two routes, with a
//! contending Flow 4-7 switching on and off.
//!
//! The paper prints the measured link capacities of the four involved nodes
//! at experiment time; the exact values are not recoverable from the figure,
//! so this runner fixes a capacity assignment that preserves every stated
//! property of the example:
//!
//! * Flow 1-13 gets a two-hop WiFi+PLC Route 1 and a single-hop PLC
//!   Route 2, Flow 4-7 a single-hop WiFi Route 3;
//! * Route 1 and Route 3 share the WiFi medium; Route 1's PLC hop and
//!   Route 2 share the PLC medium;
//! * alone, the controller drives Route 1 at 100 % and fills Route 2 with
//!   the PLC airtime Route 1 leaves over (≈ 50 %), beating the best single
//!   path;
//! * when Flow 4-7 saturates WiFi, the proportional-fair equilibrium moves
//!   Flow 1-13 entirely onto Route 2 (WiFi is "avoided altogether") and
//!   reverts after Flow 4-7 stops.

use empower_core::{RunConfig, Scheme};
use empower_model::topology::testbed22::NODE_POSITIONS;
use empower_model::{
    InterferenceModel, Medium, Network, NetworkBuilder, NodeId, PanelId, Point, SharedMedium,
};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::Telemetry;

/// Timing of the experiment, seconds.
pub const FLOW47_START: f64 = 1950.0;
pub const FLOW47_STOP: f64 = 3950.0;
pub const DURATION: f64 = 5000.0;

/// Capacity assignment (Mbps) for the four links of the example.
pub const WIFI_1_4: f64 = 23.0;
pub const PLC_4_13: f64 = 35.0;
pub const PLC_1_13: f64 = 20.0;
pub const WIFI_4_7: f64 = 45.0;

/// Result: per-second series, ready for plotting/printing.
#[derive(Debug, Clone)]
pub struct Fig9Data {
    /// Rate injected on Route 1 (WiFi-PLC) of Flow 1-13, per second.
    pub route1_rate: Vec<f64>,
    /// Rate injected on Route 2 (PLC direct) of Flow 1-13, per second.
    pub route2_rate: Vec<f64>,
    /// Total rate sent by node 1, per second.
    pub total_sent: Vec<f64>,
    /// Throughput received by node 13, per second.
    pub received: Vec<f64>,
    /// The best single-path capacity for Flow 1-13 (horizontal reference).
    pub best_single_path: f64,
    /// Throughput received by node 7 (Flow 4-7), per second.
    pub flow47_received: Vec<f64>,
}

empower_telemetry::impl_to_json_struct!(Fig9Data {
    route1_rate,
    route2_rate,
    total_sent,
    received,
    best_single_path,
    flow47_received,
});

/// Builds the 4-node cut-out of the testbed used by the example.
pub fn fig9_network() -> (Network, [NodeId; 4]) {
    let mut b = NetworkBuilder::new();
    let mediums = vec![Medium::WIFI1, Medium::Plc];
    let pick = |i: usize| {
        let (x, y) = NODE_POSITIONS[i - 1];
        Point::new(x, y)
    };
    let n1 = b.add_labeled_node(pick(1), mediums.clone(), Some(PanelId(0)), "node1");
    let n4 = b.add_labeled_node(pick(4), mediums.clone(), Some(PanelId(0)), "node4");
    let n7 = b.add_labeled_node(pick(7), mediums.clone(), Some(PanelId(0)), "node7");
    let n13 = b.add_labeled_node(pick(13), mediums, Some(PanelId(0)), "node13");
    b.add_duplex(n1, n4, Medium::WIFI1, WIFI_1_4);
    b.add_duplex(n4, n13, Medium::Plc, PLC_4_13);
    b.add_duplex(n1, n13, Medium::Plc, PLC_1_13);
    b.add_duplex(n4, n7, Medium::WIFI1, WIFI_4_7);
    (b.build(), [n1, n4, n7, n13])
}

/// Runs the experiment (several simulated thousand seconds; a couple of
/// seconds of wall clock).
pub fn run(seed: u64) -> Fig9Data {
    run_traced(seed, &Telemetry::disabled())
}

/// Like [`run`], with engine counters recorded on `tele`.
pub fn run_traced(seed: u64, tele: &Telemetry) -> Fig9Data {
    let (net, [n1, n4, n7, n13]) = fig9_network();
    let imap = SharedMedium.build_map(&net);
    let flows = [
        (n1, n13, TrafficPattern::SaturatedUdp { start: 0.0, stop: DURATION }),
        (n4, n7, TrafficPattern::SaturatedUdp { start: FLOW47_START, stop: FLOW47_STOP }),
    ];
    let config = SimConfig { seed, ..Default::default() };
    let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
        .telemetry(tele.clone())
        .build_simulation(&net, &imap, &flows, config)
        // empower-lint: allow(D005) — RunConfig defaults to tolerant
        // connectivity, which is build_simulation's only error path.
        .expect("tolerant mode cannot fail");
    // empower-lint: allow(D005) — the fig. 9 topology is a fixed fixture
    // in which flow 1→13 is connected by construction.
    let f1 = mapping[0].expect("flow 1-13 is connected");
    // empower-lint: allow(D005) — same fixture; flow 4→7 is connected.
    let f2 = mapping[1].expect("flow 4-7 is connected");
    let report = sim.run(DURATION);

    let stats1 = &report.flows[f1];
    // Identify which of flow 1-13's routes is the 2-hop one (Route 1).
    // rate_series[r] is indexed by route in selection order.
    let routes = Scheme::Empower.compute_routes(&net, &imap, n1, n13, 5);
    let (idx_r1, idx_r2) = if routes.routes[0].path.hop_count() == 2 { (0, 1) } else { (1, 0) };
    let best_single_path = Scheme::Sp.compute_routes(&net, &imap, n1, n13, 5).total_rate();
    let route1_rate = stats1.rate_series[idx_r1].clone();
    let route2_rate = stats1.rate_series[idx_r2].clone();
    let total_sent: Vec<f64> = route1_rate.iter().zip(&route2_rate).map(|(a, b)| a + b).collect();
    Fig9Data {
        route1_rate,
        route2_rate,
        total_sent,
        received: stats1.throughput_series.clone(),
        best_single_path,
        flow47_received: report.flows[f2].throughput_series.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn routing_selects_the_papers_routes() {
        let (net, [n1, _, _, n13]) = fig9_network();
        let imap = SharedMedium.build_map(&net);
        let routes = Scheme::Empower.compute_routes(&net, &imap, n1, n13, 5);
        assert_eq!(routes.len(), 2);
        let hops: Vec<usize> = routes.routes.iter().map(|r| r.path.hop_count()).collect();
        assert!(hops.contains(&2) && hops.contains(&1), "{hops:?}");
        // Nominal combination: 23 on the hybrid route + PLC residual 6.86.
        assert!((routes.total_rate() - (23.0 + (1.0 - 23.0 / 35.0) * 20.0)).abs() < 1e-6);
    }

    #[test]
    fn multipath_beats_best_single_path_in_phase_one() {
        let data = run(1);
        let phase1 = mean(&data.received[600..1900]);
        assert!(
            phase1 > data.best_single_path * 1.3,
            "phase-1 throughput {phase1} vs single path {}",
            data.best_single_path
        );
    }

    #[test]
    fn flow_1_13_vacates_wifi_under_contention() {
        let data = run(1);
        // Phase 2 (2200–3900 s): Route 1 (WiFi) rate collapses, Route 2
        // carries (almost) everything.
        let r1_phase2 = mean(&data.route1_rate[2200..3900]);
        let r2_phase2 = mean(&data.route2_rate[2200..3900]);
        assert!(r1_phase2 < 2.5, "route 1 should be (nearly) vacated: {r1_phase2}");
        assert!(r2_phase2 > 15.0, "route 2 should carry the flow: {r2_phase2}");
        // Flow 4-7 gets (almost) the full WiFi capacity.
        let f47 = mean(&data.flow47_received[2200..3900]);
        assert!(f47 > 35.0, "flow 4-7 throughput {f47}");
    }

    #[test]
    fn situation_reverts_after_contention_stops() {
        let data = run(1);
        let phase1 = mean(&data.received[600..1900]);
        let phase3 = mean(&data.received[4200..4990]);
        assert!((phase1 - phase3).abs() < 0.15 * phase1, "{phase1} vs {phase3}");
        let r1_phase3 = mean(&data.route1_rate[4200..4990]);
        assert!(r1_phase3 > 15.0, "route 1 resumes: {r1_phase3}");
    }
}
