//! §6.3 / Table 1: download times under EMPoWER vs MP-w/o-CC.
//!
//! Four experiments: Tiny (100 kB), Short (5 MB) and Long (2 GB) are single
//! downloads on Flow 6-13 without concurrent traffic; Conc runs the 2 GB
//! Flow 6-13 download against a concurrent Flow 12-8 that fetches five 5 MB
//! files with Poisson-distributed start times (mean 60 s). Tiny and Short
//! are repeated 40 times, Long and Conc 10 times in the paper; repetition
//! counts here are configurable (each repetition re-seeds the simulator).

use empower_core::{RunConfig, Scheme};
use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::Telemetry;

/// Which Table 1 row to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    Tiny,
    Short,
    Long,
    Conc,
}

impl Experiment {
    pub const ALL: [Experiment; 4] =
        [Experiment::Tiny, Experiment::Short, Experiment::Long, Experiment::Conc];

    /// File size of the Flow 6-13 download, bytes.
    pub fn main_size(self) -> u64 {
        match self {
            Experiment::Tiny => 100_000,
            Experiment::Short => 5_000_000,
            Experiment::Long | Experiment::Conc => 2_000_000_000,
        }
    }

    /// The paper's repetition count.
    pub fn paper_repetitions(self) -> usize {
        match self {
            Experiment::Tiny | Experiment::Short => 40,
            Experiment::Long | Experiment::Conc => 10,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Experiment::Tiny => "Tiny, F. 6-13 (100 kB)",
            Experiment::Short => "Short, F. 6-13 (5 MB)",
            Experiment::Long => "Long, F. 6-13 (2 GB)",
            Experiment::Conc => "Conc, F. 6-13 (2 GB)",
        }
    }
}

/// Mean ± std of download durations, seconds.
#[derive(Debug, Clone, Copy)]
pub struct DurationStats {
    pub mean_secs: f64,
    pub std_secs: f64,
    pub samples: usize,
}

fn stats(durations: &[f64]) -> DurationStats {
    let n = durations.len().max(1) as f64;
    let mean = durations.iter().sum::<f64>() / n;
    let var = durations.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n;
    DurationStats { mean_secs: mean, std_secs: var.sqrt(), samples: durations.len() }
}

/// One Table 1 row: the experiment under both schemes. For Conc the row
/// additionally carries the concurrent flow's (Flow 12-8, 25 MB total)
/// statistics, as in the paper.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub experiment: Experiment,
    pub empower: DurationStats,
    pub mp_wo_cc: DurationStats,
    pub conc_flow_empower: Option<DurationStats>,
    pub conc_flow_wo_cc: Option<DurationStats>,
}

impl empower_telemetry::ToJson for Experiment {
    fn to_json(&self) -> empower_telemetry::Json {
        empower_telemetry::Json::from(self.label())
    }
}

empower_telemetry::impl_to_json_struct!(DurationStats { mean_secs, std_secs, samples });
empower_telemetry::impl_to_json_struct!(Table1Row {
    experiment,
    empower,
    mp_wo_cc,
    conc_flow_empower,
    conc_flow_wo_cc,
});

/// Runs one experiment with `repetitions` per scheme.
pub fn run_experiment(
    net: &Network,
    imap: &InterferenceMap,
    experiment: Experiment,
    repetitions: usize,
    seed: u64,
) -> Table1Row {
    run_experiment_traced(net, imap, experiment, repetitions, seed, &Telemetry::disabled())
}

/// Like [`run_experiment`], with engine counters recorded on `tele`.
pub fn run_experiment_traced(
    net: &Network,
    imap: &InterferenceMap,
    experiment: Experiment,
    repetitions: usize,
    seed: u64,
    tele: &Telemetry,
) -> Table1Row {
    let mut results: Vec<(Vec<f64>, Vec<f64>)> = Vec::new(); // per scheme: (main, conc-total)
    for scheme in SCHEMES {
        let mut main_durations = Vec::new();
        let mut conc_durations = Vec::new();
        for rep in 0..repetitions {
            let (main, conc) = run_repetition(net, imap, experiment, scheme, rep, seed, tele);
            main_durations.extend(main);
            conc_durations.extend(conc);
        }
        results.push((main_durations, conc_durations));
    }
    row_from_samples(experiment, &results[0], &results[1])
}

/// The two schemes of Table 1, in row order (EMPoWER first).
pub const SCHEMES: [Scheme; 2] = [Scheme::Empower, Scheme::MpWoCc];

/// One `(scheme, repetition)` cell of a Table 1 experiment — the
/// independently-seeded unit a parallel runner can fan out over. Returns
/// `(main download duration, concurrent-flow total)`; either is `None` when
/// the corresponding download did not complete within the horizon.
pub fn run_repetition(
    net: &Network,
    imap: &InterferenceMap,
    experiment: Experiment,
    scheme: Scheme,
    rep: usize,
    seed: u64,
    tele: &Telemetry,
) -> (Option<f64>, Option<f64>) {
    let src = NodeId(6 - 1);
    let dst = NodeId(13 - 1);
    let mut flows = vec![(
        src,
        dst,
        TrafficPattern::FileDownload { start: 0.0, size_bytes: experiment.main_size() },
    )];
    if experiment == Experiment::Conc {
        flows.push((
            NodeId(12 - 1),
            NodeId(8 - 1),
            TrafficPattern::PoissonFiles {
                start: 0.0,
                count: 5,
                size_bytes: 5_000_000,
                mean_gap_secs: 60.0,
            },
        ));
    }
    let sim_cfg =
        SimConfig { delta: 0.05, seed: seed ^ ((rep as u64) << 16), ..Default::default() };
    let (mut sim, mapping) = RunConfig::new(scheme)
        .telemetry(tele.clone())
        .build_simulation(net, imap, &flows, sim_cfg)
        // empower-lint: allow(D005) — RunConfig defaults to tolerant
        // connectivity, which is build_simulation's only error path.
        .expect("tolerant mode cannot fail");
    // Generous horizon: 2 GB at a few tens of Mbps finishes well
    // within an hour of simulated time.
    let horizon = (experiment.main_size() as f64 * 8.0 / 2e6).clamp(120.0, 4000.0);
    let report = sim.run(horizon);
    let main = mapping[0].and_then(|f| report.flows[f].completions.first().copied());
    let conc = (experiment == Experiment::Conc)
        .then(|| {
            mapping[1].and_then(|f| {
                // The paper reports the total time for the 25 MB of
                // concurrent files: sum of the five download times.
                (report.flows[f].completions.len() == 5)
                    .then(|| report.flows[f].completions.iter().sum::<f64>())
            })
        })
        .flatten();
    (main, conc)
}

/// Assembles a [`Table1Row`] from per-scheme sample lists (each a
/// `(main durations, concurrent-flow totals)` pair, EMPoWER first) —
/// the aggregation half of [`run_experiment_traced`], usable directly by a
/// parallel runner that collected the samples itself.
pub fn row_from_samples(
    experiment: Experiment,
    empower: &(Vec<f64>, Vec<f64>),
    mp_wo_cc: &(Vec<f64>, Vec<f64>),
) -> Table1Row {
    Table1Row {
        experiment,
        empower: stats(&empower.0),
        mp_wo_cc: stats(&mp_wo_cc.0),
        conc_flow_empower: (experiment == Experiment::Conc).then(|| stats(&empower.1)),
        conc_flow_wo_cc: (experiment == Experiment::Conc).then(|| stats(&mp_wo_cc.1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;
    use empower_model::{CarrierSense, InterferenceModel};

    #[test]
    fn short_download_finishes_under_both_schemes() {
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let row = run_experiment(&t.net, &imap, Experiment::Short, 2, 7);
        assert_eq!(row.empower.samples, 2);
        assert_eq!(row.mp_wo_cc.samples, 2);
        assert!(row.empower.mean_secs > 0.0 && row.mp_wo_cc.mean_secs > 0.0);
        // A short file is dominated by EMPoWER's ramp; the win (paper's
        // Table 1 shape) comes from steady state and contention, asserted
        // in `contention_favors_congestion_control` below.
        assert!(row.empower.mean_secs < 30.0, "{:.1}s", row.empower.mean_secs);
    }

    #[test]
    fn contention_favors_congestion_control() {
        // A 30 MB download on flow 6-13 while flow 12-8 blasts
        // continuously: without CC both flows over-drive the shared
        // mediums (queue drops + reorder losses); with CC the download
        // finishes faster. This is Table 1's Conc row in miniature.
        use empower_sim::SimConfig;
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let mut times = Vec::new();
        for scheme in [Scheme::Empower, Scheme::MpWoCc] {
            let flows = [
                (
                    NodeId(6 - 1),
                    NodeId(13 - 1),
                    TrafficPattern::FileDownload { start: 0.0, size_bytes: 100_000_000 },
                ),
                (
                    NodeId(12 - 1),
                    NodeId(8 - 1),
                    TrafficPattern::SaturatedUdp { start: 0.0, stop: 400.0 },
                ),
            ];
            let (mut sim, mapping) = RunConfig::new(scheme)
                .build_simulation(
                    &t.net,
                    &imap,
                    &flows,
                    SimConfig { delta: 0.05, seed: 7, ..Default::default() },
                )
                // empower-lint: allow(D005) — RunConfig defaults to tolerant
                // connectivity, which is build_simulation's only error path.
                .expect("tolerant mode cannot fail");
            let report = sim.run(400.0);
            let f = mapping[0].expect("connected");
            let done = report.flows[f].completions.first().copied().unwrap_or(400.0);
            times.push(done);
        }
        assert!(
            times[0] < times[1],
            "EMPoWER {:.1}s should beat w/o-CC {:.1}s under contention",
            times[0],
            times[1]
        );
    }

    #[test]
    fn tiny_download_is_subsecond_scale() {
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let row = run_experiment(&t.net, &imap, Experiment::Tiny, 3, 7);
        assert!(row.empower.mean_secs < 5.0, "{}", row.empower.mean_secs);
    }

    #[test]
    fn experiment_metadata_matches_the_paper() {
        assert_eq!(Experiment::Tiny.main_size(), 100_000);
        assert_eq!(Experiment::Long.main_size(), 2_000_000_000);
        assert_eq!(Experiment::Short.paper_repetitions(), 40);
        assert_eq!(Experiment::Conc.paper_repetitions(), 10);
    }
}
