//! §6.3 / Fig. 10: broad evaluation over randomly selected station pairs.
//!
//! For each pair, saturated UDP runs under EMPoWER, SP, SP-WiFi, MP-mWiFi
//! and MP-2bp (packet-level, δ = 0.05 as in the paper), plus the two
//! brute-force single-path baselines. The left plot is the CDF of
//! `T_X / T_EMPoWER`; the right plot is EMPoWER's throughput after 10–20 s
//! and 190–200 s as a fraction of its final value.

use empower_core::{RunConfig, Scheme};
use empower_model::rng::StdRng;
use empower_model::rng::{Rng, SeedableRng};
use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::Telemetry;

use crate::brute_force::brute_force_single_path;

/// Schemes measured with the packet simulator (brute-force baselines are
/// handled separately).
pub const SIM_SCHEMES: [Scheme; 5] =
    [Scheme::Empower, Scheme::Sp, Scheme::SpWifi, Scheme::MpMwifi, Scheme::Mp2bp];

/// Configuration of the sweep.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Number of random source–destination pairs (50 in the paper).
    pub pairs: usize,
    /// Simulated seconds per run (the paper uses 1000 s; final throughput
    /// is the last-10 s average, converged well before this).
    pub duration: f64,
    /// Constraint margin (0.05 in §6.3).
    pub delta: f64,
    pub seed: u64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config { pairs: 50, duration: 300.0, delta: 0.05, seed: 1 }
    }
}

/// Results for one pair.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// 1-based paper numbering of (source, destination).
    pub src: u32,
    pub dst: u32,
    /// Final throughput per simulated scheme, ordered as [`SIM_SCHEMES`].
    pub throughput: Vec<f64>,
    /// SP-bf / SP-WiFi-bf brute-force goodputs.
    pub sp_bf: f64,
    pub sp_wifi_bf: f64,
    /// EMPoWER mean throughput over 10–20 s (convergence snapshot).
    pub empower_10_20: f64,
    /// EMPoWER mean throughput over the 190–200 s window.
    pub empower_190_200: f64,
    /// EMPoWER final throughput (denominator of every ratio).
    pub empower_final: f64,
    /// Number of routes EMPoWER used.
    pub empower_routes: usize,
}

empower_telemetry::impl_to_json_struct!(Fig10Row {
    src,
    dst,
    throughput,
    sp_bf,
    sp_wifi_bf,
    empower_10_20,
    empower_190_200,
    empower_final,
    empower_routes,
});

/// Runs the sweep on `net` (normally the 22-node testbed's network).
pub fn run(net: &Network, imap: &InterferenceMap, config: &Fig10Config) -> Vec<Fig10Row> {
    run_traced(net, imap, config, &Telemetry::disabled())
}

/// Like [`run`], with engine counters recorded on `tele`.
pub fn run_traced(
    net: &Network,
    imap: &InterferenceMap,
    config: &Fig10Config,
    tele: &Telemetry,
) -> Vec<Fig10Row> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::with_capacity(config.pairs);
    for pair_idx in 0..config.pairs {
        let src = NodeId(rng.gen_range(0..net.node_count()) as u32);
        let dst = loop {
            let d = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if d != src {
                break d;
            }
        };
        let mut throughput = Vec::with_capacity(SIM_SCHEMES.len());
        let mut empower = (0.0, 0.0, 0.0, 0usize); // (final, 10-20, 190-200, routes)
        for (si, &scheme) in SIM_SCHEMES.iter().enumerate() {
            let flows =
                [(src, dst, TrafficPattern::SaturatedUdp { start: 0.0, stop: config.duration })];
            let sim_cfg = SimConfig {
                delta: config.delta,
                seed: config.seed ^ ((pair_idx as u64) << 8) ^ si as u64,
                ..Default::default()
            };
            let (mut sim, mapping) = RunConfig::new(scheme)
                .telemetry(tele.clone())
                .build_simulation(net, imap, &flows, sim_cfg)
                // empower-lint: allow(D005) — RunConfig defaults to tolerant
                // connectivity, which is build_simulation's only error path.
                .expect("tolerant mode cannot fail");
            let t = match mapping[0] {
                None => 0.0,
                Some(f) => {
                    let report = sim.run(config.duration);
                    let fin = report.final_throughput(f, 10);
                    if scheme == Scheme::Empower {
                        empower = (
                            fin,
                            report.flows[f].mean_throughput(10, 20),
                            report.flows[f].mean_throughput(190, 200),
                            report.flows[f].rate_series.len(),
                        );
                    }
                    fin
                }
            };
            throughput.push(t);
        }
        let sp_bf = brute_force_single_path(net, imap, src, dst, Scheme::SpWoCc)
            .map_or(0.0, |b| b.best_goodput);
        let sp_wifi_bf = brute_force_single_path(net, imap, src, dst, Scheme::SpWifi)
            .map_or(0.0, |b| b.best_goodput);
        rows.push(Fig10Row {
            src: src.0 + 1,
            dst: dst.0 + 1,
            throughput,
            sp_bf,
            sp_wifi_bf,
            empower_10_20: empower.1,
            empower_190_200: empower.2,
            empower_final: empower.0,
            empower_routes: empower.3,
        });
    }
    rows
}

/// Sorts `values` into an empirical CDF (plot against `i / n`).
pub fn ecdf(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(f64::total_cmp);
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;
    use empower_model::{CarrierSense, InterferenceModel};

    #[test]
    fn small_sweep_produces_sane_rows() {
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let config = Fig10Config { pairs: 2, duration: 120.0, ..Default::default() };
        let rows = run(&t.net, &imap, &config);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.throughput.len(), SIM_SCHEMES.len());
            // On an all-hybrid testbed every pair is connected.
            assert!(row.empower_final > 0.0, "pair {}→{}", row.src, row.dst);
            // Brute force finds something on the hybrid mediums.
            assert!(row.sp_bf > 0.0);
        }
    }

    #[test]
    fn ecdf_sorts() {
        assert_eq!(ecdf(vec![3.0, 1.0, 2.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn sweep_is_deterministic() {
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let config = Fig10Config { pairs: 1, duration: 60.0, ..Default::default() };
        let a = run(&t.net, &imap, &config);
        let b = run(&t.net, &imap, &config);
        assert_eq!(a[0].throughput, b[0].throughput);
        assert_eq!((a[0].src, a[0].dst), (b[0].src, b[0].dst));
    }
}
