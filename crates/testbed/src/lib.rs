#![forbid(unsafe_code)]
//! # empower-testbed
//!
//! The simulated stand-in for the paper's 22-node hybrid testbed (§6) and
//! the runners for every testbed experiment:
//!
//! * [`fig9`] — the two-flow worked example (Flow 1-13 over two routes,
//!   Flow 4-7 switching on and off);
//! * [`fig10`] — throughput ratios over 50 random node pairs, plus the
//!   convergence snapshot (10–20 s and 190–200 s windows);
//! * [`fig11`] — mean ± std throughput of 10 selected flows for
//!   EMPoWER / MP-mWiFi / SP;
//! * [`table1`] — the Tiny/Short/Long/Conc download-time experiments;
//! * [`fig12`]/[`fig13`] — TCP over the datapath (time series and
//!   10-flow comparison, δ = 0.3).
//!
//! Each runner returns plain data structures; the `empower-bench` binaries
//! format them into the tables/series the paper prints.

pub mod brute_force;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig9;
pub mod table1;

pub use brute_force::brute_force_single_path;
