//! §6.4 / Fig. 13: average TCP rate (± std) for ten flows, EMPoWER
//! (δ = 0.3, multipath) vs SP-w/o-CC (plain single-path TCP).

use empower_core::{RunConfig, Scheme};
use empower_model::{InterferenceMap, Network, NodeId};
use empower_sim::{SimConfig, TrafficPattern};
use empower_telemetry::Telemetry;

use crate::fig12::TCP_DELTA;

/// The ten flows of Fig. 13, 1-based paper numbering.
pub const FLOWS: [(u32, u32); 10] =
    [(9, 10), (4, 7), (21, 18), (8, 6), (17, 15), (9, 13), (4, 5), (20, 17), (3, 6), (13, 7)];

/// Result for one flow.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    pub src: u32,
    pub dst: u32,
    pub empower_mean: f64,
    pub empower_std: f64,
    pub sp_wo_cc_mean: f64,
    pub sp_wo_cc_std: f64,
}

empower_telemetry::impl_to_json_struct!(Fig13Row {
    src,
    dst,
    empower_mean,
    empower_std,
    sp_wo_cc_mean,
    sp_wo_cc_std,
});

/// Configuration.
#[derive(Debug, Clone)]
pub struct Fig13Config {
    /// Simulated seconds per run; statistics over the last 100 s.
    pub duration: f64,
    pub seed: u64,
}

impl Default for Fig13Config {
    fn default() -> Self {
        Fig13Config { duration: 300.0, seed: 1 }
    }
}

/// Runs an explicit flow list (use [`FLOWS`] for the paper's figure).
pub fn run_flows(
    net: &Network,
    imap: &InterferenceMap,
    config: &Fig13Config,
    flows: &[(u32, u32)],
) -> Vec<Fig13Row> {
    run_flows_traced(net, imap, config, flows, &Telemetry::disabled())
}

/// Like [`run_flows`], with engine counters recorded on `tele`.
pub fn run_flows_traced(
    net: &Network,
    imap: &InterferenceMap,
    config: &Fig13Config,
    flows: &[(u32, u32)],
    tele: &Telemetry,
) -> Vec<Fig13Row> {
    flows
        .iter()
        .map(|&(s, d)| {
            let mut means = [0.0; 2];
            let mut stds = [0.0; 2];
            for (i, scheme) in [Scheme::Empower, Scheme::SpWoCc].into_iter().enumerate() {
                let fl = [(
                    NodeId(s - 1),
                    NodeId(d - 1),
                    TrafficPattern::Tcp { start: 0.0, stop: config.duration, size_bytes: 0 },
                )];
                let sim_cfg =
                    SimConfig { delta: TCP_DELTA, seed: config.seed, ..Default::default() };
                let (mut sim, mapping) = RunConfig::new(scheme)
                    .telemetry(tele.clone())
                    .build_simulation(net, imap, &fl, sim_cfg)
                    // empower-lint: allow(D005) — RunConfig defaults to tolerant
                    // connectivity, which is build_simulation's only error path.
                    .expect("tolerant mode cannot fail");
                if let Some(f) = mapping[0] {
                    let report = sim.run(config.duration);
                    let to = config.duration as usize;
                    let from = to.saturating_sub(100);
                    means[i] = report.flows[f].mean_throughput(from, to);
                    stds[i] = report.flows[f].std_throughput(from, to);
                }
            }
            Fig13Row {
                src: s,
                dst: d,
                empower_mean: means[0],
                empower_std: stds[0],
                sp_wo_cc_mean: means[1],
                sp_wo_cc_std: stds[1],
            }
        })
        .collect()
}

/// Runs the paper's ten flows.
pub fn run(net: &Network, imap: &InterferenceMap, config: &Fig13Config) -> Vec<Fig13Row> {
    run_flows(net, imap, config, &FLOWS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::testbed22;
    use empower_model::{CarrierSense, InterferenceModel};

    #[test]
    fn one_tcp_flow_compares_sanely() {
        let t = testbed22(1);
        let imap = CarrierSense::default().build_map(&t.net);
        let config = Fig13Config { duration: 200.0, ..Default::default() };
        let rows = run_flows(&t.net, &imap, &config, &FLOWS[..1]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.empower_mean > 0.0 && r.sp_wo_cc_mean > 0.0, "{r:?}");
        // §6.4: δ = 0.3 improves performance over single-path TCP "in all
        // the cases" — allow slack for the single short test flow.
        assert!(
            r.empower_mean > 0.75 * r.sp_wo_cc_mean,
            "EMPoWER {:.1} vs SP {:.1}",
            r.empower_mean,
            r.sp_wo_cc_mean
        );
    }

    #[test]
    fn flow_list_matches_the_paper() {
        assert_eq!(FLOWS.len(), 10);
        assert_eq!(FLOWS[5], (9, 13));
    }
}
