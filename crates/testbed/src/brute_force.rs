//! The brute-force single-path baselines of §6.3 (SP-bf, SP-WiFi-bf).
//!
//! The paper obtains them "by sending rates from 0 to the maximum possible
//! rate with 0.25 MBps increments, and keeping the maximum rate received".
//! We run the same sweep against the fluid saturation model (which is what
//! the packet simulator converges to for a single open-loop flow): for each
//! candidate rate, offer it on the route and record the delivered goodput;
//! return the best.

use empower_baselines::saturation_goodput;
use empower_core::Scheme;
use empower_model::{InterferenceMap, Network, NodeId, Path};

/// Result of a brute-force sweep.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// The swept route.
    pub path: Path,
    /// Best delivered goodput, Mbps.
    pub best_goodput: f64,
    /// The offered rate achieving it, Mbps.
    pub best_offered: f64,
}

/// Sweeps offered rates on the scheme's single path in 0.25 MB/s (2 Mbps)
/// increments and returns the best delivered goodput. `scheme` must be a
/// single-path scheme (it selects the route and the medium set).
pub fn brute_force_single_path(
    net: &Network,
    imap: &InterferenceMap,
    src: NodeId,
    dst: NodeId,
    scheme: Scheme,
) -> Option<BruteForceResult> {
    assert!(!scheme.multipath(), "brute force sweeps a single path");
    let routes = scheme.compute_routes(net, imap, src, dst, 1);
    let path = routes.routes.first()?.path.clone();
    const STEP_MBPS: f64 = 2.0; // 0.25 MB/s
                                // Offering more than the path's weakest link can ever carry is
                                // pointless (goodput is flat or worse beyond it), so the sweep stops
                                // just past the bottleneck capacity — same result as the paper's
                                // "0 to the maximum possible rate", at a fraction of the cost.
    let max_rate =
        path.links().iter().map(|&l| net.link(l).capacity_mbps).fold(f64::INFINITY, f64::min) * 1.1
            + STEP_MBPS;
    let mut best_goodput = 0.0;
    let mut best_offered = 0.0;
    let mut offered = STEP_MBPS;
    while offered <= max_rate {
        let out = saturation_goodput(net, imap, std::slice::from_ref(&path), &[offered]);
        if out.delivered[0] > best_goodput {
            best_goodput = out.delivered[0];
            best_offered = offered;
        }
        offered += STEP_MBPS;
    }
    Some(BruteForceResult { path, best_goodput, best_offered })
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    #[test]
    fn brute_force_finds_the_path_capacity() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let out =
            brute_force_single_path(&s.net, &imap, s.gateway, s.client, Scheme::SpWoCc).unwrap();
        // Best single gateway→client path carries 10 Mbps; the sweep in
        // 2 Mbps steps tops out at exactly 10.
        assert!((out.best_goodput - 10.0).abs() < 0.2, "{}", out.best_goodput);
        assert!(out.best_offered <= 12.0);
    }

    #[test]
    fn wifi_only_sweep_respects_the_medium() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let out =
            brute_force_single_path(&s.net, &imap, s.gateway, s.client, Scheme::SpWifi).unwrap();
        for &l in out.path.links() {
            assert!(s.net.link(l).medium.is_wifi());
        }
    }

    #[test]
    fn disconnected_pair_returns_none() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut net = s.net.clone();
        for l in 0..net.link_count() {
            net.set_capacity(empower_model::LinkId(l as u32), 0.0);
        }
        assert!(brute_force_single_path(&net, &imap, s.gateway, s.client, Scheme::SpWoCc).is_none());
    }

    #[test]
    #[should_panic(expected = "single path")]
    fn multipath_schemes_are_rejected() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        brute_force_single_path(&s.net, &imap, s.gateway, s.client, Scheme::Empower);
    }
}
