//! A minimal micro-benchmark harness (in-tree replacement for Criterion).
//!
//! Each benchmark target is a plain binary (`harness = false`): call
//! [`bench`] per kernel. The harness auto-scales the batch size so one
//! timed batch takes ~10 ms, runs a fixed number of batches and reports
//! min / median / mean per-iteration time. Wall-clock timing only — no
//! statistics beyond ordering, no outlier rejection — but stable enough
//! to catch the order-of-magnitude regressions CI cares about.

use std::time::{Duration, Instant};

/// Target duration of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Timed batches per benchmark.
const BATCHES: usize = 30;
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(50);

/// Formats nanoseconds human-readably.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Runs `f` repeatedly and prints a `name  min/median/mean` line. The
/// closure's return value is passed through `std::hint::black_box` so the
/// optimizer cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm up (fills caches, triggers lazy init).
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < WARMUP || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    // Calibrate the batch size from the warm-up rate.
    let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
    let batch = ((BATCH_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
    }
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<40} min {:>10}   median {:>10}   mean {:>10}   ({batch} iters x {BATCHES} batches)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}
