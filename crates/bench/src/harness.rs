//! A minimal micro-benchmark harness (in-tree replacement for Criterion).
//!
//! Each benchmark target is a plain binary (`harness = false`): call
//! [`bench`] per kernel. The harness auto-scales the batch size so one
//! timed batch takes ~10 ms, runs a fixed number of batches and reports
//! min / median / mean per-iteration time. Wall-clock timing only — no
//! statistics beyond ordering, no outlier rejection — but stable enough
//! to catch the order-of-magnitude regressions CI cares about.

use std::time::{Duration, Instant};

/// Target duration of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Timed batches per benchmark.
const BATCHES: usize = 30;
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(50);

/// Formats nanoseconds human-readably.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Wall-clock timing summary of one benchmarked kernel, nanoseconds per
/// iteration across the timed batches. JSON-able so perf harness binaries
/// can dump machine-readable results next to the printed table.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Fastest batch (least-noise estimate; the number to compare runs by).
    pub min_ns: f64,
    /// Median batch.
    pub median_ns: f64,
    /// 95th-percentile batch (tail noise).
    pub p95_ns: f64,
    /// Mean over all batches.
    pub mean_ns: f64,
    /// Iterations per timed batch (auto-calibrated).
    pub batch: u64,
    /// Number of timed batches.
    pub batches: u64,
}

empower_telemetry::impl_to_json_struct!(BenchStats {
    min_ns,
    median_ns,
    p95_ns,
    mean_ns,
    batch,
    batches
});

/// Runs `f` repeatedly (warm-up, then auto-calibrated timed batches) and
/// returns the per-iteration timing summary. The closure's return value is
/// passed through `std::hint::black_box` so the optimizer cannot delete
/// the work.
pub fn bench_stats<T>(mut f: impl FnMut() -> T) -> BenchStats {
    // Warm up (fills caches, triggers lazy init).
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < WARMUP || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    // Calibrate the batch size from the warm-up rate.
    let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
    let batch = ((BATCH_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
    }
    samples.sort_by(f64::total_cmp);
    let p95_idx = ((samples.len() - 1) as f64 * 0.95).round() as usize;
    BenchStats {
        min_ns: samples[0],
        median_ns: samples[samples.len() / 2],
        p95_ns: samples[p95_idx.min(samples.len() - 1)],
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        batch,
        batches: BATCHES as u64,
    }
}

/// Runs `f` via [`bench_stats`] and prints a `name  min/median/mean` line.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    let s = bench_stats(f);
    println!(
        "{name:<40} min {:>10}   median {:>10}   mean {:>10}   ({} iters x {} batches)",
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.mean_ns),
        s.batch,
        s.batches,
    );
}
