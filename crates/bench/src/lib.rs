#![forbid(unsafe_code)]
//! # empower-bench
//!
//! The benchmark harness of the reproduction: one binary per table/figure
//! of the paper's evaluation (see DESIGN.md §4 for the index) plus Criterion
//! micro-benchmarks for the computational kernels.
//!
//! Every binary prints a human-readable table mirroring what the paper
//! reports and, with `--json <path>`, additionally dumps the raw data for
//! EXPERIMENTS.md. Binaries accept `--runs N` (sweep size) and `--quick`
//! (a small smoke-test configuration) so the full reproduction and a fast
//! sanity pass share the same code.

use empower_telemetry::{Manifest, Telemetry, ToJson};

/// Common CLI options for experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Sweep size (seeds / pairs / repetitions), when applicable.
    pub runs: Option<usize>,
    /// Shrink everything for a fast smoke run.
    pub quick: bool,
    /// Where to dump raw JSON results.
    pub json: Option<String>,
    /// Where to write the run manifest (seed, scheme, params, counters).
    pub metrics: Option<String>,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the deterministic parallel sweep runner
    /// (`parallel::run_indexed`); 1 = serial.
    pub jobs: usize,
    /// Perf-budget file for regression-gate binaries (`bench_routing`).
    pub budget: Option<String>,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        let mut args = BenchArgs {
            runs: None,
            quick: false,
            json: None,
            metrics: None,
            seed: 1,
            jobs: 1,
            budget: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--runs" => {
                    args.runs = Some(
                        it.next().and_then(|v| v.parse().ok()).expect("--runs needs an integer"),
                    )
                }
                "--quick" => args.quick = true,
                "--json" => args.json = Some(it.next().expect("--json needs a path")),
                "--metrics" => args.metrics = Some(it.next().expect("--metrics needs a path")),
                "--seed" => {
                    args.seed =
                        it.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer")
                }
                "--jobs" => {
                    args.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs a positive integer")
                }
                "--budget" => args.budget = Some(it.next().expect("--budget needs a path")),
                other => panic!(
                    "unknown argument {other} \
                     (try --runs N | --quick | --json F | --metrics F | --seed S | --jobs J | --budget F)"
                ),
            }
        }
        args
    }

    /// Picks the sweep size: explicit `--runs` wins, then quick/full
    /// defaults.
    pub fn sweep(&self, full: usize, quick: usize) -> usize {
        self.runs.unwrap_or(if self.quick { quick } else { full })
    }

    /// A telemetry registry: live when `--metrics` was given (the manifest
    /// wants counters), disabled otherwise so the hot paths pay one branch.
    pub fn telemetry(&self) -> Telemetry {
        if self.metrics.is_some() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Starts a run manifest pre-filled with the common provenance fields.
    pub fn manifest(&self, experiment: &str) -> Manifest {
        let mut m = Manifest::new(experiment);
        m.set("seed", self.seed)
            .set("quick", self.quick)
            .set("runs_flag", self.runs.map(|r| r as u64));
        m
    }

    /// Writes the manifest (with `telemetry`'s counters attached) if
    /// `--metrics` was given.
    pub fn maybe_write_manifest(&self, mut manifest: Manifest, telemetry: &Telemetry) {
        if let Some(path) = &self.metrics {
            manifest.attach_counters(telemetry);
            manifest.write(path).expect("write metrics manifest");
            eprintln!("(run manifest written to {path})");
        }
    }

    /// Writes `data` as JSON if `--json` was given.
    pub fn maybe_dump<T: ToJson>(&self, data: &T) {
        if let Some(path) = &self.json {
            let s = data.to_json().to_string_pretty();
            std::fs::write(path, s).expect("write json results");
            eprintln!("(raw results written to {path})");
        }
    }
}

/// `p`-th percentile (0–100) of unsorted values; 0 on empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Mean of values; 0 on empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Fraction of values for which `pred` holds.
pub fn fraction(values: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| pred(v)).count() as f64 / values.len() as f64
}

/// Prints a compact CDF summary line: min / p10 / median / p90 / max.
pub fn cdf_line(label: &str, values: &[f64]) {
    println!(
        "{label:<24} n={:<5} min={:>8.2}  p10={:>8.2}  p50={:>8.2}  p90={:>8.2}  max={:>8.2}  mean={:>8.2}",
        values.len(),
        percentile(values, 0.0),
        percentile(values, 10.0),
        percentile(values, 50.0),
        percentile(values, 90.0),
        percentile(values, 100.0),
        mean(values),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_brackets() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn mean_and_fraction() {
        let v = vec![1.0, 2.0, 3.0];
        assert!((mean(&v) - 2.0).abs() < 1e-12);
        assert!((fraction(&v, |x| x >= 2.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
pub mod harness;
pub mod parallel;
pub mod sweep;
