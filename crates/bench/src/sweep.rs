//! Shared sweep machinery for the §5 simulation figures (Figs. 4–7).
//!
//! One "run" = one randomized topology (residential or enterprise) with one
//! or more random flows, evaluated under every scheme plus the centralized
//! `optimal` / `conservative opt` references.

use empower_baselines::{enumerate_paths, maximize_utility, CapacityRegion, RegionKind};
use empower_cc::{CcProblem, ProportionalFair, Utility};
use empower_core::{FluidEval, RunConfig, Scheme};
use empower_model::rng::SeedableRng;
use empower_model::rng::StdRng;
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{CarrierSense, InterferenceMap, InterferenceModel, Medium, Network, NodeId};
use empower_telemetry::{CounterType, Telemetry};

/// Maximum hop count for the centralized references' route space. Local-
/// network routes are a few hops (§3.2: observed tree depth ≤ 3; the header
/// caps at 6); 3 keeps the LP column count tractable and covers everything
/// the random topologies actually use.
pub const OPT_MAX_HOPS: usize = 3;

/// Result of the centralized reference on one run.
#[derive(Debug, Clone)]
pub struct ReferencePoint {
    pub flow_rates: Vec<f64>,
    pub utility: f64,
}

/// Everything measured on one run.
#[derive(Debug, Clone)]
pub struct SweepRun {
    pub seed: u64,
    /// Per-scheme per-flow rates, in the order the caller's scheme list.
    pub scheme_rates: Vec<Vec<f64>>,
    /// Per-scheme utility.
    pub scheme_utility: Vec<f64>,
    pub optimal: ReferencePoint,
    pub conservative: ReferencePoint,
}

empower_telemetry::impl_to_json_struct!(ReferencePoint { flow_rates, utility });
empower_telemetry::impl_to_json_struct!(SweepRun {
    seed,
    scheme_rates,
    scheme_utility,
    optimal,
    conservative,
});

/// Draws one topology + flow set for `seed`.
pub fn make_instance(
    class: TopologyClass,
    seed: u64,
    flow_count: usize,
) -> (Network, InterferenceMap, Vec<(NodeId, NodeId)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = generate(&mut rng, &RandomTopologyConfig::new(class));
    let imap = CarrierSense::default().build_map(&topo.net);
    let flows: Vec<(NodeId, NodeId)> =
        (0..flow_count).map(|_| topo.sample_flow(&mut rng)).collect();
    (topo.net, imap, flows)
}

/// Solves the centralized reference over all ≤-[`OPT_MAX_HOPS`] hybrid
/// paths.
pub fn reference(
    net: &Network,
    imap: &InterferenceMap,
    flows: &[(NodeId, NodeId)],
    kind: RegionKind,
    delta: f64,
) -> ReferencePoint {
    reference_with_extra(net, imap, flows, kind, delta, &[])
}

/// Like [`reference()`] but guaranteeing that `extra_routes[f]` (e.g. the
/// routes the evaluated schemes actually used — which may be longer than
/// [`OPT_MAX_HOPS`]) are part of the reference's route space, so the
/// "optimal" can never lose to a scheme it is supposed to bound.
pub fn reference_with_extra(
    net: &Network,
    imap: &InterferenceMap,
    flows: &[(NodeId, NodeId)],
    kind: RegionKind,
    delta: f64,
    extra_routes: &[Vec<empower_model::Path>],
) -> ReferencePoint {
    let mediums = [Medium::WIFI1, Medium::Plc];
    let mut flow_routes = Vec::new();
    let mut connected = Vec::new();
    for (f, &(s, d)) in flows.iter().enumerate() {
        let mut paths = enumerate_paths(net, s, d, OPT_MAX_HOPS, Some(&mediums));
        if let Some(extra) = extra_routes.get(f) {
            for p in extra {
                if !paths.contains(p) {
                    paths.push(p.clone());
                }
            }
        }
        if !paths.is_empty() {
            connected.push(f);
            flow_routes.push(paths);
        }
    }
    let mut flow_rates = vec![0.0; flows.len()];
    if !connected.is_empty() {
        let problem = CcProblem::new(net, imap, flow_routes);
        let region = CapacityRegion::build(&problem, imap, kind, delta);
        let sol = maximize_utility(&problem, &region, &ProportionalFair, 200);
        for (ci, &f) in connected.iter().enumerate() {
            flow_rates[f] = sol.flow_rates[ci];
        }
    }
    let pf = ProportionalFair;
    let utility = flow_rates.iter().map(|&x| pf.value(x)).sum();
    ReferencePoint { flow_rates, utility }
}

/// Evaluates one run under `schemes` plus both references.
pub fn run_one(
    class: TopologyClass,
    seed: u64,
    flow_count: usize,
    schemes: &[Scheme],
    params: &FluidEval,
) -> SweepRun {
    run_one_traced(class, seed, flow_count, schemes, params, &Telemetry::disabled())
}

/// Like [`run_one`], recording per-run counters on `tele`: every
/// `evaluate_equilibrium` call's counters accumulate, plus a
/// `sweep/runs` tally so a manifest shows how many runs contributed.
pub fn run_one_traced(
    class: TopologyClass,
    seed: u64,
    flow_count: usize,
    schemes: &[Scheme],
    params: &FluidEval,
    tele: &Telemetry,
) -> SweepRun {
    let (net, imap, flows) = make_instance(class, seed, flow_count);
    let mut scheme_rates = Vec::with_capacity(schemes.len());
    let mut scheme_utility = Vec::with_capacity(schemes.len());
    let mut extra: Vec<Vec<empower_model::Path>> = vec![Vec::new(); flows.len()];
    for &scheme in schemes {
        for (f, &(s, d)) in flows.iter().enumerate() {
            for p in scheme.compute_routes(&net, &imap, s, d, params.n_shortest).paths() {
                if !extra[f].contains(&p) {
                    extra[f].push(p);
                }
            }
        }
        let out = RunConfig::from_fluid(scheme, params)
            .telemetry(tele.clone())
            .evaluate_equilibrium(&net, &imap, &flows)
            .expect("tolerant mode cannot fail");
        scheme_rates.push(out.flow_rates);
        scheme_utility.push(out.utility);
    }
    tele.counter("sweep/runs", CounterType::Packets).inc();
    let optimal =
        reference_with_extra(&net, &imap, &flows, RegionKind::Cliques, params.delta, &extra);
    let conservative =
        reference_with_extra(&net, &imap, &flows, RegionKind::Conservative, params.delta, &extra);
    SweepRun { seed, scheme_rates, scheme_utility, optimal, conservative }
}

/// Runs the sweep `seed = base_seed + index` for `index ∈ 0..count` on
/// `jobs` worker threads (see [`crate::parallel::run_indexed`]) and returns
/// the runs in index order — byte-identical to a serial loop for any `jobs`.
///
/// `Telemetry` is single-threaded by design (`Rc`-based), so each work item
/// records on its own registry inside the worker and only the `Send`-able
/// [`empower_telemetry::CounterSnapshot`] crosses threads; snapshots merge
/// into `tele` in index order (monotone counters add, gauges last-write-win),
/// which reproduces exactly the registry a serial run would build.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_parallel(
    class: TopologyClass,
    base_seed: u64,
    count: usize,
    flow_count: usize,
    schemes: &[Scheme],
    params: &FluidEval,
    jobs: usize,
    tele: &Telemetry,
) -> Vec<SweepRun> {
    let enabled = tele.is_enabled();
    let results = crate::parallel::run_indexed(jobs, count, |i| {
        let item_tele = if enabled { Telemetry::enabled() } else { Telemetry::disabled() };
        let run =
            run_one_traced(class, base_seed + i as u64, flow_count, schemes, params, &item_tele);
        (run, item_tele.snapshot())
    });
    let mut out = Vec::with_capacity(results.len());
    for (run, snap) in results {
        tele.merge_snapshot(&snap);
        out.push(run);
    }
    out
}

/// Runs `scenario` under `count` seeds (`run.seed = base_seed + index`) on
/// `jobs` worker threads and returns the outcomes in index order —
/// byte-identical to a serial loop for any `jobs`, with the same per-item
/// telemetry snapshot/merge discipline as [`run_sweep_parallel`].
///
/// # Errors
/// The first [`empower_dynamics::ScenarioError`] any seed produced (they
/// all address the same topology, so one failing means all do).
pub fn run_dynamics_sweep(
    scenario: &empower_dynamics::Scenario,
    base_seed: u64,
    count: usize,
    jobs: usize,
    tele: &Telemetry,
) -> Result<Vec<empower_dynamics::ScenarioOutcome>, empower_dynamics::ScenarioError> {
    let enabled = tele.is_enabled();
    let results = crate::parallel::run_indexed(jobs, count, |i| {
        let item_tele = if enabled { Telemetry::enabled() } else { Telemetry::disabled() };
        let mut item = scenario.clone();
        item.run.seed = base_seed + i as u64;
        empower_dynamics::run_scenario(&item, &item_tele).map(|out| (out, item_tele.snapshot()))
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        let (run, snap) = r?;
        tele.merge_snapshot(&snap);
        out.push(run);
    }
    Ok(out)
}

/// Runs the Fig. 13 testbed flow list on `jobs` worker threads (one work
/// item per flow — each flow is an independent pair of simulations) and
/// returns the rows in flow order — byte-identical to
/// [`empower_testbed::fig13::run_flows_traced`] for any `jobs`.
pub fn run_fig13_parallel(
    net: &Network,
    imap: &InterferenceMap,
    config: &empower_testbed::fig13::Fig13Config,
    flows: &[(u32, u32)],
    jobs: usize,
    tele: &Telemetry,
) -> Vec<empower_testbed::fig13::Fig13Row> {
    let enabled = tele.is_enabled();
    let results = crate::parallel::run_indexed(jobs, flows.len(), |i| {
        let item_tele = if enabled { Telemetry::enabled() } else { Telemetry::disabled() };
        let rows =
            empower_testbed::fig13::run_flows_traced(net, imap, config, &flows[i..=i], &item_tele);
        (rows, item_tele.snapshot())
    });
    let mut out = Vec::with_capacity(flows.len());
    for (rows, snap) in results {
        tele.merge_snapshot(&snap);
        out.extend(rows);
    }
    out
}

/// Runs a list of workload corpus scenarios on `jobs` worker threads (one
/// work item per scenario) and returns the structured outputs plus the
/// byte-comparable renderings, in scenario order — byte-identical to a
/// serial loop for any `jobs`, with the same per-item telemetry
/// snapshot/merge discipline as [`run_sweep_parallel`].
///
/// # Errors
/// The first [`empower_dynamics::ScenarioError`] any scenario produced.
#[allow(clippy::type_complexity)]
pub fn run_workload_corpus_parallel(
    scenarios: &[empower_workload::WorkloadScenario],
    jobs: usize,
    tele: &Telemetry,
) -> Result<
    Vec<(empower_workload::WorkloadOutput, empower_workload::WorkloadCorpusOutput)>,
    empower_dynamics::ScenarioError,
> {
    let enabled = tele.is_enabled();
    let results = crate::parallel::run_indexed(jobs, scenarios.len(), |i| {
        let item_tele = if enabled { Telemetry::enabled() } else { Telemetry::disabled() };
        empower_workload::run_workload_scenario_with::<empower_sim::Simulation>(
            &scenarios[i],
            item_tele.clone(),
        )
        .map(|out| (out, item_tele.snapshot()))
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        let (run, snap) = r?;
        tele.merge_snapshot(&snap);
        out.push(run);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_residential_run_is_consistent() {
        let schemes = [Scheme::Empower, Scheme::Sp, Scheme::SpWifi];
        let run = run_one(TopologyClass::Residential, 42, 1, &schemes, &FluidEval::default());
        assert_eq!(run.scheme_rates.len(), 3);
        // EMPoWER never loses to its own single-path restriction.
        assert!(run.scheme_rates[0][0] >= run.scheme_rates[1][0] - 1e-6);
        // The references bound EMPoWER (the optimal may exceed conservative).
        assert!(run.optimal.flow_rates[0] + 1e-6 >= run.conservative.flow_rates[0]);
        assert!(run.conservative.flow_rates[0] + 0.5 >= run.scheme_rates[0][0]);
    }

    #[test]
    fn enterprise_reference_is_no_smaller_than_empower() {
        let run =
            run_one(TopologyClass::Enterprise, 7, 1, &[Scheme::Empower], &FluidEval::default());
        assert!(run.optimal.flow_rates[0] + 1e-6 >= run.scheme_rates[0][0] * 0.99);
    }
}
