//! Deterministic parallel execution for embarrassingly-parallel sweeps.
//!
//! The model: a sweep is a list of *work items* addressed by index (e.g.
//! `(seed, query)` pairs). A fixed pool of `jobs` scoped threads pulls
//! indices from an atomic cursor, each item is computed independently, and
//! the results are collected **in index order** — so every aggregate
//! downstream (JSON dumps, manifests, printed tables) is byte-identical to
//! a serial run. Determinism holds because (a) each item's computation is
//! itself deterministic and shares no mutable state, and (b) the only
//! thing scheduling can reorder is *completion*, which the index-ordered
//! collection erases.
//!
//! This module is the workspace's **sanctioned merge idiom**: rule D007
//! (unordered cross-thread result collection) names [`run_indexed`] in its
//! diagnostics, resolved through the lint's workspace index rather than by
//! filename. Anything that wants to fan work out across threads should go
//! through here instead of hand-rolling channels.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why collecting a result slot failed. Both variants indicate a bug in
/// the worker pool or a panic inside `f`, never data-dependent behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotError {
    /// A worker panicked while holding slot `index`'s lock.
    Poisoned(usize),
    /// No worker ever stored a result for `index` (cursor logic bug).
    Unfilled(usize),
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotError::Poisoned(i) => write!(f, "result slot {i} poisoned by a worker panic"),
            SlotError::Unfilled(i) => write!(f, "result slot {i} was never filled by any worker"),
        }
    }
}

/// Computes `f(0..count)` on `jobs` worker threads and returns the results
/// in index order. `jobs <= 1` runs serially on the caller's thread
/// (identical results, no pool).
///
/// empower-lint: sanction(D007, D008) — the sanctioned cross-thread merge
/// idiom: the Relaxed work cursor only *distributes* indices (no ordering
/// is ever derived from its return values beyond "each index exactly
/// once"), and results land in index-addressed slots, so completion order
/// cannot reach any observable output.
pub fn run_indexed<T: Send>(jobs: usize, count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(count);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(value);
                }
            });
        }
    });
    let collected: Result<Vec<T>, SlotError> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot.into_inner() {
            Err(_) => Err(SlotError::Poisoned(i)),
            Ok(None) => Err(SlotError::Unfilled(i)),
            Ok(Some(value)) => Ok(value),
        })
        .collect();
    match collected {
        Ok(values) => values,
        // Unreachable unless the pool itself is broken: `thread::scope`
        // re-raises worker panics before collection begins, and the
        // cursor hands out every index below `count` exactly once.
        Err(fault) => panic!("run_indexed: {fault}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let serial = run_indexed(1, 100, |i| i * i);
        let parallel = run_indexed(4, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn slot_errors_name_the_failing_index() {
        assert_eq!(SlotError::Poisoned(3).to_string(), "result slot 3 poisoned by a worker panic");
        assert_eq!(
            SlotError::Unfilled(7).to_string(),
            "result slot 7 was never filled by any worker"
        );
    }
}
