//! Deterministic parallel execution for embarrassingly-parallel sweeps.
//!
//! The model: a sweep is a list of *work items* addressed by index (e.g.
//! `(seed, query)` pairs). A fixed pool of `jobs` scoped threads pulls
//! indices from an atomic cursor, each item is computed independently, and
//! the results are collected **in index order** — so every aggregate
//! downstream (JSON dumps, manifests, printed tables) is byte-identical to
//! a serial run. Determinism holds because (a) each item's computation is
//! itself deterministic and shares no mutable state, and (b) the only
//! thing scheduling can reorder is *completion*, which the index-ordered
//! collection erases.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Computes `f(0..count)` on `jobs` worker threads and returns the results
/// in index order. `jobs <= 1` runs serially on the caller's thread
/// (identical results, no pool).
pub fn run_indexed<T: Send>(jobs: usize, count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(count);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool filled every index")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let serial = run_indexed(1, 100, |i| i * i);
        let parallel = run_indexed(4, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 0, |i| i), Vec::<usize>::new());
    }
}
