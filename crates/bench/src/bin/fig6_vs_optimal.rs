#![forbid(unsafe_code)]
//! Fig. 6: CDF of `T_X / T_optimal` for conservative opt, EMPoWER, MP-2bp,
//! MP-w/o-CC and SP (one saturated flow per run).
//!
//! Paper's claims: EMPoWER is within 10 % of *conservative opt* in 98 %
//! (residential) / 85 % (enterprise) of runs; within 15 % of *optimal* in
//! 99 % / 83 % of runs; and it clearly dominates SP, MP-2bp and MP-w/o-CC.

use empower_bench::sweep::run_sweep_parallel;
use empower_bench::{cdf_line, fraction, BenchArgs};
use empower_core::{FluidEval, Scheme};
use empower_model::topology::random::TopologyClass;

const SCHEMES: [Scheme; 4] = [Scheme::Empower, Scheme::Mp2bp, Scheme::MpWoCc, Scheme::Sp];

struct Output {
    class: String,
    /// Per run: [conservative, EMPoWER, MP-2bp, MP-w/o-CC, SP] over optimal.
    ratios: Vec<Vec<f64>>,
}

empower_telemetry::impl_to_json_struct!(Output { class, ratios });

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(500, 25);
    let params = FluidEval::default();
    let tele = args.telemetry();
    let mut all = Vec::new();

    for class in [TopologyClass::Residential, TopologyClass::Enterprise] {
        let label = format!("{class:?}");
        println!("== Fig. 6 — T_X / T_optimal, {label} topology, {runs} runs ==");
        let mut ratios: Vec<Vec<f64>> = Vec::new();
        for r in run_sweep_parallel(class, args.seed, runs, 1, &SCHEMES, &params, args.jobs, &tele)
        {
            let opt = r.optimal.flow_rates[0];
            if opt <= 1e-9 {
                continue; // disconnected pair: no reference
            }
            let row = vec![
                r.conservative.flow_rates[0] / opt,
                r.scheme_rates[0][0] / opt,
                r.scheme_rates[1][0] / opt,
                r.scheme_rates[2][0] / opt,
                r.scheme_rates[3][0] / opt,
            ];
            ratios.push(row);
        }
        let col = |j: usize| ratios.iter().map(|r| r[j]).collect::<Vec<f64>>();
        cdf_line("conservative opt", &col(0));
        cdf_line("EMPoWER", &col(1));
        cdf_line("MP-2bp", &col(2));
        cdf_line("MP-w/o-CC", &col(3));
        cdf_line("SP", &col(4));
        let emp = col(1);
        let cons = col(0);
        let within = |xs: &[f64], base: &[f64], tol: f64| {
            let v: Vec<f64> = xs.iter().zip(base).map(|(x, b)| x / b.max(1e-12)).collect();
            100.0 * fraction(&v, |r| r >= 1.0 - tol)
        };
        println!(
            "EMPoWER within 10% of conservative opt: {:.0}% of runs;  within 15% of optimal: {:.0}%;  T=optimal (±1%): {:.0}%\n",
            within(&emp, &cons, 0.10),
            100.0 * fraction(&emp, |r| r >= 0.85),
            100.0 * fraction(&emp, |r| r >= 0.99),
        );
        all.push(Output { class: label, ratios });
    }
    args.maybe_dump(&all);
    let mut m = args.manifest("fig6_vs_optimal");
    m.set("runs", runs as u64);
    args.maybe_write_manifest(m, &tele);
}
