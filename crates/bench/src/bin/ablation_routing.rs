#![forbid(unsafe_code)]
//! Ablations of the routing design choices called out in DESIGN.md:
//!
//! * `n-shortest` width `n` (the paper picks 5): total nominal capacity of
//!   the selected combination, averaged over random topologies;
//! * channel-switching cost on/off: how often the CSC changes the selected
//!   single path, and the resulting capacity delta;
//! * link metric: ETT (the paper's `W = d_l`) vs IRU, CATT and hop count
//!   (the paper's footnote 7 reports all alternatives did worse).

use empower_bench::{mean, BenchArgs};
use empower_core::Scheme;
use empower_model::rng::SeedableRng;
use empower_model::rng::StdRng;
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{CarrierSense, InterferenceModel};
use empower_routing::{
    best_combination, shortest_path, CscMode, LinkMetric, MetricKind, MultipathConfig, RouteQuery,
};

#[derive(Default)]
struct Output {
    n_sweep: Vec<(usize, f64)>,
    csc_change_fraction: f64,
    csc_capacity_gain: f64,
    metric_capacity: Vec<(String, f64)>,
}

empower_telemetry::impl_to_json_struct!(Output {
    n_sweep,
    csc_change_fraction,
    csc_capacity_gain,
    metric_capacity
});

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(200, 20);
    let tele = args.telemetry();
    let mut out = Output::default();

    // Instances: residential topologies with one random hybrid flow.
    let instances: Vec<_> = (0..runs)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(args.seed + i as u64);
            let topo = generate(&mut rng, &RandomTopologyConfig::new(TopologyClass::Residential));
            let imap = CarrierSense::default().build_map(&topo.net);
            let (s, d) = topo.sample_flow(&mut rng);
            (topo.net, imap, s, d)
        })
        .collect();

    println!("== Ablation: n-shortest width (mean combination capacity, Mbps) ==");
    for n in [1usize, 2, 3, 5, 8] {
        let caps: Vec<f64> = instances
            .iter()
            .map(|(net, imap, s, d)| {
                let q = RouteQuery::new(*s, *d).with_mediums(&Scheme::Empower.mediums());
                let config = MultipathConfig { n_shortest: n, ..Default::default() };
                best_combination(net, imap, &q, &config).total_rate()
            })
            .collect();
        println!("  n = {n}: {:.2}", mean(&caps));
        out.n_sweep.push((n, mean(&caps)));
    }

    println!("\n== Ablation: channel-switching cost ==");
    let mut changed = 0usize;
    let mut with_csc = Vec::new();
    let mut without = Vec::new();
    for (net, imap, s, d) in &instances {
        let q = RouteQuery::new(*s, *d).with_mediums(&Scheme::Empower.mediums());
        let metric = LinkMetric::ett(net);
        let a = shortest_path(net, &metric, CscMode::Paper, &q);
        let b = shortest_path(net, &metric, CscMode::Zero, &q);
        if let (Some(a), Some(b)) = (a, b) {
            if a.path.links() != b.path.links() {
                changed += 1;
            }
            with_csc.push(a.path.capacity(net, imap));
            without.push(b.path.capacity(net, imap));
        }
    }
    out.csc_change_fraction = changed as f64 / instances.len() as f64;
    out.csc_capacity_gain = mean(&with_csc) / mean(&without).max(1e-9) - 1.0;
    println!(
        "  CSC changes the single path in {:.0}% of instances; capacity delta {:+.1}%",
        100.0 * out.csc_change_fraction,
        100.0 * out.csc_capacity_gain
    );

    println!("\n== Ablation: link metric (mean single-path capacity, Mbps) ==");
    for kind in [MetricKind::Ett, MetricKind::Iru, MetricKind::Catt, MetricKind::HopCount] {
        let caps: Vec<f64> = instances
            .iter()
            .map(|(net, imap, s, d)| {
                let q = RouteQuery::new(*s, *d).with_mediums(&Scheme::Empower.mediums());
                let metric = LinkMetric::new(kind, net, imap);
                shortest_path(net, &metric, CscMode::Paper, &q)
                    .map_or(0.0, |o| o.path.capacity(net, imap))
            })
            .collect();
        println!("  {kind:?}: {:.2}", mean(&caps));
        out.metric_capacity.push((format!("{kind:?}"), mean(&caps)));
    }
    tele.counter("ablation/instances", empower_telemetry::CounterType::Packets)
        .add(instances.len() as u64);
    args.maybe_dump(&out);
    let mut m = args.manifest("ablation_routing");
    m.set("runs", runs as u64)
        .set("csc_change_fraction", out.csc_change_fraction)
        .set("csc_capacity_gain", out.csc_capacity_gain);
    args.maybe_write_manifest(m, &tele);
}
