#![forbid(unsafe_code)]
//! Fig. 10: testbed-wide evaluation over random station pairs.
//!
//! Left plot: CDF of `T_X / T_EMPoWER` for MP-2bp, SP, SP-bf, SP-WiFi,
//! SP-WiFi-bf and MP-mWiFi. Right plot: EMPoWER's throughput after 10–20 s
//! and 190–200 s as a fraction of its final value.
//!
//! Paper's claims: hybrid beats single-channel WiFi everywhere; EMPoWER
//! beats MP-mWiFi in ≈ 75 % of pairs (with gains up to 10×, losses never
//! worse than 2.5×); EMPoWER beats even the brute-force single path in
//! ≈ 60 % of pairs; 80 % of pairs are within 80 % of the final rate after
//! 10 s.

use empower_bench::{cdf_line, fraction, BenchArgs};
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_testbed::fig10::{run_traced, Fig10Config, SIM_SCHEMES};

fn main() {
    let args = BenchArgs::parse();
    let config = Fig10Config {
        pairs: args.sweep(50, 6),
        duration: if args.quick { 120.0 } else { 300.0 },
        seed: args.seed,
        ..Default::default()
    };
    let t = testbed22(args.seed);
    let imap = CarrierSense::default().build_map(&t.net);
    let tele = args.telemetry();
    println!("== Fig. 10 — {} random pairs on the 22-node testbed ==", config.pairs);
    let rows = run_traced(&t.net, &imap, &config, &tele);

    // Left: ratios vs EMPoWER.
    let ratio = |f: &dyn Fn(&empower_testbed::fig10::Fig10Row) -> f64| -> Vec<f64> {
        rows.iter().filter(|r| r.empower_final > 1e-9).map(|r| f(r) / r.empower_final).collect()
    };
    for (si, scheme) in SIM_SCHEMES.iter().enumerate().skip(1) {
        cdf_line(scheme.label(), &ratio(&|r| r.throughput[si]));
    }
    cdf_line("SP-bf", &ratio(&|r| r.sp_bf));
    cdf_line("SP-WiFi-bf", &ratio(&|r| r.sp_wifi_bf));

    let vs_mwifi = ratio(&|r| r.throughput[3]);
    let vs_spbf = ratio(&|r| r.sp_bf);
    println!(
        "\nEMPoWER beats MP-mWiFi in {:.0}% of pairs (max EMPoWER gain {:.1}x, max mWiFi gain {:.1}x)",
        100.0 * fraction(&vs_mwifi, |x| x < 1.0),
        vs_mwifi.iter().cloned().filter(|&x| x > 0.0).fold(f64::INFINITY, f64::min).recip(),
        vs_mwifi.iter().cloned().fold(0.0, f64::max),
    );
    println!(
        "EMPoWER beats brute-force SP in {:.0}% of pairs",
        100.0 * fraction(&vs_spbf, |x| x < 1.0)
    );
    let multi = rows.iter().filter(|r| r.empower_routes >= 2).count();
    println!("EMPoWER used ≥2 routes for {multi}/{} pairs", rows.len());

    // Right: convergence snapshot.
    let early: Vec<f64> = rows
        .iter()
        .filter(|r| r.empower_final > 1e-9)
        .map(|r| r.empower_10_20 / r.empower_final)
        .collect();
    let late: Vec<f64> = rows
        .iter()
        .filter(|r| r.empower_final > 1e-9)
        .map(|r| r.empower_190_200 / r.empower_final)
        .collect();
    println!("\nconvergence (fraction of final throughput):");
    cdf_line("after 10-20 s", &early);
    cdf_line("after 190-200 s", &late);
    println!(
        "within 80% of final after 10 s: {:.0}% of pairs",
        100.0 * fraction(&early, |x| x >= 0.8)
    );
    args.maybe_dump(&rows);
    let mut m = args.manifest("fig10_testbed_cdf");
    m.set("pairs", config.pairs as u64).set("duration_s", config.duration);
    args.maybe_write_manifest(m, &tele);
}
