#![forbid(unsafe_code)]
//! Table 1: download times for the Tiny / Short / Long / Conc experiments,
//! EMPoWER vs MP-w/o-CC.
//!
//! Paper's numbers (mean ± std, seconds):
//!
//! |                        | EMPoWER      | MP-w/o-CC     |
//! |------------------------|--------------|---------------|
//! | Tiny, F. 6-13 (100 kB) | 0.128 ± 0.03 | 0.159 ± 0.09  |
//! | Short, F. 6-13 (5 MB)  | 9.9 ± 2.1    | 13.3 ± 1.9    |
//! | Long, F. 6-13 (2 GB)   | 333.2 ± 27.7 | 534.5 ± 12.6  |
//! | Conc, F. 6-13 (2 GB)   | 416.8 ± 30.3 | 581.0 ± 61.4  |
//! | Conc, F. 12-8 (25 MB)  | 64.9 ± 6.5   | 155.2 ± 24.3  |
//!
//! Absolute values depend on the (simulated) link capacities; the shape to
//! reproduce is EMPoWER ≤ MP-w/o-CC on every row, with the gap widening
//! for long flows and under concurrency.

use empower_bench::BenchArgs;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_testbed::table1::{run_experiment_traced, Experiment};

fn main() {
    let args = BenchArgs::parse();
    let t = testbed22(args.seed);
    let imap = CarrierSense::default().build_map(&t.net);
    let tele = args.telemetry();
    println!("== Table 1 — download times (mean ± std, seconds) ==");
    println!("{:<26}{:>18}{:>18}", "", "EMPoWER", "MP-w/o-CC");
    let mut rows = Vec::new();
    for exp in Experiment::ALL {
        let reps = args.runs.unwrap_or(if args.quick { 2 } else { exp.paper_repetitions() });
        let row = run_experiment_traced(&t.net, &imap, exp, reps, args.seed, &tele);
        println!(
            "{:<26}{:>11.1} ± {:>4.1}{:>11.1} ± {:>4.1}",
            exp.label(),
            row.empower.mean_secs,
            row.empower.std_secs,
            row.mp_wo_cc.mean_secs,
            row.mp_wo_cc.std_secs
        );
        if let (Some(e), Some(w)) = (row.conc_flow_empower, row.conc_flow_wo_cc) {
            println!(
                "{:<26}{:>11.1} ± {:>4.1}{:>11.1} ± {:>4.1}",
                "Conc, F. 12-8 (25 MB)", e.mean_secs, e.std_secs, w.mean_secs, w.std_secs
            );
        }
        rows.push(row);
    }
    args.maybe_dump(&rows);
    let mut m = args.manifest("table1_downloads");
    m.set("experiments", rows.len() as u64);
    args.maybe_write_manifest(m, &tele);
}
