#![forbid(unsafe_code)]
//! Table 1: download times for the Tiny / Short / Long / Conc experiments,
//! EMPoWER vs MP-w/o-CC.
//!
//! Paper's numbers (mean ± std, seconds):
//!
//! |                        | EMPoWER      | MP-w/o-CC     |
//! |------------------------|--------------|---------------|
//! | Tiny, F. 6-13 (100 kB) | 0.128 ± 0.03 | 0.159 ± 0.09  |
//! | Short, F. 6-13 (5 MB)  | 9.9 ± 2.1    | 13.3 ± 1.9    |
//! | Long, F. 6-13 (2 GB)   | 333.2 ± 27.7 | 534.5 ± 12.6  |
//! | Conc, F. 6-13 (2 GB)   | 416.8 ± 30.3 | 581.0 ± 61.4  |
//! | Conc, F. 12-8 (25 MB)  | 64.9 ± 6.5   | 155.2 ± 24.3  |
//!
//! Absolute values depend on the (simulated) link capacities; the shape to
//! reproduce is EMPoWER ≤ MP-w/o-CC on every row, with the gap widening
//! for long flows and under concurrency.
//!
//! `--jobs N` fans the `(scheme, repetition)` grid out over the
//! deterministic parallel runner; every repetition is independently seeded,
//! and results/counters merge in grid order, so the table, JSON dump and
//! manifest are byte-identical for any job count.

use empower_bench::{parallel::run_indexed, BenchArgs};
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_telemetry::Telemetry;
use empower_testbed::table1::{row_from_samples, run_repetition, Experiment, SCHEMES};

fn main() {
    let args = BenchArgs::parse();
    let t = testbed22(args.seed);
    let imap = CarrierSense::default().build_map(&t.net);
    let tele = args.telemetry();
    println!("== Table 1 — download times (mean ± std, seconds) ==");
    println!("{:<26}{:>18}{:>18}", "", "EMPoWER", "MP-w/o-CC");
    let mut rows = Vec::new();
    for exp in Experiment::ALL {
        let reps = args.runs.unwrap_or(if args.quick { 2 } else { exp.paper_repetitions() });
        // Work item i = (scheme i / reps, repetition i % reps): the same
        // scheme-major order the serial loop runs, so index-ordered merge
        // reproduces it exactly.
        let enabled = tele.is_enabled();
        let cells = run_indexed(args.jobs, SCHEMES.len() * reps, |i| {
            let item_tele = if enabled { Telemetry::enabled() } else { Telemetry::disabled() };
            let cell = run_repetition(
                &t.net,
                &imap,
                exp,
                SCHEMES[i / reps],
                i % reps,
                args.seed,
                &item_tele,
            );
            (cell, item_tele.snapshot())
        });
        let mut samples = vec![(Vec::new(), Vec::new()); SCHEMES.len()];
        for (i, ((main, conc), snap)) in cells.into_iter().enumerate() {
            tele.merge_snapshot(&snap);
            samples[i / reps].0.extend(main);
            samples[i / reps].1.extend(conc);
        }
        let row = row_from_samples(exp, &samples[0], &samples[1]);
        println!(
            "{:<26}{:>11.1} ± {:>4.1}{:>11.1} ± {:>4.1}",
            exp.label(),
            row.empower.mean_secs,
            row.empower.std_secs,
            row.mp_wo_cc.mean_secs,
            row.mp_wo_cc.std_secs
        );
        if let (Some(e), Some(w)) = (row.conc_flow_empower, row.conc_flow_wo_cc) {
            println!(
                "{:<26}{:>11.1} ± {:>4.1}{:>11.1} ± {:>4.1}",
                "Conc, F. 12-8 (25 MB)", e.mean_secs, e.std_secs, w.mean_secs, w.std_secs
            );
        }
        rows.push(row);
    }
    args.maybe_dump(&rows);
    let mut m = args.manifest("table1_downloads");
    m.set("experiments", rows.len() as u64);
    args.maybe_write_manifest(m, &tele);
}
