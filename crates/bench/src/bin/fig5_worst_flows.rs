#![forbid(unsafe_code)]
//! Fig. 5: CDF of `T_MP-mWiFi / T_EMPoWER` restricted to the *worst flows*
//! — the bottom 20 % of runs by `min(T_MP-mWiFi, T_EMPoWER)`, excluding
//! runs where neither scheme has connectivity.
//!
//! Paper's claims: for the worst flows EMPoWER wins in ≈ 60 % of the cases
//! with gains up to 3–4×; MP-mWiFi wins in 15–25 % of cases but never by
//! more than 1.7×; and in 6 % (residential) / 19 % (enterprise) of the
//! worst flows PLC/WiFi has connectivity where multi-channel WiFi has none.

use empower_bench::sweep::run_sweep_parallel;
use empower_bench::{cdf_line, fraction, BenchArgs};
use empower_core::{FluidEval, Scheme};
use empower_model::topology::random::TopologyClass;

const SCHEMES: [Scheme; 2] = [Scheme::Empower, Scheme::MpMwifi];

struct Output {
    class: String,
    /// (T_mwifi, T_empower) for the worst-20 % runs.
    worst_pairs: Vec<(f64, f64)>,
    rescue_fraction: f64,
}

empower_telemetry::impl_to_json_struct!(Output { class, worst_pairs, rescue_fraction });

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(1000, 40);
    let params = FluidEval::default();
    let tele = args.telemetry();
    let mut all = Vec::new();

    for class in [TopologyClass::Residential, TopologyClass::Enterprise] {
        let label = format!("{class:?}");
        println!("== Fig. 5 — worst flows, {label} topology, {runs} runs ==");
        let pairs: Vec<(f64, f64)> =
            run_sweep_parallel(class, args.seed, runs, 1, &SCHEMES, &params, args.jobs, &tele)
                .iter()
                .map(|r| (r.scheme_rates[1][0], r.scheme_rates[0][0])) // (mwifi, empower)
                .filter(|&(a, b)| a > 1e-9 || b > 1e-9) // drop doubly-disconnected
                .collect();
        // Bottom 20 % by min(T_mwifi, T_empower).
        let mut sorted = pairs.clone();
        sorted.sort_by(|x, y| x.0.min(x.1).total_cmp(&y.0.min(y.1)));
        let cut = (sorted.len() as f64 * 0.2).ceil() as usize;
        let worst = &sorted[..cut.max(1).min(sorted.len())];

        let ratios: Vec<f64> =
            worst.iter().filter(|&&(_, emp)| emp > 1e-9).map(|&(mw, emp)| mw / emp).collect();
        cdf_line("T_mWiFi / T_EMPoWER", &ratios);
        let max_emp_gain =
            ratios.iter().cloned().filter(|&r| r > 0.0).fold(f64::INFINITY, f64::min).recip();
        println!(
            "EMPoWER better (ratio < 1): {:.0}%   mWiFi better: {:.0}%   max EMPoWER gain: {:.1}x (finite cases)   max mWiFi gain: {:.1}x",
            100.0 * fraction(&ratios, |r| r < 1.0),
            100.0 * fraction(&ratios, |r| r > 1.0),
            max_emp_gain,
            ratios.iter().cloned().fold(0.0, f64::max),
        );
        let rescue =
            fraction(&worst.iter().map(|&(mw, _)| mw).collect::<Vec<_>>(), |mw| mw <= 1e-9);
        println!(
            "PLC/WiFi brings connectivity where mWiFi has none: {:.0}% of worst flows\n",
            100.0 * rescue
        );
        all.push(Output { class: label, worst_pairs: worst.to_vec(), rescue_fraction: rescue });
    }
    args.maybe_dump(&all);
    let mut m = args.manifest("fig5_worst_flows");
    m.set("runs", runs as u64);
    args.maybe_write_manifest(m, &tele);
}
