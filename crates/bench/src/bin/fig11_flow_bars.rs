#![forbid(unsafe_code)]
//! Fig. 11: mean ± std of the converged throughput (last 100 s, one sample
//! per second) for ten selected flows under EMPoWER, MP-mWiFi and SP.
//!
//! Paper's reading: multipath does not inflate throughput variance, and
//! EMPoWER's biggest wins over MP-mWiFi are the poor-connectivity flows
//! (coverage, e.g. Flows 4-19 and 1-11).

use empower_bench::BenchArgs;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_testbed::fig11::{run_flows_traced, Fig11Config, FLOWS, SCHEMES};

fn main() {
    let args = BenchArgs::parse();
    let config = Fig11Config {
        duration: if args.quick { 150.0 } else { 300.0 },
        seed: args.seed,
        ..Default::default()
    };
    let t = testbed22(args.seed);
    let imap = CarrierSense::default().build_map(&t.net);
    let tele = args.telemetry();
    println!("== Fig. 11 — converged throughput, mean ± std (Mbps) ==");
    let flows =
        if args.quick { &FLOWS[..args.runs.unwrap_or(3).min(FLOWS.len())] } else { &FLOWS[..] };
    let rows = run_flows_traced(&t.net, &imap, &config, flows, &tele);
    print!("{:<8}", "flow");
    for s in SCHEMES {
        print!("{:>22}", s.label());
    }
    println!();
    for row in &rows {
        print!("{:<8}", format!("{}-{}", row.src, row.dst));
        for c in &row.cells {
            print!("{:>15.1} ± {:>4.1}", c.mean_mbps, c.std_mbps);
        }
        println!();
    }
    // Variance claim: "in general, multipath does not cause variations
    // larger than single-path" — compare per-flow stds.
    let emp_std: f64 = rows.iter().map(|r| r.cells[0].std_mbps).sum();
    let sp_std: f64 = rows.iter().map(|r| r.cells[2].std_mbps).sum();
    let wins = rows.iter().filter(|r| r.cells[0].mean_mbps >= r.cells[2].mean_mbps).count();
    println!(
        "\nEMPoWER ≥ SP on {wins}/{} flows; total std — EMPoWER {:.1} vs SP {:.1} \
         (comparable: multipath reordering adds no systematic variance)",
        rows.len(),
        emp_std,
        sp_std
    );
    args.maybe_dump(&rows);
    let mut m = args.manifest("fig11_flow_bars");
    m.set("flows", rows.len() as u64).set("duration_s", config.duration);
    args.maybe_write_manifest(m, &tele);
}
