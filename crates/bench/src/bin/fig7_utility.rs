#![forbid(unsafe_code)]
//! Fig. 7: CDF of `U_X / U_optimal` with three competing saturated flows
//! between random pairs, `U_X = Σ_f log(1 + x_f)`.
//!
//! Paper's claims: EMPoWER tracks conservative opt closely; the multipath
//! gains require congestion control (MP-w/o-CC falls far behind); EMPoWER
//! beats MP-2bp even though its route selection optimizes a single flow's
//! throughput.

use empower_bench::sweep::run_sweep_parallel;
use empower_bench::{cdf_line, BenchArgs};
use empower_core::{FluidEval, Scheme};
use empower_model::topology::random::TopologyClass;

const SCHEMES: [Scheme; 4] = [Scheme::Empower, Scheme::Mp2bp, Scheme::MpWoCc, Scheme::Sp];

struct Output {
    class: String,
    /// Per run: [conservative, EMPoWER, MP-2bp, MP-w/o-CC, SP] over optimal.
    utility_ratios: Vec<Vec<f64>>,
}

empower_telemetry::impl_to_json_struct!(Output { class, utility_ratios });

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(500, 20);
    let params = FluidEval::default();
    let tele = args.telemetry();
    let mut all = Vec::new();

    for class in [TopologyClass::Residential, TopologyClass::Enterprise] {
        let label = format!("{class:?}");
        println!("== Fig. 7 — U_X / U_optimal, 3 flows, {label} topology, {runs} runs ==");
        let mut ratios: Vec<Vec<f64>> = Vec::new();
        for r in run_sweep_parallel(class, args.seed, runs, 3, &SCHEMES, &params, args.jobs, &tele)
        {
            let opt = r.optimal.utility;
            if opt <= 1e-9 {
                continue;
            }
            ratios.push(vec![
                r.conservative.utility / opt,
                r.scheme_utility[0] / opt,
                r.scheme_utility[1] / opt,
                r.scheme_utility[2] / opt,
                r.scheme_utility[3] / opt,
            ]);
        }
        let col = |j: usize| ratios.iter().map(|r| r[j]).collect::<Vec<f64>>();
        cdf_line("conservative opt", &col(0));
        cdf_line("EMPoWER", &col(1));
        cdf_line("MP-2bp", &col(2));
        cdf_line("MP-w/o-CC", &col(3));
        cdf_line("SP", &col(4));
        println!();
        all.push(Output { class: label, utility_ratios: ratios });
    }
    args.maybe_dump(&all);
    let mut m = args.manifest("fig7_utility");
    m.set("runs", runs as u64).set("flows", 3u64);
    args.maybe_write_manifest(m, &tele);
}
