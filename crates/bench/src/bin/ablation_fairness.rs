#![forbid(unsafe_code)]
//! Ablation of the utility family (§4: "a chosen performance/fairness
//! tradeoff").
//!
//! The paper fixes proportional fairness `U = log(1 + x)`; the controller
//! and the centralized solvers accept any α-fair utility. This binary
//! sweeps α on three competing flows of a residential topology: α → 0
//! approaches throughput maximization (starving unlucky flows), α = 1 is
//! the paper's choice, larger α approaches max-min fairness (sacrificing
//! total throughput for the weakest flow).

use empower_baselines::{maximize_utility, CapacityRegion, RegionKind};
use empower_bench::sweep::make_instance;
use empower_bench::{mean, BenchArgs};
use empower_cc::{AlphaFair, CcProblem, ProportionalFair, Utility};
use empower_core::Scheme;
use empower_model::topology::random::TopologyClass;

struct Row {
    alpha: f64,
    total_mbps: f64,
    min_flow_mbps: f64,
    jain_index: f64,
}

fn jain(xs: &[f64]) -> f64 {
    let s: f64 = xs.iter().sum();
    let q: f64 = xs.iter().map(|x| x * x).sum();
    if q <= 0.0 {
        0.0
    } else {
        s * s / (xs.len() as f64 * q)
    }
}

fn solve<U: Utility>(problem: &CcProblem, region: &CapacityRegion, u: &U) -> Vec<f64> {
    maximize_utility(problem, region, u, 300).flow_rates
}

empower_telemetry::impl_to_json_struct!(Row { alpha, total_mbps, min_flow_mbps, jain_index });

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(60, 10);
    let tele = args.telemetry();
    println!("== Ablation: α-fair utility family (3 flows, residential) ==");
    println!("{:>8} {:>12} {:>12} {:>12}", "α", "total Mbps", "min flow", "Jain index");
    let mut rows = Vec::new();
    for &alpha in &[0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut totals = Vec::new();
        let mut mins = Vec::new();
        let mut jains = Vec::new();
        for i in 0..runs {
            let (net, imap, flows) =
                make_instance(TopologyClass::Residential, args.seed + i as u64, 3);
            // Shared route set across α so only the objective varies.
            let mut flow_routes = Vec::new();
            let mut ok = true;
            for &(s, d) in &flows {
                let r = Scheme::Empower.compute_routes(&net, &imap, s, d, 5);
                if r.is_empty() {
                    ok = false;
                    break;
                }
                flow_routes.push(r.paths());
            }
            if !ok {
                continue;
            }
            tele.counter("ablation/instances", empower_telemetry::CounterType::Packets).inc();
            let problem = CcProblem::new(&net, &imap, flow_routes);
            let region = CapacityRegion::build(&problem, &imap, RegionKind::Conservative, 0.0);
            let rates = if (alpha - 1.0).abs() < 1e-9 {
                solve(&problem, &region, &ProportionalFair)
            } else {
                solve(&problem, &region, &AlphaFair::new(alpha))
            };
            totals.push(rates.iter().sum());
            mins.push(rates.iter().cloned().fold(f64::INFINITY, f64::min));
            jains.push(jain(&rates));
        }
        println!(
            "{:>8.2} {:>12.1} {:>12.1} {:>12.3}",
            alpha,
            mean(&totals),
            mean(&mins),
            mean(&jains)
        );
        rows.push(Row {
            alpha,
            total_mbps: mean(&totals),
            min_flow_mbps: mean(&mins),
            jain_index: mean(&jains),
        });
    }
    println!("\n(total throughput falls and the worst flow + Jain index rise with α —");
    println!(" the §4 fairness knob; the paper's log(1+x) is the α = 1 row.)");
    args.maybe_dump(&rows);
    let mut m = args.manifest("ablation_fairness");
    m.set("runs", runs as u64);
    args.maybe_write_manifest(m, &tele);
}
