#![forbid(unsafe_code)]
//! Fig. 9: the §6.2 worked example — time evolution of the rates injected
//! on both routes of Flow 1-13 and of its received throughput, while
//! Flow 4-7 switches on (t = 1950 s) and off (t = 3950 s).

use empower_bench::BenchArgs;
use empower_testbed::fig9;

fn main() {
    let args = BenchArgs::parse();
    let tele = args.telemetry();
    let data = fig9::run_traced(args.seed, &tele);
    println!("== Fig. 9 — Flow 1-13 over two routes, contending Flow 4-7 ==");
    println!("best single-path capacity: {:.1} Mbps", data.best_single_path);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "t[s]", "route1", "route2", "sent", "received", "flow4-7"
    );
    let step = if args.quick { 250 } else { 100 };
    for t in (0..data.total_sent.len()).step_by(step) {
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            t,
            data.route1_rate.get(t).copied().unwrap_or(0.0),
            data.route2_rate.get(t).copied().unwrap_or(0.0),
            data.total_sent.get(t).copied().unwrap_or(0.0),
            data.received.get(t).copied().unwrap_or(0.0),
            data.flow47_received.get(t).copied().unwrap_or(0.0),
        );
    }
    // The three phases, summarized.
    let mean = |xs: &[f64], lo: usize, hi: usize| -> f64 {
        let hi = hi.min(xs.len());
        let lo = lo.min(hi);
        if hi == lo {
            0.0
        } else {
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        }
    };
    println!("\nphase means (received, Mbps):");
    println!("  alone   (600–1900 s): {:.1}", mean(&data.received, 600, 1900));
    println!("  contend (2200–3900 s): {:.1}", mean(&data.received, 2200, 3900));
    println!("  alone   (4200–5000 s): {:.1}", mean(&data.received, 4200, 5000));
    println!(
        "  route-1 rate while contending: {:.2} (WiFi vacated for Flow 4-7)",
        mean(&data.route1_rate, 2200, 3900)
    );
    args.maybe_dump(&data);
    let mut m = args.manifest("fig9_example");
    m.set("duration_s", fig9::DURATION);
    args.maybe_write_manifest(m, &tele);
}
