#![forbid(unsafe_code)]
//! Ablation of destination-side delay equalization (§6.4).
//!
//! TCP over two routes with different lengths suffers when the fast route's
//! packets sit in the reorder buffer waiting for stragglers: RTT inflates,
//! dup-ACK bursts and spurious timeouts follow. The paper's fix holds fast-
//! route packets at the destination until both routes present comparable
//! delays. This binary runs the same two-route TCP flow with and without
//! the equalizer.

use empower_bench::BenchArgs;
use empower_core::{sim::SimConfig, sim::TrafficPattern, Scheme};
use empower_model::{InterferenceModel, SharedMedium};
use empower_sim::{FlowSpecSim, Simulation};
use empower_testbed::fig9::fig9_network;

struct Row {
    delta: f64,
    delay_eq: bool,
    tcp_mbps: f64,
    mean_delay_ms: f64,
    reorder_losses: u64,
}

empower_telemetry::impl_to_json_struct!(Row {
    delta,
    delay_eq,
    tcp_mbps,
    mean_delay_ms,
    reorder_losses
});

fn main() {
    let args = BenchArgs::parse();
    let duration = if args.quick { 150.0 } else { 400.0 };
    let tele = args.telemetry();
    println!("== Ablation: TCP delay equalization (two routes of different length) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>14} {:>15}",
        "δ", "delay-eq", "TCP Mbps", "mean delay ms", "reorder losses"
    );
    let mut rows = Vec::new();
    for (delta, delay_eq) in [(0.05, false), (0.05, true), (0.3, false), (0.3, true)] {
        let (net, [n1, _, _, n13]) = fig9_network();
        let imap = SharedMedium.build_map(&net);
        let routes = Scheme::Empower.compute_routes(&net, &imap, n1, n13, 5);
        let mut sim = Simulation::new(
            net,
            imap,
            SimConfig { delta, tcp_delta: delta, seed: args.seed, ..Default::default() },
        );
        sim.attach_telemetry(tele.clone());
        let f = sim.add_flow(FlowSpecSim {
            src: n1,
            dst: n13,
            routes: routes.paths(),
            use_cc: true,
            open_loop_rates: Vec::new(),
            pattern: TrafficPattern::Tcp { start: 0.0, stop: duration, size_bytes: 0 },
            delay_equalization: delay_eq,
        });
        let report = sim.run(duration);
        let to = duration as usize;
        let row = Row {
            delta,
            delay_eq,
            tcp_mbps: report.flows[f].mean_throughput(to.saturating_sub(100), to),
            mean_delay_ms: report.flows[f].mean_delay_secs() * 1e3,
            reorder_losses: report.flows[f].declared_lost,
        };
        println!(
            "{:>6.2} {:>10} {:>10.1} {:>14.1} {:>15}",
            row.delta, row.delay_eq, row.tcp_mbps, row.mean_delay_ms, row.reorder_losses
        );
        rows.push(row);
    }
    println!(
        "\n(the equalizer matters when cross-route delay skew is large — small δ,\n         deep queues; with the paper's δ = 0.3 the routes stay shallow and it is\n         nearly free either way)"
    );
    args.maybe_dump(&rows);
    let mut m = args.manifest("ablation_delay_eq");
    m.set("duration_s", duration);
    args.maybe_write_manifest(m, &tele);
}
