#![forbid(unsafe_code)]
//! SLO table for the seeded workload corpus (`empower_workload::corpus`):
//! per client group, flow-completion-time quantiles, goodput and Jain
//! fairness, as produced by the workload DSL's deterministic compiler.
//!
//! `--jobs N` runs the scenarios on the deterministic parallel sweep
//! runner — results and manifests are byte-identical for any job count
//! (gated in `crates/bench/tests/parallel_determinism.rs`). `--quick`
//! trims the corpus to its first scenario; `--json`/`--metrics` dump raw
//! rows and the run manifest.

use empower_bench::sweep::run_workload_corpus_parallel;
use empower_bench::BenchArgs;
use empower_telemetry::{Json, SloSummary};
use empower_workload::workload_corpus;

fn slo_json(s: &SloSummary) -> Json {
    Json::obj([
        ("count", Json::UInt(s.count)),
        ("sum", Json::UInt(s.sum)),
        ("min", Json::UInt(s.min)),
        ("max", Json::UInt(s.max)),
        ("p50", Json::UInt(s.p50)),
        ("p95", Json::UInt(s.p95)),
        ("p99", Json::UInt(s.p99)),
    ])
}

fn main() {
    let args = BenchArgs::parse();
    let mut scenarios = workload_corpus();
    if args.quick {
        scenarios.truncate(1);
    }
    let tele = args.telemetry();
    let outputs = match run_workload_corpus_parallel(&scenarios, args.jobs, &tele) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("workload corpus failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:<16} {:<12} {:>5} {:>9} {:>22} {:>13} {:>6}",
        "scenario", "client", "flows", "MB", "fct p50/p95/p99 ms", "goodput p50", "jain"
    );
    let mut rows = Vec::new();
    for (s, (out, _)) in scenarios.iter().zip(&outputs) {
        for c in &out.slo.clients {
            println!(
                "{:<16} {:<12} {:>5} {:>9.2} {:>10}/{:>5}/{:>5} {:>8} kbps {:>6}",
                s.name,
                c.label,
                c.flows,
                c.delivered_bytes as f64 / 1e6,
                c.fct_ms.p50,
                c.fct_ms.p95,
                c.fct_ms.p99,
                c.goodput_kbps.p50,
                c.jain_milli,
            );
            rows.push(Json::obj([
                ("scenario", Json::Str(s.name.into())),
                ("client", Json::Str(c.label.clone())),
                ("flows", Json::UInt(c.flows)),
                ("delivered_bytes", Json::UInt(c.delivered_bytes)),
                ("fct_ms", slo_json(&c.fct_ms)),
                ("goodput_kbps", slo_json(&c.goodput_kbps)),
                ("jain_milli", Json::UInt(c.jain_milli)),
            ]));
        }
    }

    if let Some(path) = &args.json {
        let body = Json::Arr(rows).to_string_pretty();
        std::fs::write(path, body).expect("write json results");
        eprintln!("(raw results written to {path})");
    }
    // No `jobs` key: like the other `--jobs` binaries, the manifest must
    // stay byte-identical across job counts.
    let mut m = args.manifest("fig_workload");
    m.set("scenarios", scenarios.len() as u64);
    args.maybe_write_manifest(m, &tele);
}
