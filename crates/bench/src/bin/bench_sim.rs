#![forbid(unsafe_code)]
//! Perf harness for the PR-5 zero-allocation simulator hot path: the
//! timer-wheel + bitset-MAC + packet-slab [`Simulation`] vs the retained
//! pre-optimization [`ReferenceSimulation`] on the pinned equivalence
//! corpus (`empower_sim::corpus`).
//!
//! Asserts byte-identical reports, traces and telemetry manifests on every
//! corpus scenario, reports deterministic work counters for both engines
//! (events dispatched, interference-domain probes, hot-path allocations,
//! slab reuse, bytes not allocated), measures wall-clock event-dispatch
//! throughput for both, and writes `BENCH_sim.json` (default at the
//! current directory, `--json` overrides).
//!
//! With `--budget <file>` the binary acts as CI's perf-regression gate:
//! the run fails if the optimized engine's steady-state hot-path
//! allocations exceed the checked-in budget, or the reference/optimized
//! allocation ratio drops below the budgeted floor. Both gated numbers are
//! deterministic counters — no wall-clock flakiness.

use empower_bench::harness::{bench_stats, BenchStats};
use empower_bench::BenchArgs;
use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::campus::{campus, CampusConfig};
use empower_model::{CarrierSense, InterferenceModel, Path};
use empower_sim::corpus::{corpus, run_scenario, run_scenario_plain, CorpusScenario};
use empower_sim::{
    FlowSpecSim, ReferenceSimulation, ShardedSimulation, SimConfig, SimPerfStats, Simulation,
};
use empower_telemetry::{Json, ToJson};

/// Scenarios timed by `bench_stats` (shortened below so one iteration
/// stays well under a batch): the 22-node testbed, whose interference
/// domains span hundreds of links — the regime the per-frame domain walks
/// and clones of the reference engine are priced in.
const TIMED: &[&str] = &["testbed_pair_1_4_13", "testbed_tcp_1_13"];
/// Duration override for the timed subset, seconds.
const TIMED_SECS: f64 = 12.0;

struct Counters {
    events_dispatched: u64,
    domain_probes: u64,
    hot_allocs: u64,
    slab_hits: u64,
    slab_grows: u64,
    bytes_not_allocated: u64,
}

impl From<SimPerfStats> for Counters {
    fn from(p: SimPerfStats) -> Self {
        Counters {
            events_dispatched: p.events_dispatched,
            domain_probes: p.domain_probes,
            hot_allocs: p.hot_allocs,
            slab_hits: p.slab_hits,
            slab_grows: p.slab_grows,
            bytes_not_allocated: p.bytes_not_allocated,
        }
    }
}

empower_telemetry::impl_to_json_struct!(Counters {
    events_dispatched,
    domain_probes,
    hot_allocs,
    slab_hits,
    slab_grows,
    bytes_not_allocated
});

/// One point of the sharded-simulation scale curve (DESIGN.md §13): a
/// generated campus topology at a given shard count. Two statistics are
/// gated: the **counter-based speedup** `seq_events / max_shard_events`
/// (the single-threaded run's event count divided by the busiest
/// worker's — the deterministic analogue of parallel speedup) and, when
/// timing is enabled, the **wall-clock speedup** `seq_wall / wall` —
/// shard-local views plus the persistent pool must actually convert the
/// counter win into elapsed time. Wall columns are zeroed under
/// `EMPOWER_SIM_SKIP_TIMING` and the wall gate skips itself.
struct ScaleRow {
    nodes: u64,
    flows: u64,
    shards: u64,
    shards_used: u64,
    /// Events dispatched by the single-threaded engine.
    seq_events: u64,
    /// Events dispatched by the busiest shard worker.
    max_shard_events: u64,
    /// Events dispatched across all shard workers (one extra control-tick
    /// chain per additional worker makes this slightly exceed
    /// `seq_events` as the shard count grows).
    total_shard_events: u64,
    /// `seq_events / max_shard_events` — gated by the perf budget.
    counter_speedup: f64,
    /// Wall-clock of the single-threaded run, milliseconds.
    seq_wall_ms: f64,
    /// Wall-clock of the sharded run, milliseconds.
    wall_ms: f64,
    /// `seq_wall / wall` — gated by the perf budget (0 when timing is
    /// skipped).
    wall_speedup: f64,
    /// `seq_events / wall-clock seconds` (informational).
    events_per_sec: f64,
}

empower_telemetry::impl_to_json_struct!(ScaleRow {
    nodes,
    flows,
    shards,
    shards_used,
    seq_events,
    max_shard_events,
    total_shard_events,
    counter_speedup,
    seq_wall_ms,
    wall_ms,
    wall_speedup,
    events_per_sec
});

struct Report {
    seed: u64,
    scenarios: u64,
    optimized: Counters,
    reference: Counters,
    /// reference / optimized steady-state hot-path allocations.
    alloc_ratio: f64,
    /// reference / optimized interference-domain probe work.
    probe_ratio: f64,
    optimized_timing: BenchStats,
    reference_timing: BenchStats,
    /// Events dispatched per wall-clock second, median batch.
    optimized_events_per_sec: f64,
    reference_events_per_sec: f64,
    /// optimized / reference median event-dispatch throughput.
    event_throughput_ratio: f64,
    /// Per-event `String` allocations the sharded trace merge avoided by
    /// rendering sort keys into one shared buffer (measured on a traced
    /// 4-shard campus run; one saved allocation per merged trace event).
    trace_merge_saved_allocs: u64,
    /// The sharded-simulation scale curve (campus topologies).
    scale: Vec<ScaleRow>,
}

empower_telemetry::impl_to_json_struct!(Report {
    seed,
    scenarios,
    optimized,
    reference,
    alloc_ratio,
    probe_ratio,
    optimized_timing,
    reference_timing,
    optimized_events_per_sec,
    reference_events_per_sec,
    event_throughput_ratio,
    trace_merge_saved_allocs,
    scale
});

fn gate(report: &Report, budget_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(budget_path)
        .map_err(|e| format!("cannot read budget {budget_path}: {e}"))?;
    let budget =
        Json::parse(&text).map_err(|e| format!("cannot parse budget {budget_path}: {e:?}"))?;
    let max_allocs = budget
        .get("sim_max_hot_allocs")
        .and_then(|v| v.as_u64())
        .ok_or("budget lacks sim_max_hot_allocs")?;
    let min_ratio = budget
        .get("sim_min_alloc_ratio")
        .and_then(|v| v.as_f64())
        .ok_or("budget lacks sim_min_alloc_ratio")?;
    if report.optimized.hot_allocs > max_allocs {
        return Err(format!(
            "perf regression: {} steady-state hot-path allocations exceed budget {max_allocs}",
            report.optimized.hot_allocs
        ));
    }
    if report.alloc_ratio < min_ratio {
        return Err(format!(
            "perf regression: reference/optimized alloc ratio {:.1} below budgeted {min_ratio}",
            report.alloc_ratio
        ));
    }
    // The scale gate: the largest topology's 4-shard counter speedup must
    // hold its budgeted floor (a deterministic counter, like the others).
    let min_speedup = budget
        .get("sim_scale_min_speedup_4shards")
        .and_then(|v| v.as_f64())
        .ok_or("budget lacks sim_scale_min_speedup_4shards")?;
    let gated = report
        .scale
        .iter()
        .filter(|r| r.shards == 4)
        .max_by_key(|r| r.nodes)
        .ok_or("scale curve has no 4-shard row")?;
    if gated.counter_speedup < min_speedup {
        return Err(format!(
            "perf regression: {}-node 4-shard counter speedup {:.2} below budgeted {min_speedup}",
            gated.nodes, gated.counter_speedup
        ));
    }
    // The wall-clock side of the same row: shard-local views + the
    // persistent pool must turn the counter win into elapsed time. Skipped
    // when timing is disabled (EMPOWER_SIM_SKIP_TIMING → wall_speedup 0)
    // and on trimmed curves (the floor is calibrated against the
    // 1011-node campus; the 103-node quick topology finishes in ~4 ms,
    // where fixed per-run overhead dominates any honest floor).
    let min_wall = budget
        .get("sim_scale_min_wall_speedup_4shards")
        .and_then(|v| v.as_f64())
        .ok_or("budget lacks sim_scale_min_wall_speedup_4shards")?;
    if gated.nodes >= 1000 && gated.wall_speedup > 0.0 && gated.wall_speedup < min_wall {
        return Err(format!(
            "perf regression: {}-node 4-shard wall speedup {:.2} below budgeted {min_wall}",
            gated.nodes, gated.wall_speedup
        ));
    }
    Ok(())
}

/// Scale-curve horizon, seconds (flows stop 1 s earlier so completion
/// stats settle).
const SCALE_SECS: f64 = 5.0;

/// Builds the scale workload for one campus grid: a saturated hybrid
/// multipath download (router → first client, every direct link a route)
/// on every floor — one flow per interference atom, the regime the
/// shard packer balances.
fn scale_setup(
    grid: (u32, u32, u32),
) -> (empower_model::Network, empower_model::InterferenceMap, Vec<FlowSpecSim>) {
    let mut rng = StdRng::seed_from_u64(42);
    let t = campus(&mut rng, &CampusConfig::new(grid.0, grid.1, grid.2));
    let imap = CarrierSense::default().build_map(&t.net);
    let mut specs = Vec::new();
    for fl in &t.floors {
        let c = fl.clients[0];
        let routes: Vec<Path> = t
            .net
            .out_links(fl.router)
            .filter(|l| l.to == c)
            .map(|l| Path::new(&t.net, vec![l.id]).expect("direct campus link is a valid path"))
            .collect();
        specs.push(FlowSpecSim::saturated(fl.router, c, routes, SCALE_SECS - 1.0));
    }
    (t.net, imap, specs)
}

/// Runs the sharded-simulation scale curve: campus topologies × shard
/// counts, asserting byte-identical reports against the single-threaded
/// engine at every point (the cross-rendering gates live in
/// `crates/sim/tests/shard_equivalence.rs`).
///
/// `EMPOWER_SIM_SCALE_MAX_NODES` trims the topology list for quick local
/// iterations (0 disables the curve; note the budget gate requires at
/// least one 4-shard row, so CI must keep the smallest topology).
fn scale_curve(quick: bool, skip_timing: bool) -> Vec<ScaleRow> {
    let max_nodes: usize = std::env::var("EMPOWER_SIM_SCALE_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let grids: &[(u32, u32, u32)] =
        if quick { &[(2, 5, 9)] } else { &[(2, 5, 9), (5, 10, 9), (10, 10, 9)] };
    let shard_counts: &[u32] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut rows = Vec::new();
    for &grid in grids {
        let cfg = CampusConfig::new(grid.0, grid.1, grid.2);
        if cfg.node_count() > max_nodes {
            continue;
        }
        let (net, imap, specs) = scale_setup(grid);
        let nodes = net.node_count() as u64;

        let mut seq = Simulation::new(net.clone(), imap.clone(), SimConfig::default());
        for s in &specs {
            seq.add_flow(s.clone());
        }
        // Same timed region as the sharded runs below: the event loop plus
        // report extraction (construction and flow registration excluded on
        // both sides).
        let seq_started = std::time::Instant::now();
        seq.run_until(SCALE_SECS);
        let seq_report = format!("{:?}", seq.report(SCALE_SECS));
        let seq_wall = seq_started.elapsed();
        let seq_events = seq.perf_stats().events_dispatched;

        for &shards in shard_counts {
            let mut sim = ShardedSimulation::with_shards(
                net.clone(),
                imap.clone(),
                SimConfig::default(),
                shards,
            );
            for s in &specs {
                sim.add_flow(s.clone());
            }
            sim.run_until(SCALE_SECS);
            let started = std::time::Instant::now();
            let report = format!("{:?}", sim.report(SCALE_SECS));
            let wall = started.elapsed();
            assert_eq!(
                report, seq_report,
                "{nodes}-node campus: shards={shards} diverged from single-threaded"
            );
            let per_shard = sim.shard_events_dispatched();
            let max_shard_events = per_shard.iter().copied().max().unwrap_or(0);
            let total_shard_events: u64 = per_shard.iter().sum();
            let wall_ms = if skip_timing { 0.0 } else { wall.as_secs_f64() * 1e3 };
            rows.push(ScaleRow {
                nodes,
                flows: specs.len() as u64,
                shards: shards.into(),
                shards_used: sim.shards_used() as u64,
                seq_events,
                max_shard_events,
                total_shard_events,
                counter_speedup: seq_events as f64 / max_shard_events.max(1) as f64,
                seq_wall_ms: if skip_timing { 0.0 } else { seq_wall.as_secs_f64() * 1e3 },
                wall_ms,
                wall_speedup: if skip_timing {
                    0.0
                } else {
                    seq_wall.as_secs_f64() / wall.as_secs_f64().max(1e-12)
                },
                events_per_sec: if skip_timing {
                    0.0
                } else {
                    seq_events as f64 / wall.as_secs_f64().max(1e-12)
                },
            });
        }
    }
    rows
}

/// Exercises the sharded trace merge on a traced 4-shard campus run and
/// returns how many per-event `String` allocations the shared-buffer
/// canonical sort avoided (one per merged trace event).
fn trace_merge_saved() -> u64 {
    let (net, imap, specs) = scale_setup((2, 5, 9));
    let mut sim = ShardedSimulation::with_shards(net, imap, SimConfig::default(), 4);
    sim.attach_trace(empower_sim::Trace::new());
    for s in &specs {
        sim.add_flow(s.clone());
    }
    sim.run_until(SCALE_SECS);
    let saved = sim.perf_stats().trace_merge_saved_allocs;
    assert!(saved > 0, "a traced campus run must merge trace events");
    saved
}

fn add(total: &mut Counters, p: SimPerfStats) {
    total.events_dispatched += p.events_dispatched;
    total.domain_probes += p.domain_probes;
    total.hot_allocs += p.hot_allocs;
    total.slab_hits += p.slab_hits;
    total.slab_grows += p.slab_grows;
    total.bytes_not_allocated += p.bytes_not_allocated;
}

fn main() {
    let args = BenchArgs::parse();
    let all = corpus();
    // Counter corpus: quick = the fast Fig. 1 prefix CI gates on (the
    // budget is calibrated against it), full = every scenario.
    let count = args.sweep(all.len(), 10).min(all.len());
    let scenarios = &all[..count];

    // Equivalence + counters over the corpus. The instrumented runs prove
    // byte-identical behavior (report, trace, manifest); the plain runs
    // accumulate the hot-path work counters the gate reads, with trace and
    // telemetry detached exactly as in the timed section.
    let mut optimized = Counters::from(SimPerfStats::default());
    let mut reference = Counters::from(SimPerfStats::default());
    for s in scenarios {
        let opt = run_scenario::<Simulation>(s);
        let refr = run_scenario::<ReferenceSimulation>(s);
        assert_eq!(opt.report, refr.report, "{}: SimReport diverged", s.name);
        assert_eq!(opt.trace, refr.trace, "{}: packet trace diverged", s.name);
        assert_eq!(opt.manifest, refr.manifest, "{}: manifest diverged", s.name);
        let (opt_rep, opt_perf) = run_scenario_plain::<Simulation>(s);
        let (ref_rep, ref_perf) = run_scenario_plain::<ReferenceSimulation>(s);
        assert_eq!(opt_rep, ref_rep, "{}: plain-run SimReport diverged", s.name);
        assert_eq!(
            opt_perf.events_dispatched, ref_perf.events_dispatched,
            "{}: engines dispatched different event counts",
            s.name
        );
        add(&mut optimized, opt_perf);
        add(&mut reference, ref_perf);
    }
    let alloc_ratio = reference.hot_allocs as f64 / optimized.hot_allocs.max(1) as f64;
    let probe_ratio = reference.domain_probes as f64 / optimized.domain_probes.max(1) as f64;

    // Wall-clock: one iteration = the shortened timed subset, no trace, no
    // telemetry (the steady-state configuration). Both engines run the same
    // instances and dispatch identical event sequences. CI's quick (debug)
    // invocation sets EMPOWER_SIM_SKIP_TIMING: the gate only reads the
    // deterministic counters above, so unoptimized wall-clock batches would
    // be minutes of noise for nothing.
    let skip_timing = std::env::var_os("EMPOWER_SIM_SKIP_TIMING").is_some();
    let timed: Vec<CorpusScenario> = all
        .iter()
        .filter(|s| TIMED.contains(&s.name))
        .map(|s| CorpusScenario { duration: TIMED_SECS, ..*s })
        .collect();
    let zero =
        BenchStats { min_ns: 0.0, median_ns: 0.0, p95_ns: 0.0, mean_ns: 0.0, batch: 0, batches: 0 };
    let events_per_iter: u64 = if skip_timing {
        0
    } else {
        timed.iter().map(|s| run_scenario_plain::<Simulation>(s).1.events_dispatched).sum()
    };
    let optimized_timing = if skip_timing {
        zero
    } else {
        bench_stats(|| {
            let mut ev = 0u64;
            for s in &timed {
                ev += run_scenario_plain::<Simulation>(s).1.events_dispatched;
            }
            ev
        })
    };
    let reference_timing = if skip_timing {
        zero
    } else {
        bench_stats(|| {
            let mut ev = 0u64;
            for s in &timed {
                ev += run_scenario_plain::<ReferenceSimulation>(s).1.events_dispatched;
            }
            ev
        })
    };
    let per_sec = |t: &BenchStats| events_per_iter as f64 / (t.median_ns / 1e9).max(1e-12);
    let optimized_events_per_sec = if skip_timing { 0.0 } else { per_sec(&optimized_timing) };
    let reference_events_per_sec = if skip_timing { 0.0 } else { per_sec(&reference_timing) };
    let event_throughput_ratio = if skip_timing {
        0.0
    } else {
        optimized_events_per_sec / reference_events_per_sec.max(1e-12)
    };

    // The sharded-simulation scale curve: campus topologies × shard
    // counts, byte-identity asserted at every point.
    let scale = scale_curve(args.quick, skip_timing);
    let trace_merge_saved_allocs = trace_merge_saved();

    let report = Report {
        seed: args.seed,
        scenarios: count as u64,
        optimized,
        reference,
        alloc_ratio,
        probe_ratio,
        optimized_timing,
        reference_timing,
        optimized_events_per_sec,
        reference_events_per_sec,
        event_throughput_ratio,
        trace_merge_saved_allocs,
        scale,
    };

    println!("== bench_sim — zero-allocation simulator hot path, {count} corpus scenarios ==");
    println!(
        "events dispatched:     {:>12}   (identical on both engines)",
        report.optimized.events_dispatched
    );
    println!(
        "hot-path allocations:  optimized {:>10}   reference {:>10}   ratio {alloc_ratio:.1}x",
        report.optimized.hot_allocs, report.reference.hot_allocs
    );
    println!(
        "domain probes:         optimized {:>10}   reference {:>10}   ratio {probe_ratio:.1}x",
        report.optimized.domain_probes, report.reference.domain_probes
    );
    println!(
        "slab:                  {:>10} hits / {} grows    bytes not allocated: {}",
        report.optimized.slab_hits,
        report.optimized.slab_grows,
        report.optimized.bytes_not_allocated
    );
    if skip_timing {
        println!("event throughput:      (skipped: EMPOWER_SIM_SKIP_TIMING is set)");
    } else {
        println!(
            "event throughput:      optimized {:>10.0}/s  reference {:>10.0}/s  ratio {event_throughput_ratio:.1}x  (median)",
            optimized_events_per_sec, reference_events_per_sec
        );
    }
    println!(
        "trace merge:           {} per-event String allocations avoided (shared sort buffer)",
        report.trace_merge_saved_allocs
    );
    println!("== sharded-simulation scale curve (byte-identity asserted per row) ==");
    for r in &report.scale {
        println!(
            "  {:>5} nodes  {:>3} flows  shards {:>2} (used {:>2})  \
             events seq {:>9}  max-shard {:>9}  counter speedup {:.2}x  \
             wall {:>7.1} ms vs seq {:>7.1} ms  wall speedup {:.2}x",
            r.nodes,
            r.flows,
            r.shards,
            r.shards_used,
            r.seq_events,
            r.max_shard_events,
            r.counter_speedup,
            r.wall_ms,
            r.seq_wall_ms,
            r.wall_speedup
        );
    }

    let json_path = args.json.clone().unwrap_or_else(|| "BENCH_sim.json".to_string());
    std::fs::write(&json_path, report.to_json().to_string_pretty()).expect("write BENCH_sim.json");
    eprintln!("(report written to {json_path})");

    if let Some(budget_path) = &args.budget {
        match gate(&report, budget_path) {
            Ok(()) => println!("perf gate: OK (budget {budget_path})"),
            Err(msg) => {
                eprintln!("perf gate: FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
