#![forbid(unsafe_code)]
//! Fig. 13: average TCP rate (± std over the last 100 s) for ten flows,
//! EMPoWER (δ = 0.3) vs plain single-path TCP.
//!
//! Paper's claim: with δ = 0.3, EMPoWER improves TCP performance on every
//! one of the ten flows, generally without increasing variance.

use empower_bench::sweep::run_fig13_parallel;
use empower_bench::BenchArgs;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_testbed::fig13::{Fig13Config, FLOWS};

fn main() {
    let args = BenchArgs::parse();
    let t = testbed22(args.seed);
    let imap = CarrierSense::default().build_map(&t.net);
    let config = Fig13Config { duration: if args.quick { 150.0 } else { 300.0 }, seed: args.seed };
    let tele = args.telemetry();
    println!("== Fig. 13 — TCP rate, mean ± std (Mbps), δ = 0.3 ==");
    let flows =
        if args.quick { &FLOWS[..args.runs.unwrap_or(3).min(FLOWS.len())] } else { &FLOWS[..] };
    let rows = run_fig13_parallel(&t.net, &imap, &config, flows, args.jobs, &tele);
    println!("{:<8}{:>20}{:>20}", "flow", "EMPoWER", "SP-w/o-CC");
    let mut wins = 0;
    for r in &rows {
        println!(
            "{:<8}{:>13.1} ± {:>4.1}{:>13.1} ± {:>4.1}",
            format!("{}-{}", r.src, r.dst),
            r.empower_mean,
            r.empower_std,
            r.sp_wo_cc_mean,
            r.sp_wo_cc_std
        );
        if r.empower_mean >= r.sp_wo_cc_mean {
            wins += 1;
        }
    }
    println!("\nEMPoWER ≥ single-path TCP on {wins}/{} flows", rows.len());
    args.maybe_dump(&rows);
    let mut m = args.manifest("fig13_tcp_bars");
    m.set("flows", rows.len() as u64).set("duration_s", config.duration);
    args.maybe_write_manifest(m, &tele);
}
