#![forbid(unsafe_code)]
//! Fig. 12: TCP over EMPoWER for Flow 9-13 — plain single-path TCP
//! (SP-w/o-CC) for the first phase, the full stack (δ = 0.3, two routes,
//! delay equalization) for the second.
//!
//! Paper's reading: the received TCP throughput matches what the
//! congestion controller admits, and the multipath phase clearly beats the
//! single-path phase despite routes of different lengths sharing mediums.

use empower_bench::BenchArgs;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_testbed::fig12;

fn main() {
    let args = BenchArgs::parse();
    let t = testbed22(args.seed);
    let imap = CarrierSense::default().build_map(&t.net);
    let tele = args.telemetry();
    println!("== Fig. 12 — TCP Flow 9-13: SP-w/o-CC then EMPoWER (δ = 0.3) ==");
    let data = fig12::run_flow_traced(&t.net, &imap, args.seed, 9, 13, &tele);
    let step = if args.quick { 100 } else { 25 };
    println!(
        "{:>6} {:>12} | {:>6} {:>10} {:>10} {:>12}",
        "t[s]", "SP TCP", "t[s]", "route1", "route2", "EMPoWER TCP"
    );
    let len = data.phase1_received.len().max(data.phase2_received.len());
    for i in (0..len).step_by(step) {
        let r1 = data.phase2_route_rates.first().and_then(|r| r.get(i)).copied().unwrap_or(0.0);
        let r2 = data.phase2_route_rates.get(1).and_then(|r| r.get(i)).copied().unwrap_or(0.0);
        println!(
            "{:>6} {:>12.1} | {:>6} {:>10.1} {:>10.1} {:>12.1}",
            i,
            data.phase1_received.get(i).copied().unwrap_or(0.0),
            500 + i,
            r1,
            r2,
            data.phase2_received.get(i).copied().unwrap_or(0.0),
        );
    }
    let mean_tail = |xs: &[f64]| {
        let lo = xs.len().saturating_sub(100);
        if xs.len() == lo {
            0.0
        } else {
            xs[lo..].iter().sum::<f64>() / (xs.len() - lo) as f64
        }
    };
    println!(
        "\nsteady TCP throughput: SP-w/o-CC {:.1} Mbps → EMPoWER {:.1} Mbps",
        mean_tail(&data.phase1_received),
        mean_tail(&data.phase2_received)
    );
    args.maybe_dump(&data);
    let mut m = args.manifest("fig12_tcp_timeseries");
    m.set("phase_secs", fig12::PHASE_SECS).set("tcp_delta", fig12::TCP_DELTA);
    args.maybe_write_manifest(m, &tele);
}
