#![forbid(unsafe_code)]
//! Fig. 4: CDF of flow throughput `T_X` for EMPoWER, SP, SP-WiFi and
//! MP-mWiFi on the residential and enterprise topologies (one saturated
//! flow per run). MP-WiFi is omitted from the figure because it coincides
//! with SP-WiFi (§5.2.1); the binary verifies that instead.
//!
//! Paper's headline numbers: average EMPoWER gain ≈ +59 % (residential) /
//! +68 % (enterprise) over WiFi alone, and ≈ +39 % / +31 % over
//! single-path hybrid.

use empower_bench::sweep::{run_sweep_parallel, SweepRun};
use empower_bench::{cdf_line, mean, BenchArgs};
use empower_core::{FluidEval, Scheme};
use empower_model::topology::random::TopologyClass;
use empower_telemetry::CounterType;

const SCHEMES: [Scheme; 5] =
    [Scheme::Empower, Scheme::Sp, Scheme::SpWifi, Scheme::MpWifi, Scheme::MpMwifi];

struct Output {
    class: String,
    runs: Vec<SweepRun>,
}

empower_telemetry::impl_to_json_struct!(Output { class, runs });

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(1000, 40);
    let params = FluidEval::default();
    let tele = args.telemetry();
    let mut all = Vec::new();

    for class in [TopologyClass::Residential, TopologyClass::Enterprise] {
        let label = format!("{class:?}");
        println!("== Fig. 4 — {label} topology, {runs} runs ==");
        let data: Vec<SweepRun> =
            run_sweep_parallel(class, args.seed, runs, 1, &SCHEMES, &params, args.jobs, &tele);

        let rates =
            |si: usize| -> Vec<f64> { data.iter().map(|r| r.scheme_rates[si][0]).collect() };
        for (si, scheme) in SCHEMES.iter().enumerate() {
            cdf_line(scheme.label(), &rates(si));
        }
        let emp = rates(0);
        let sp = rates(1);
        let spw = rates(2);
        let mpw = rates(3);
        let mwifi = rates(4);
        println!(
            "avg gain EMPoWER vs SP-WiFi: {:+.0}%   vs SP: {:+.0}%   vs MP-mWiFi: {:+.0}%",
            100.0 * (mean(&emp) / mean(&spw) - 1.0),
            100.0 * (mean(&emp) / mean(&sp) - 1.0),
            100.0 * (mean(&emp) / mean(&mwifi) - 1.0),
        );
        let coincide =
            spw.iter().zip(&mpw).filter(|(a, b)| (*a - *b).abs() < 0.05 * a.abs().max(1.0)).count();
        println!(
            "MP-WiFi coincides with SP-WiFi in {}/{} runs (§5.2.1 claim)\n",
            coincide,
            data.len()
        );
        tele.counter(format!("fig4/{}/coincide", label.to_lowercase()), CounterType::Gauge)
            .set(coincide as u64);
        all.push(Output { class: label, runs: data });
    }
    args.maybe_dump(&all);
    let mut m = args.manifest("fig4_hybrid_cdf");
    m.set("runs", runs as u64).set("schemes", SCHEMES.len() as u64);
    args.maybe_write_manifest(m, &tele);
}
