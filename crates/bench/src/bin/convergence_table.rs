#![forbid(unsafe_code)]
//! §5.2.2 convergence comparison: slots to reach steady state (throughput
//! within 1 % of final) for EMPoWER's distributed controller vs the
//! backpressure scheme.
//!
//! Paper's numbers: EMPoWER ≈ 90 slots (residential) / 77 (enterprise);
//! backpressure ≥ 3 000 / 10 000 slots — throughput-optimal at steady
//! state, but "good routes are employed only after the queues on the bad
//! routes start to fill up".

use empower_baselines::{Backpressure, BackpressureConfig};
use empower_bench::sweep::make_instance;
use empower_bench::{cdf_line, BenchArgs};
use empower_cc::{self, slots_to_converge, ConvergenceCriterion, ProportionalFair};
use empower_core::{FluidEval, RunConfig, Scheme};
use empower_model::topology::random::TopologyClass;

struct Output {
    class: String,
    empower_slots: Vec<f64>,
    backpressure_slots: Vec<f64>,
}

empower_telemetry::impl_to_json_struct!(Output { class, empower_slots, backpressure_slots });

fn main() {
    let args = BenchArgs::parse();
    let runs = args.sweep(100, 8);
    let bp_slots_budget = if args.quick { 4000 } else { 20_000 };
    let tele = args.telemetry();
    let mut all = Vec::new();

    for class in [TopologyClass::Residential, TopologyClass::Enterprise] {
        let label = format!("{class:?}");
        println!("== Convergence (slots to within 1% of final), {label}, {runs} runs ==");
        let mut emp = Vec::new();
        let mut bp = Vec::new();
        for i in 0..runs {
            let (net, imap, flows) = make_instance(class, args.seed + i as u64, 1);
            // EMPoWER: the actual slotted controller.
            // The fluid loop has no measurement noise or feedback delay,
            // so the controller can run the full rate-proportional boost
            // (the packet simulator's conservative cap exists to tame its
            // noisy, delayed price loop).
            let cc = empower_cc::CcConfig { boost_cap: 64.0, ..Default::default() };
            let out = RunConfig::from_fluid(
                Scheme::Empower,
                &FluidEval { slots: 4000, cc, ..Default::default() },
            )
            .telemetry(tele.clone())
            .evaluate_fluid(&net, &imap, &flows)
            .expect("tolerant mode cannot fail");
            if out.flow_rates[0] <= 1e-9 {
                continue; // disconnected
            }
            if let Some(s) = out.convergence_slots[0] {
                emp.push(s as f64);
            }
            // Backpressure with exact max-weight scheduling.
            let mut scheme =
                Backpressure::new(&net, &imap, flows.clone(), BackpressureConfig::default());
            let result = scheme.run(&net, &ProportionalFair, bp_slots_budget);
            let traj: Vec<f64> = result.trajectory.iter().map(|t| t[0]).collect();
            let slots = slots_to_converge(&traj, ConvergenceCriterion::default())
                .unwrap_or(bp_slots_budget);
            bp.push(slots as f64);
        }
        cdf_line("EMPoWER", &emp);
        cdf_line("backpressure", &bp);
        println!(
            "mean: EMPoWER {:.0} slots vs backpressure {:.0} slots ({:.0}x slower)\n",
            empower_bench::mean(&emp),
            empower_bench::mean(&bp),
            empower_bench::mean(&bp) / empower_bench::mean(&emp).max(1.0),
        );
        all.push(Output { class: label, empower_slots: emp, backpressure_slots: bp });
    }
    args.maybe_dump(&all);
    let mut m = args.manifest("convergence_table");
    m.set("runs", runs as u64).set("bp_slots_budget", bp_slots_budget as u64);
    args.maybe_write_manifest(m, &tele);
}
