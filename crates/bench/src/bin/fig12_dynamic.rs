#![forbid(unsafe_code)]
//! Fig. 12 (dynamic variant): the capacity-drop recovery story driven by
//! a scenario file instead of hand-coded phases.
//!
//! Loads `examples/fig12_drop.toml` — a saturated EMPoWER flow on the
//! Fig. 1 network whose gateway↔extender WiFi link collapses to a tenth
//! of its capacity at t = 40 s and recovers at t = 80 s — runs it through
//! the dynamics driver under `--runs` seeds (`--jobs` worker threads,
//! byte-identical to serial), prints the base seed's goodput series with
//! the fault and reroute marks, and summarizes the resilience metrics
//! across seeds. The qualitative shape to look for is the paper's §6.4
//! narrative: a sharp dip on the drop, partial recovery once the route
//! monitor reroutes onto PLC, and a return to the pre-fault level after
//! the link comes back.

use empower_bench::sweep::run_dynamics_sweep;
use empower_bench::{mean, BenchArgs};
use empower_dynamics::{FaultMetrics, Scenario};

fn load_scenario(seed: u64) -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fig12_drop.toml");
    let text = std::fs::read_to_string(path).expect("examples/fig12_drop.toml exists");
    let mut scenario = Scenario::parse_str(&text).expect("example scenario parses");
    scenario.run.seed = seed;
    scenario
}

fn main() {
    let args = BenchArgs::parse();
    let scenario = load_scenario(args.seed);
    let runs = args.sweep(8, 2);
    let tele = args.telemetry();
    println!("== Fig. 12 (dynamic) — {}, {runs} seeds ==", scenario.name);
    let outcomes = run_dynamics_sweep(&scenario, args.seed, runs, args.jobs, &tele)
        .expect("example scenario runs");
    let outcome = &outcomes[0];

    let fault_at = outcome
        .resilience
        .first()
        .map(|m| m.fault_at_secs)
        .expect("the scenario has one fault episode");
    let step = if args.quick { 20 } else { 5 };
    println!("{:>6} {:>10}   (seed {}, fault at {fault_at:.0} s)", "t[s]", "Mbps", args.seed);
    for (s, r) in outcome.aggregate_series.iter().enumerate() {
        if s % step != 0 {
            continue;
        }
        let mark = outcome
            .reroutes
            .iter()
            .find(|rr| rr.at >= s as f64 && rr.at < (s + step) as f64)
            .map_or("", |rr| {
                if rr.reason == "reconnected" {
                    "  ← reconnect"
                } else {
                    "  ← reroute"
                }
            });
        println!("{s:>6} {r:>10.2}{mark}");
    }

    // The three phases of the paper's recovery narrative, on the base seed.
    let series = &outcome.aggregate_series;
    let pre = mean(&series[20..40]);
    let degraded = mean(&series[50..80]);
    let recovered = mean(&series[95..120]);
    println!(
        "\nphase means: pre-fault {pre:.2} Mbps, degraded {degraded:.2} Mbps, \
         recovered {recovered:.2} Mbps"
    );
    let episodes: Vec<FaultMetrics> =
        outcomes.iter().flat_map(|o| o.resilience.iter().cloned()).collect();
    for (i, m) in episodes.iter().enumerate() {
        println!(
            "seed {}, episode at {:.0} s: baseline {:.2} Mbps, detect {}, reconverge {}, \
             dip {:.1} Mbit, {} packets lost",
            args.seed + i as u64,
            m.fault_at_secs,
            m.baseline_mbps,
            m.time_to_detect_secs.map_or("—".into(), |d| format!("{d:.1} s")),
            m.time_to_reconverge_secs.map_or("—".into(), |r| format!("{r:.1} s")),
            m.dip_area_mbit,
            m.packets_lost
        );
    }
    let dips: Vec<f64> = episodes.iter().map(|m| m.dip_area_mbit).collect();
    let recovered_seeds = episodes.iter().filter(|m| m.time_to_reconverge_secs.is_some()).count();
    println!(
        "across {runs} seeds: mean dip {:.1} Mbit, reconverged on {recovered_seeds}/{}",
        mean(&dips),
        episodes.len()
    );
    let shape_ok = degraded < pre && recovered > degraded;
    println!(
        "qualitative Fig. 12 shape (dip on drop, recovery after reroute): {}",
        if shape_ok { "yes" } else { "NO" }
    );

    args.maybe_dump(&episodes);
    let mut m = args.manifest("fig12_dynamic");
    m.set("scenario", scenario.name.as_str())
        .set("scheme", scenario.run.scheme.label())
        .set("horizon_secs", scenario.run.horizon_secs)
        .set("runs", runs as u64)
        .set("resilience", &episodes[..]);
    args.maybe_write_manifest(m, &tele);
}
