#![forbid(unsafe_code)]
//! Ablation of the constraint margin δ (Eq. (3)).
//!
//! §6.4: for TCP "the value δ = 0.3 is found to improve performance in all
//! the cases", and "when δ gets smaller, the performance of EMPoWER rapidly
//! degrades" — while for UDP a small margin (0.05) suffices. This binary
//! sweeps δ for both traffic types on the Fig. 9 cut-out network.

use empower_bench::BenchArgs;
use empower_core::{RunConfig, Scheme};
use empower_model::{InterferenceModel, SharedMedium};
use empower_sim::{SimConfig, TrafficPattern};
use empower_testbed::fig9::fig9_network;

struct Point {
    delta: f64,
    udp_mbps: f64,
    udp_mean_delay_ms: f64,
    udp_max_delay_ms: f64,
    tcp_mbps: f64,
}

empower_telemetry::impl_to_json_struct!(Point {
    delta,
    udp_mbps,
    udp_mean_delay_ms,
    udp_max_delay_ms,
    tcp_mbps
});

fn main() {
    let args = BenchArgs::parse();
    let duration = if args.quick { 150.0 } else { 400.0 };
    let (net, [n1, _, _, n13]) = fig9_network();
    let imap = SharedMedium.build_map(&net);
    let tele = args.telemetry();
    println!("== Ablation: constraint margin δ (Flow 1-13, {duration:.0} s runs) ==");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>12}",
        "δ", "UDP Mbps", "mean delay ms", "max delay ms", "TCP Mbps"
    );
    let mut points = Vec::new();
    for &delta in &[0.0, 0.05, 0.1, 0.2, 0.3, 0.45] {
        let mut rates = [0.0_f64; 2];
        let mut delays = (0.0_f64, 0.0_f64);
        for (i, pattern) in [
            TrafficPattern::SaturatedUdp { start: 0.0, stop: duration },
            TrafficPattern::Tcp { start: 0.0, stop: duration, size_bytes: 0 },
        ]
        .into_iter()
        .enumerate()
        {
            let (mut sim, mapping) = RunConfig::new(Scheme::Empower)
                .delta(delta)
                .telemetry(tele.clone())
                .build_simulation(
                    &net,
                    &imap,
                    &[(n1, n13, pattern)],
                    SimConfig { delta, tcp_delta: delta, seed: args.seed, ..Default::default() },
                )
                .expect("tolerant mode cannot fail");
            if let Some(f) = mapping[0] {
                let report = sim.run(duration);
                let to = duration as usize;
                rates[i] = report.flows[f].mean_throughput(to.saturating_sub(100), to);
                if i == 0 {
                    delays = (
                        report.flows[f].mean_delay_secs() * 1e3,
                        report.flows[f].delay_max_secs * 1e3,
                    );
                }
            }
        }
        println!(
            "{:>6.2} {:>12.1} {:>14.1} {:>14.1} {:>12.1}",
            delta, rates[0], delays.0, delays.1, rates[1]
        );
        points.push(Point {
            delta,
            udp_mbps: rates[0],
            udp_mean_delay_ms: delays.0,
            udp_max_delay_ms: delays.1,
            tcp_mbps: rates[1],
        });
    }
    println!(
        "\n(UDP throughput peaks at small δ, but delay explodes as δ → 0 — the §4.1\n         rationale for the margin; TCP additionally needs the headroom to avoid drops.)"
    );
    args.maybe_dump(&points);
    let mut m = args.manifest("ablation_delta");
    m.set("duration_s", duration);
    args.maybe_write_manifest(m, &tele);
}
