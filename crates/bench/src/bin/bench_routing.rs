#![forbid(unsafe_code)]
//! Perf harness for the §3.2 exploration engine: the incremental
//! branch-and-bound [`Explorer`] vs the retained exhaustive cloning
//! reference (the pre-optimization implementation) on a pinned seeded
//! Fig. 4-style workload (random residential + enterprise topologies, one
//! query per sampled flow).
//!
//! Reports deterministic work counters (tree nodes expanded, Yen
//! invocations, subtrees pruned, clone bytes avoided) for both engines,
//! asserts bit-identical route sets on every query, measures wall-clock
//! min/median/p95 for both, and writes `BENCH_routing.json` (default at
//! the current directory, `--json` overrides).
//!
//! With `--budget <file>` the binary acts as CI's perf-regression gate:
//! the run fails if the optimized engine expands more tree nodes than the
//! checked-in budget allows, or if the baseline/optimized expansion ratio
//! drops below the budgeted floor.

use empower_bench::harness::{bench_stats, BenchStats};
use empower_bench::BenchArgs;
use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::random::{generate, RandomTopologyConfig, TopologyClass};
use empower_model::{CarrierSense, InterferenceMap, InterferenceModel, Network};
use empower_routing::{
    best_combination_reference_counted, Explorer, MultipathConfig, RouteQuery, SearchStats,
};
use empower_telemetry::{Json, ToJson};

/// Queries per topology.
const FLOWS: usize = 2;

struct Counters {
    nodes_expanded: u64,
    ksp_invocations: u64,
    subtrees_pruned: u64,
    incumbent_updates: u64,
    clone_bytes_avoided: u64,
}

impl From<SearchStats> for Counters {
    fn from(s: SearchStats) -> Self {
        Counters {
            nodes_expanded: s.nodes_expanded,
            ksp_invocations: s.ksp_invocations,
            subtrees_pruned: s.subtrees_pruned,
            incumbent_updates: s.incumbent_updates,
            clone_bytes_avoided: s.clone_bytes_avoided,
        }
    }
}

empower_telemetry::impl_to_json_struct!(Counters {
    nodes_expanded,
    ksp_invocations,
    subtrees_pruned,
    incumbent_updates,
    clone_bytes_avoided
});

struct Report {
    seed: u64,
    topologies: u64,
    queries: u64,
    optimized: Counters,
    baseline: Counters,
    /// baseline / optimized tree-node expansions.
    expansion_ratio: f64,
    optimized_timing: BenchStats,
    baseline_timing: BenchStats,
    /// baseline / optimized wall-clock (min-batch estimate).
    speedup_min: f64,
}

empower_telemetry::impl_to_json_struct!(Report {
    seed,
    topologies,
    queries,
    optimized,
    baseline,
    expansion_ratio,
    optimized_timing,
    baseline_timing,
    speedup_min
});

/// The pinned workload: alternating-class random topologies with sampled
/// flow endpoints, exactly the §5.1 instance family the figures sweep.
fn build_workload(
    base_seed: u64,
    count: usize,
) -> Vec<(Network, InterferenceMap, Vec<RouteQuery>)> {
    (0..count)
        .map(|i| {
            let class =
                if i % 2 == 0 { TopologyClass::Residential } else { TopologyClass::Enterprise };
            let mut rng = StdRng::seed_from_u64(base_seed + i as u64);
            let topo = generate(&mut rng, &RandomTopologyConfig::new(class));
            let imap = CarrierSense::default().build_map(&topo.net);
            let queries = (0..FLOWS)
                .map(|_| {
                    let (src, dst) = topo.sample_flow(&mut rng);
                    RouteQuery::new(src, dst)
                })
                .collect();
            (topo.net, imap, queries)
        })
        .collect()
}

fn gate(report: &Report, budget_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(budget_path)
        .map_err(|e| format!("cannot read budget {budget_path}: {e}"))?;
    let budget =
        Json::parse(&text).map_err(|e| format!("cannot parse budget {budget_path}: {e:?}"))?;
    let max_nodes = budget
        .get("max_nodes_expanded")
        .and_then(|v| v.as_u64())
        .ok_or("budget lacks max_nodes_expanded")?;
    let min_ratio = budget
        .get("min_expansion_ratio")
        .and_then(|v| v.as_f64())
        .ok_or("budget lacks min_expansion_ratio")?;
    if report.optimized.nodes_expanded > max_nodes {
        return Err(format!(
            "perf regression: {} tree nodes expanded exceeds budget {max_nodes}",
            report.optimized.nodes_expanded
        ));
    }
    if report.expansion_ratio < min_ratio {
        return Err(format!(
            "perf regression: baseline/optimized expansion ratio {:.2} below budgeted {min_ratio}",
            report.expansion_ratio
        ));
    }
    Ok(())
}

fn main() {
    let args = BenchArgs::parse();
    // Counter corpus: pinned by (seed, size); the perf budget is calibrated
    // against the quick size, which is also what CI runs.
    let topo_count = args.sweep(40, 8);
    let workload = build_workload(args.seed, topo_count);
    let config = MultipathConfig::default();

    // Counters + equivalence over the whole workload.
    let mut explorer = Explorer::new();
    let mut baseline = SearchStats::default();
    let mut queries = 0u64;
    for (net, imap, qs) in &workload {
        for q in qs {
            queries += 1;
            let opt = explorer.best_combination(net, imap, q, &config);
            let (reference, stats) = best_combination_reference_counted(net, imap, q, &config);
            baseline.nodes_expanded += stats.nodes_expanded;
            baseline.ksp_invocations += stats.ksp_invocations;
            baseline.incumbent_updates += stats.incumbent_updates;
            assert_eq!(opt.len(), reference.len(), "route-count mismatch vs reference");
            for (a, b) in opt.routes.iter().zip(&reference.routes) {
                assert_eq!(a.path.links(), b.path.links(), "route mismatch vs reference");
                assert_eq!(
                    a.nominal_rate.to_bits(),
                    b.nominal_rate.to_bits(),
                    "rate bits mismatch vs reference"
                );
            }
        }
    }
    let optimized = explorer.stats();
    let expansion_ratio = baseline.nodes_expanded as f64 / (optimized.nodes_expanded.max(1)) as f64;

    // Wall-clock: one iteration = the full quick-size workload (both
    // engines timed on the same instances).
    let timed: Vec<_> = workload.iter().take(8).collect();
    let optimized_timing = bench_stats(|| {
        let mut ex = Explorer::new();
        let mut total = 0.0f64;
        for (net, imap, qs) in &timed {
            for q in qs {
                total += ex.best_combination(net, imap, q, &config).total_rate();
            }
        }
        total
    });
    let baseline_timing = bench_stats(|| {
        let mut total = 0.0f64;
        for (net, imap, qs) in &timed {
            for q in qs {
                total += best_combination_reference_counted(net, imap, q, &config).0.total_rate();
            }
        }
        total
    });
    let speedup_min = baseline_timing.min_ns / optimized_timing.min_ns.max(1e-9);

    let report = Report {
        seed: args.seed,
        topologies: workload.len() as u64,
        queries,
        optimized: optimized.into(),
        baseline: baseline.into(),
        expansion_ratio,
        optimized_timing,
        baseline_timing,
        speedup_min,
    };

    println!(
        "== bench_routing — §3.2 exploration engine, {} topologies / {queries} queries ==",
        report.topologies
    );
    println!(
        "tree nodes expanded:   optimized {:>10}   baseline {:>10}   ratio {expansion_ratio:.1}x",
        report.optimized.nodes_expanded, report.baseline.nodes_expanded
    );
    println!(
        "ksp invocations:       optimized {:>10}   baseline {:>10}",
        report.optimized.ksp_invocations, report.baseline.ksp_invocations
    );
    println!(
        "subtrees pruned:       {:>10}    clone bytes avoided: {}",
        report.optimized.subtrees_pruned, report.optimized.clone_bytes_avoided
    );
    println!(
        "wall-clock (min):      optimized {:>10.2} ms  baseline {:>10.2} ms  speedup {speedup_min:.1}x",
        optimized_timing.min_ns / 1e6,
        baseline_timing.min_ns / 1e6
    );

    let json_path = args.json.clone().unwrap_or_else(|| "BENCH_routing.json".to_string());
    std::fs::write(&json_path, report.to_json().to_string_pretty())
        .expect("write BENCH_routing.json");
    eprintln!("(report written to {json_path})");

    if let Some(budget_path) = &args.budget {
        match gate(&report, budget_path) {
            Ok(()) => println!("perf gate: OK (budget {budget_path})"),
            Err(msg) => {
                eprintln!("perf gate: FAIL — {msg}");
                std::process::exit(1);
            }
        }
    }
}
