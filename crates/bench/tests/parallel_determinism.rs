#![forbid(unsafe_code)]
//! Determinism gate for the parallel sweep runner (DESIGN.md §8): for the
//! same seeds, `run_sweep_parallel` must produce byte-identical results and
//! byte-identical manifests for ANY job count. A violation here means a
//! figure regenerated on a different machine (or with a different `--jobs`)
//! would silently change — exactly the class of bug the deterministic
//! telemetry subsystem exists to rule out.

use empower_bench::sweep::{run_sweep_parallel, SweepRun};
use empower_core::{FluidEval, Scheme};
use empower_model::topology::random::TopologyClass;
use empower_telemetry::{Manifest, Telemetry, ToJson};

const SCHEMES: [Scheme; 2] = [Scheme::Empower, Scheme::Sp];
const RUNS: usize = 4;
const SEED: u64 = 0xD1CE;

/// Renders a run list to the exact JSON bytes `--out` would dump, so
/// float comparisons are bitwise, not epsilon-based.
fn render(runs: &[SweepRun]) -> String {
    runs.iter().map(|r| r.to_json().to_string_pretty()).collect::<Vec<_>>().join("\n")
}

fn sweep(jobs: usize, tele: &Telemetry) -> Vec<SweepRun> {
    run_sweep_parallel(
        TopologyClass::Residential,
        SEED,
        RUNS,
        1,
        &SCHEMES,
        &FluidEval::default(),
        jobs,
        tele,
    )
}

#[test]
fn parallel_sweep_matches_serial_bytes_and_manifest() {
    let serial_tele = Telemetry::enabled();
    let serial = sweep(1, &serial_tele);
    assert_eq!(serial.len(), RUNS);

    for jobs in [2, 4] {
        let par_tele = Telemetry::enabled();
        let parallel = sweep(jobs, &par_tele);
        assert_eq!(
            render(&serial),
            render(&parallel),
            "jobs={jobs} changed sweep results vs serial"
        );

        let mut m_serial = Manifest::new("determinism_gate");
        m_serial.set("seed", SEED).set("runs", RUNS).attach_counters(&serial_tele);
        let mut m_par = Manifest::new("determinism_gate");
        m_par.set("seed", SEED).set("runs", RUNS).attach_counters(&par_tele);
        assert_eq!(
            m_serial.render(),
            m_par.render(),
            "jobs={jobs} changed the counter manifest vs serial"
        );
    }
}
