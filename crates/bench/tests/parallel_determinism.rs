#![forbid(unsafe_code)]
//! Determinism gate for the parallel sweep runner (DESIGN.md §8): for the
//! same seeds, `run_sweep_parallel` must produce byte-identical results and
//! byte-identical manifests for ANY job count. A violation here means a
//! figure regenerated on a different machine (or with a different `--jobs`)
//! would silently change — exactly the class of bug the deterministic
//! telemetry subsystem exists to rule out.

use empower_bench::sweep::{run_dynamics_sweep, run_fig13_parallel, run_sweep_parallel, SweepRun};
use empower_core::{FluidEval, Scheme};
use empower_model::topology::random::TopologyClass;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_telemetry::{Manifest, Telemetry, ToJson};

const SCHEMES: [Scheme; 2] = [Scheme::Empower, Scheme::Sp];
const RUNS: usize = 4;
const SEED: u64 = 0xD1CE;

/// Renders a run list to the exact JSON bytes `--out` would dump, so
/// float comparisons are bitwise, not epsilon-based.
fn render(runs: &[SweepRun]) -> String {
    runs.iter().map(|r| r.to_json().to_string_pretty()).collect::<Vec<_>>().join("\n")
}

fn sweep(jobs: usize, tele: &Telemetry) -> Vec<SweepRun> {
    run_sweep_parallel(
        TopologyClass::Residential,
        SEED,
        RUNS,
        1,
        &SCHEMES,
        &FluidEval::default(),
        jobs,
        tele,
    )
}

/// A shortened Fig. 12-style capacity-drop scenario (same shape as
/// `examples/fig12_drop.toml`, 24 s instead of 120 s) for the dynamics
/// sweep gate.
const DROP_SCENARIO: &str = r#"
schema = 1
name = "determinism drop"

[topology]
kind = "fig1"

[run]
scheme = "EMPoWER"
seed = 1
horizon_secs = 24.0
poll_secs = 0.5
recovery_fraction = 0.6

[[flows]]
src = 0
dst = 2
pattern = "saturated"
start = 0.0
stop = 24.0

[[events]]
at = 8.0
kind = "capacity"
link = 2
capacity_mbps = 1.5
both = true

[[events]]
at = 16.0
kind = "link_up"
link = 2
both = true
"#;

fn counter_manifest(tele: &Telemetry) -> String {
    let mut m = Manifest::new("determinism_gate");
    m.set("seed", SEED).attach_counters(tele);
    m.render()
}

#[test]
fn parallel_dynamics_sweep_matches_serial_bytes_and_manifest() {
    let scenario =
        empower_dynamics::Scenario::parse_str(DROP_SCENARIO).expect("inline scenario parses");
    let serial_tele = Telemetry::enabled();
    let serial = run_dynamics_sweep(&scenario, SEED, 3, 1, &serial_tele).expect("scenario runs");
    let par_tele = Telemetry::enabled();
    let parallel = run_dynamics_sweep(&scenario, SEED, 3, 2, &par_tele).expect("scenario runs");
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "jobs=2 changed dynamics outcomes vs serial"
    );
    assert_eq!(
        counter_manifest(&serial_tele),
        counter_manifest(&par_tele),
        "jobs=2 changed the dynamics counter manifest vs serial"
    );
}

#[test]
fn parallel_fig13_rows_match_serial_bytes_and_manifest() {
    let t = testbed22(SEED);
    let imap = CarrierSense::default().build_map(&t.net);
    let config = empower_testbed::fig13::Fig13Config { duration: 20.0, seed: SEED };
    let flows = &empower_testbed::fig13::FLOWS[..3];
    let serial_tele = Telemetry::enabled();
    let serial = run_fig13_parallel(&t.net, &imap, &config, flows, 1, &serial_tele);
    let par_tele = Telemetry::enabled();
    let parallel = run_fig13_parallel(&t.net, &imap, &config, flows, 2, &par_tele);
    let render = |rows: &[empower_testbed::fig13::Fig13Row]| {
        rows.iter().map(|r| r.to_json().to_string_pretty()).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(render(&serial), render(&parallel), "jobs=2 changed Fig. 13 rows vs serial");
    assert_eq!(
        counter_manifest(&serial_tele),
        counter_manifest(&par_tele),
        "jobs=2 changed the Fig. 13 counter manifest vs serial"
    );
}

#[test]
fn parallel_workload_corpus_matches_serial_bytes_and_manifest() {
    use empower_bench::sweep::run_workload_corpus_parallel;
    // Two scenarios keep the gate fast while still exercising the pool.
    let scenarios = &empower_workload::workload_corpus()[..2];
    let serial_tele = Telemetry::enabled();
    let serial =
        run_workload_corpus_parallel(scenarios, 1, &serial_tele).expect("corpus runs serially");
    for jobs in [2, 4] {
        let par_tele = Telemetry::enabled();
        let parallel =
            run_workload_corpus_parallel(scenarios, jobs, &par_tele).expect("corpus runs");
        for (s, ((_, a), (_, b))) in scenarios.iter().zip(serial.iter().zip(&parallel)) {
            assert_eq!(a.slo, b.slo, "jobs={jobs} changed {} SLOs vs serial", s.name);
            assert_eq!(a.report, b.report, "jobs={jobs} changed {} report vs serial", s.name);
            assert_eq!(a.trace, b.trace, "jobs={jobs} changed {} trace vs serial", s.name);
            assert_eq!(a.manifest, b.manifest, "jobs={jobs} changed {} manifest vs serial", s.name);
        }
        assert_eq!(
            counter_manifest(&serial_tele),
            counter_manifest(&par_tele),
            "jobs={jobs} changed the merged workload counter manifest vs serial"
        );
    }
}

/// Shard-count determinism for the sharded simulator itself (DESIGN.md
/// §13): the same corpus scenario must render byte-identically for any
/// `--shards`, composing with the `--jobs` determinism the other gates
/// cover. The full 23-scenario × 4-shard-count sweep lives in
/// `crates/sim/tests/shard_equivalence.rs`; this gate keeps the bench
/// crate honest on the two scenarios its scale curve reports.
#[test]
fn sharded_simulation_matches_across_shard_counts() {
    use empower_sim::corpus::{corpus, run_scenario, ShardedN as Sharded};

    let scenarios = corpus();
    for name in ["fig1_contending", "testbed_pair_1_4_13"] {
        let s = scenarios.iter().find(|s| s.name == name).expect("corpus scenario exists");
        let one = run_scenario::<Sharded<1>>(s);
        assert_eq!(one, run_scenario::<Sharded<2>>(s), "{name}: shards=2 diverged");
        assert_eq!(one, run_scenario::<Sharded<4>>(s), "{name}: shards=4 diverged");
    }
}

#[test]
fn parallel_sweep_matches_serial_bytes_and_manifest() {
    let serial_tele = Telemetry::enabled();
    let serial = sweep(1, &serial_tele);
    assert_eq!(serial.len(), RUNS);

    for jobs in [2, 4] {
        let par_tele = Telemetry::enabled();
        let parallel = sweep(jobs, &par_tele);
        assert_eq!(
            render(&serial),
            render(&parallel),
            "jobs={jobs} changed sweep results vs serial"
        );

        let mut m_serial = Manifest::new("determinism_gate");
        m_serial.set("seed", SEED).set("runs", RUNS).attach_counters(&serial_tele);
        let mut m_par = Manifest::new("determinism_gate");
        m_par.set("seed", SEED).set("runs", RUNS).attach_counters(&par_tele);
        assert_eq!(
            m_serial.render(),
            m_par.render(),
            "jobs={jobs} changed the counter manifest vs serial"
        );
    }
}
