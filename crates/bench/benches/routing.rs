//! Micro-benchmarks for the routing kernels.
//!
//! §3.2 claims the whole multipath computation takes ≈ 50 ms with n = 5 on
//! the testbed routers (AMD G-T40E-class boards); `multipath/testbed22_n5`
//! is the direct counterpart on the 22-node topology.

use empower_bench::harness::bench;
use empower_core::Scheme;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};
use empower_routing::{
    best_combination, k_shortest_paths, shortest_path, CscMode, LinkMetric, MultipathConfig,
    RouteQuery,
};

fn main() {
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let src = t.node(1);
    let dst = t.node(13);
    let query = RouteQuery::new(src, dst).with_mediums(&Scheme::Empower.mediums());

    let metric = LinkMetric::ett(&t.net);
    bench("dijkstra/testbed22", || shortest_path(&t.net, &metric, CscMode::Paper, &query));
    bench("yen5/testbed22", || k_shortest_paths(&t.net, &metric, CscMode::Paper, &query, 5));

    // The §3.2 end-to-end claim: full exploration tree with n-shortest.
    for n in [1usize, 2, 3, 5, 8] {
        let config = MultipathConfig { n_shortest: n, ..Default::default() };
        bench(&format!("multipath/testbed22_n{n}"), || {
            best_combination(&t.net, &imap, &query, &config)
        });
    }
}
