//! Micro-benchmarks for the layer-2.5 datapath kernels: the 20-byte header
//! codec (touched on every forwarded frame) and the reorder buffer.

use empower_bench::harness::bench;
use empower_datapath::{EmpowerHeader, IfaceId, ReorderConfig, SourceRoute, HEADER_LEN};

fn main() {
    let route = SourceRoute::new(&[IfaceId(11), IfaceId(22), IfaceId(33), IfaceId(44)]).unwrap();
    let mut header = EmpowerHeader::new(route, 123_456);
    header.add_price(0.375);

    let mut buf = Vec::with_capacity(32);
    bench("header/encode", || {
        buf.clear();
        header.encode(&mut buf);
        buf.len()
    });

    let mut fixed = [0u8; HEADER_LEN];
    bench("header/encode_into", || {
        header.encode_into(&mut fixed);
        fixed[0]
    });

    let mut bytes = [0u8; HEADER_LEN];
    header.encode_into(&mut bytes);
    bench("header/decode", || EmpowerHeader::decode(&mut &bytes[..]).unwrap());

    bench("reorder/two_route_interleave_1k", || {
        let mut buf = ReorderConfig::for_routes(2).build();
        let mut delivered = 0usize;
        // Route 0 carries even seqs, route 1 odd, slightly skewed.
        for s in 0..1000u32 {
            let route = (s % 2) as usize;
            delivered += buf.accept(route, s).len();
        }
        delivered
    });
}
