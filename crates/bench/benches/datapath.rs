//! Criterion benches for the layer-2.5 datapath kernels: the 20-byte header
//! codec (touched on every forwarded frame) and the reorder buffer.

use criterion::{criterion_group, criterion_main, Criterion};
use empower_datapath::{EmpowerHeader, IfaceId, ReorderBuffer, SourceRoute};

fn bench_header(c: &mut Criterion) {
    let route =
        SourceRoute::new(&[IfaceId(11), IfaceId(22), IfaceId(33), IfaceId(44)]).unwrap();
    let mut header = EmpowerHeader::new(route, 123_456);
    header.add_price(0.375);

    c.bench_function("header/encode", |b| {
        let mut buf = Vec::with_capacity(32);
        b.iter(|| {
            buf.clear();
            header.encode(&mut buf);
            std::hint::black_box(&buf);
        })
    });

    let bytes = header.to_bytes();
    c.bench_function("header/decode", |b| {
        b.iter(|| EmpowerHeader::decode(&mut bytes.as_slice()).unwrap())
    });
}

fn bench_reorder(c: &mut Criterion) {
    c.bench_function("reorder/two_route_interleave_1k", |b| {
        b.iter(|| {
            let mut buf = ReorderBuffer::new(2);
            let mut delivered = 0usize;
            // Route 0 carries even seqs, route 1 odd, slightly skewed.
            for s in 0..1000u32 {
                let route = (s % 2) as usize;
                delivered += buf.accept(route, s).len();
            }
            std::hint::black_box(delivered)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_header, bench_reorder
}
criterion_main!(benches);
