//! Criterion benches for the control-plane kernels: one congestion-
//! controller slot, the exact MWIS scheduler that makes backpressure
//! "optimal but impractical", and the centralized reference solver.

use criterion::{criterion_group, criterion_main, Criterion};
use empower_baselines::{
    max_weight_independent_set, maximize_utility, CapacityRegion, ConflictGraph, RegionKind,
};
use empower_cc::{CcConfig, CcProblem, MultipathController, ProportionalFair};
use empower_core::Scheme;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};

fn bench_control(c: &mut Criterion) {
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let routes =
        Scheme::Empower.compute_routes(&t.net, &imap, t.node(1), t.node(13), 5);
    let problem = CcProblem::new(&t.net, &imap, vec![routes.paths()]);

    c.bench_function("cc/controller_slot_testbed22", |b| {
        let mut ctl = MultipathController::new(&problem, ProportionalFair, CcConfig::default());
        b.iter(|| {
            ctl.step(&problem, &imap);
            std::hint::black_box(ctl.rates()[0])
        })
    });

    c.bench_function("baselines/mwis_testbed22", |b| {
        let g = ConflictGraph::from_interference(&imap);
        let weights: Vec<f64> =
            (0..g.len()).map(|i| ((i * 37) % 101) as f64 / 10.0).collect();
        b.iter(|| max_weight_independent_set(&g, &weights))
    });

    c.bench_function("baselines/frank_wolfe_conservative", |b| {
        let region =
            CapacityRegion::build(&problem, &imap, RegionKind::Conservative, 0.0);
        b.iter(|| maximize_utility(&problem, &region, &ProportionalFair, 50))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_control
}
criterion_main!(benches);
