//! Micro-benchmarks for the control-plane kernels: one congestion-
//! controller slot, the exact MWIS scheduler that makes backpressure
//! "optimal but impractical", and the centralized reference solver.

use empower_baselines::{
    max_weight_independent_set, maximize_utility, CapacityRegion, ConflictGraph, RegionKind,
};
use empower_bench::harness::bench;
use empower_cc::{CcConfig, CcProblem, MultipathController, ProportionalFair};
use empower_core::Scheme;
use empower_model::topology::testbed22;
use empower_model::{CarrierSense, InterferenceModel};

fn main() {
    let t = testbed22(1);
    let imap = CarrierSense::default().build_map(&t.net);
    let routes = Scheme::Empower.compute_routes(&t.net, &imap, t.node(1), t.node(13), 5);
    let problem = CcProblem::new(&t.net, &imap, vec![routes.paths()]);

    let mut ctl = MultipathController::new(&problem, ProportionalFair, CcConfig::default());
    bench("cc/controller_slot_testbed22", || {
        ctl.step(&problem, &imap);
        ctl.rates()[0]
    });

    let g = ConflictGraph::from_interference(&imap);
    let weights: Vec<f64> = (0..g.len()).map(|i| ((i * 37) % 101) as f64 / 10.0).collect();
    bench("baselines/mwis_testbed22", || max_weight_independent_set(&g, &weights));

    let region = CapacityRegion::build(&problem, &imap, RegionKind::Conservative, 0.0);
    bench("baselines/frank_wolfe_conservative", || {
        maximize_utility(&problem, &region, &ProportionalFair, 50)
    });
}
