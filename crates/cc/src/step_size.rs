//! The step-size heuristic of §6.1.
//!
//! The controller uses a fixed base step `α₀ = 0.02`, scaled by route
//! length: ×4 when the longest route is one hop, ×2 when the flow is
//! single-path or the longest route is two hops. To recover from a too
//! aggressive α, the heuristic watches the flow's total-rate trajectory and
//! halves α whenever it sees **6 or more oscillations of non-decreasing
//! amplitude** — the signature of a dual iteration circling its fixed point
//! instead of spiralling in.

/// Adaptive step size for one flow.
#[derive(Debug, Clone)]
pub struct AdaptiveAlpha {
    alpha: f64,
    /// The hop-count-scaled starting value; recovery ceiling.
    initial_alpha: f64,
    min_alpha: f64,
    /// Last observed flow rate.
    last_rate: Option<f64>,
    /// Last delta (rate difference between consecutive slots).
    last_delta: Option<f64>,
    /// Length of the current run of sign-alternating, non-decreasing-
    /// amplitude deltas.
    oscillation_run: usize,
    /// Amplitude of the previous oscillation half-swing.
    last_amplitude: f64,
    /// Consecutive calm (non-oscillating) slots, for α recovery.
    calm_run: usize,
}

impl AdaptiveAlpha {
    /// Base step size from §6.1.
    pub const BASE_ALPHA: f64 = 0.02;

    /// Creates the heuristic for a flow whose longest route has
    /// `max_hops` hops and which uses `route_count` routes.
    pub fn new(max_hops: usize, route_count: usize) -> Self {
        let multiplier = if max_hops <= 1 {
            4.0
        } else if max_hops == 2 || route_count == 1 {
            2.0
        } else {
            1.0
        };
        let alpha = Self::BASE_ALPHA * multiplier;
        AdaptiveAlpha {
            alpha,
            initial_alpha: alpha,
            min_alpha: alpha / 16.0,
            last_rate: None,
            last_delta: None,
            oscillation_run: 0,
            last_amplitude: 0.0,
            calm_run: 0,
        }
    }

    /// Current α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds one slot's total flow rate; returns the (possibly reduced) α to
    /// use for the next slot.
    pub fn observe(&mut self, rate: f64) -> f64 {
        if let Some(last) = self.last_rate {
            let delta = rate - last;
            if let Some(prev_delta) = self.last_delta {
                let alternating = delta * prev_delta < 0.0;
                let non_decreasing = delta.abs() + 1e-12 >= self.last_amplitude;
                // Only *significant* swings count: measurement quantization
                // produces permanent sub-percent jitter that must not
                // starve the step size.
                let significant = delta.abs() >= 0.02 * rate.abs().max(1.0);
                if alternating && non_decreasing && significant {
                    self.oscillation_run += 1;
                    self.calm_run = 0;
                    if self.oscillation_run >= 6 {
                        self.alpha = (self.alpha / 2.0).max(self.min_alpha);
                        self.oscillation_run = 0;
                    }
                } else if alternating && significant {
                    // Oscillating but damping: benign, restart the count.
                    self.oscillation_run = 1;
                    self.calm_run = 0;
                } else {
                    self.oscillation_run = 0;
                    // Sustained calm earns the step size back (the paper
                    // only shrinks α; without recovery a single transient
                    // permanently slows every later adaptation).
                    self.calm_run += 1;
                    if self.calm_run >= 100 && self.alpha < self.initial_alpha {
                        self.alpha = (self.alpha * 2.0).min(self.initial_alpha);
                        self.calm_run = 0;
                    }
                }
            }
            self.last_amplitude = delta.abs();
            self.last_delta = Some(delta);
        }
        self.last_rate = Some(rate);
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hop_routes_get_4x() {
        assert!((AdaptiveAlpha::new(1, 2).alpha() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn two_hop_routes_get_2x() {
        assert!((AdaptiveAlpha::new(2, 2).alpha() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn single_path_gets_2x_even_when_long() {
        assert!((AdaptiveAlpha::new(3, 1).alpha() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn long_multipath_keeps_base() {
        assert!((AdaptiveAlpha::new(3, 2).alpha() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn growing_oscillations_halve_alpha() {
        let mut a = AdaptiveAlpha::new(3, 2);
        let base = a.alpha();
        // Rates swinging with growing amplitude: 10±k.
        let mut rate = 10.0;
        for k in 0..12 {
            rate = if k % 2 == 0 { 10.0 + k as f64 } else { 10.0 - k as f64 };
            a.observe(rate);
        }
        assert!(a.alpha() < base, "α should shrink, got {}", a.alpha());
        let _ = rate;
    }

    #[test]
    fn damped_oscillations_keep_alpha() {
        let mut a = AdaptiveAlpha::new(3, 2);
        let base = a.alpha();
        for k in 0..20 {
            let amp = 10.0 / (k as f64 + 1.0);
            let rate = if k % 2 == 0 { 10.0 + amp } else { 10.0 - amp };
            a.observe(rate);
        }
        assert_eq!(a.alpha(), base);
    }

    #[test]
    fn monotone_convergence_keeps_alpha() {
        let mut a = AdaptiveAlpha::new(3, 2);
        let base = a.alpha();
        for k in 0..50 {
            a.observe(10.0 - 10.0 / (k as f64 + 1.0));
        }
        assert_eq!(a.alpha(), base);
    }

    #[test]
    fn alpha_never_drops_below_floor() {
        let mut a = AdaptiveAlpha::new(3, 2);
        for k in 0..10_000 {
            let rate = if k % 2 == 0 { k as f64 } else { -(k as f64) };
            a.observe(rate);
        }
        assert!(a.alpha() >= 1e-4);
    }
}
