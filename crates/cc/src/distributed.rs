//! The distributed embodiment of the controller (§4.2, last paragraph).
//!
//! Each node monitors the traffic it forwards and measures the airtime
//! demand `d_l · Σ_{r: l∈r} x_r` of each of its egress links. Per technology
//! `k` it periodically broadcasts **(i)** the aggregate airtime demand over
//! its egress links on `k` and **(ii)** the sum of the dual variables `γ_l`
//! of those links. Overhearing nodes combine the broadcasts with their own
//! measurements to evaluate `y_l` (Eq. (7)) for their own egress links and
//! update `γ_l` (Eq. (8)). When forwarding a packet on `l`, a node adds
//! `d_l Σ_{i∈I_l} γ_i` to a header field, so the destination reads `q_r`
//! (Eq. (9)) and echoes it to the source in an acknowledgement.
//!
//! The per-(node, technology) aggregation is *exact* when, for every link
//! `l` and every other node `u`, either all or none of `u`'s egress links on
//! `k` belong to `I_l` — true under the shared-medium model used in the
//! simulations, and the approximation the real system makes under partial
//! (carrier-sense) interference.

use empower_model::{InterferenceMap, LinkId, Medium, Network, NodeId};

/// One periodic per-technology broadcast from a node (§4.2 items (i)–(ii),
/// plus the §6.4 TCP piggyback).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceBroadcast {
    pub from: NodeId,
    pub medium: Medium,
    /// Aggregate airtime demand `Σ d_l x_l` over the sender's egress links
    /// on `medium`.
    pub airtime_demand: f64,
    /// `Σ γ_l` over the same links.
    pub gamma_sum: f64,
    /// §6.4: "if a node receives TCP messages, it informs its neighbors by
    /// piggybacking this information in the broadcasted price messages" —
    /// everyone in its contention domain then applies the TCP-friendly
    /// constraint margin (δ = 0.3) instead of the default.
    pub tcp_receiver: bool,
}

/// Per-node price state: dual variables and measured demands for the node's
/// egress links.
#[derive(Debug, Clone)]
pub struct LinkPriceState {
    node: NodeId,
    /// True while this node receives TCP traffic (piggybacked, §6.4).
    tcp_receiver: bool,
    /// Egress links of this node.
    egress: Vec<LinkId>,
    /// γ_l per egress link (indexed like `egress`).
    gamma: Vec<f64>,
    /// Measured airtime demand `d_l x_l` per egress link.
    demand: Vec<f64>,
    /// For each egress link: which *other* nodes' broadcasts on which medium
    /// count toward its `y_l` (the overhearing set), plus whether each of
    /// this node's own egress links is in its domain.
    ///
    /// `overheard[i]` = (relevant (node, medium) pairs, own egress indexes in
    /// `I_l`).
    overheard: Vec<OverhearSet>,
}

/// For one egress link: the (node, medium) broadcasts to accumulate, plus
/// this node's own egress indexes inside the link's domain.
type OverhearSet = (Vec<(NodeId, Medium)>, Vec<usize>);

impl LinkPriceState {
    /// Builds the state for `node`, deriving the overhearing sets from the
    /// interference map.
    pub fn new(net: &Network, imap: &InterferenceMap, node: NodeId) -> Self {
        let egress: Vec<LinkId> = net.out_links(node).map(|l| l.id).collect();
        let overheard = egress
            .iter()
            .map(|&l| {
                let mut nodes: Vec<(NodeId, Medium)> = Vec::new();
                let mut own = Vec::new();
                for &i in imap.domain(l) {
                    let owner = net.link(i).from;
                    let medium = net.link(i).medium;
                    if owner == node {
                        if let Some(pos) = egress.iter().position(|&e| e == i) {
                            own.push(pos);
                        }
                    } else if !nodes.contains(&(owner, medium)) {
                        nodes.push((owner, medium));
                    }
                }
                (nodes, own)
            })
            .collect();
        LinkPriceState {
            node,
            tcp_receiver: false,
            gamma: vec![0.0; egress.len()],
            demand: vec![0.0; egress.len()],
            egress,
            overheard,
        }
    }

    /// Marks whether this node currently receives TCP traffic (§6.4). The
    /// flag rides on every outgoing price broadcast.
    pub fn set_tcp_receiver(&mut self, receiving: bool) {
        self.tcp_receiver = receiving;
    }

    /// The node this state belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Records the measured airtime demand of an egress link for the current
    /// slot (`d_l` times the traffic rate the node forwards on `l`).
    pub fn set_demand(&mut self, link: LinkId, airtime_demand: f64) {
        let i = self.index_of(link);
        self.demand[i] = airtime_demand;
    }

    /// The γ of an egress link.
    pub fn gamma(&self, link: LinkId) -> f64 {
        self.gamma[self.index_of(link)]
    }

    /// Forgets the dual of an egress link. Called on topology changes
    /// (link revival, node recovery): the γ learned under the old topology
    /// prices a world that no longer exists, and the update rule (8) can
    /// only unwind it at α per slot — resetting lets the next slots rebuild
    /// it from fresh demand measurements.
    pub fn reset_gamma(&mut self, link: LinkId) {
        let i = self.index_of(link);
        self.gamma[i] = 0.0;
    }

    /// Produces this node's per-technology broadcasts for the current slot.
    pub fn make_broadcasts(&self, net: &Network) -> Vec<PriceBroadcast> {
        let mut out = Vec::new();
        self.make_broadcasts_into(net, &mut out);
        out
    }

    /// Allocation-free variant of [`LinkPriceState::make_broadcasts`]:
    /// appends this node's broadcasts to `out`, so one reused vector can
    /// collect a whole network's worth per slot. Per-medium aggregation
    /// only merges into entries appended by *this* call — broadcasts from
    /// previously appended nodes are never touched.
    pub fn make_broadcasts_into(&self, net: &Network, out: &mut Vec<PriceBroadcast>) {
        let start = out.len();
        for (i, &l) in self.egress.iter().enumerate() {
            let medium = net.link(l).medium;
            match out[start..].iter_mut().find(|b| b.medium == medium) {
                Some(b) => {
                    b.airtime_demand += self.demand[i];
                    b.gamma_sum += self.gamma[i];
                }
                None => out.push(PriceBroadcast {
                    from: self.node,
                    medium,
                    airtime_demand: self.demand[i],
                    gamma_sum: self.gamma[i],
                    tcp_receiver: self.tcp_receiver,
                }),
            }
        }
    }

    /// One slot of Eq. (7)+(8): combines own demands with overheard
    /// broadcasts to get `y_l` for every egress link, then updates γ.
    ///
    /// `broadcasts` is everything this node overheard this slot (broadcasts
    /// from irrelevant nodes are ignored via the overhearing sets).
    pub fn update_gammas(
        &mut self,
        broadcasts: &[PriceBroadcast],
        alpha: f64,
        delta: f64,
    ) -> usize {
        self.update_gammas_with_tcp_margin(broadcasts, alpha, delta, delta)
    }

    /// Like [`LinkPriceState::update_gammas`], applying `delta_tcp` instead
    /// of `delta` on every egress link whose contention domain contains a
    /// TCP receiver (this node or an overheard broadcaster) — the §6.4
    /// coexistence rule ("only the nodes in the contention domain of a TCP
    /// flow should use this value of δ").
    ///
    /// Returns how many egress links violated their airtime margin this
    /// slot (`y_l > 1 − δ`), for the caller's telemetry.
    pub fn update_gammas_with_tcp_margin(
        &mut self,
        broadcasts: &[PriceBroadcast],
        alpha: f64,
        delta: f64,
        delta_tcp: f64,
    ) -> usize {
        let per_link: Vec<(f64, f64)> = self
            .overheard
            .iter()
            .map(|(nodes, own)| {
                let mut external = 0.0;
                let mut tcp = self.tcp_receiver;
                for b in broadcasts {
                    if nodes.contains(&(b.from, b.medium)) {
                        external += b.airtime_demand;
                        tcp |= b.tcp_receiver;
                    }
                }
                let internal: f64 = own.iter().map(|&i| self.demand[i]).sum();
                (external + internal, if tcp { delta_tcp } else { delta })
            })
            .collect();
        let mut violations = 0;
        for (g, (yl, d)) in self.gamma.iter_mut().zip(per_link) {
            *g = (*g + alpha * (yl - (1.0 - d))).max(0.0);
            if yl > 1.0 - d {
                violations += 1;
            }
        }
        violations
    }

    /// The per-hop price contribution `d_l Σ_{i∈I_l} γ_i` a node adds to the
    /// layer-2.5 header when forwarding on `link` (Eq. (9) summand).
    pub fn price_contribution(
        &self,
        net: &Network,
        broadcasts: &[PriceBroadcast],
        link: LinkId,
    ) -> f64 {
        let i = self.index_of(link);
        let (nodes, own) = &self.overheard[i];
        let external: f64 = broadcasts
            .iter()
            .filter(|b| nodes.contains(&(b.from, b.medium)))
            .map(|b| b.gamma_sum)
            .sum();
        let internal: f64 = own.iter().map(|&j| self.gamma[j]).sum();
        net.link(link).cost() * (external + internal)
    }

    fn index_of(&self, link: LinkId) -> usize {
        // empower-lint: allow(D005) — internal helper; the egress set is
        // fixed at construction and every caller passes a member of it.
        self.egress.iter().position(|&e| e == link).expect("link is an egress of this node")
    }
}

/// Precomputed index plan over the concatenated broadcast vector.
///
/// The *layout* of the broadcast vector produced by calling
/// [`LinkPriceState::make_broadcasts_into`] for a fixed slice of states in a
/// fixed order never changes during a run: it depends only on each node's
/// egress set and the links' media, neither of which topology dynamics
/// touch (dead links keep their slot with zero demand). The plan exploits
/// that to replace the per-slot `(from, medium)` membership scans — an
/// `O(egress × broadcasts × |domain nodes|)` pass per node — with direct
/// indexed sums, and to drop the per-slot scratch vector
/// [`LinkPriceState::update_gammas_with_tcp_margin`] allocates.
///
/// Every floating-point sum iterates in ascending broadcast-vector order,
/// exactly like the scanning originals, so the planned variants are
/// **bit-identical** to them (asserted in this module's tests).
#[derive(Debug, Clone)]
pub struct BroadcastPlan {
    /// Per state, per egress link: ascending indices into the broadcast
    /// vector of the `(node, medium)` entries in the link's overhearing set.
    indices: Vec<Vec<Vec<u32>>>,
    /// Per [`LinkId`] index: the link's position in its owner's egress list.
    egress_pos: Vec<u32>,
    /// Expected broadcast-vector length (for debug sanity checks).
    len: usize,
}

impl BroadcastPlan {
    /// Builds the plan for `states`, which must be the exact slice (same
    /// order) whose broadcasts are later concatenated per slot.
    pub fn new(net: &Network, states: &[LinkPriceState]) -> Self {
        // Reproduce the layout make_broadcasts_into generates: per state,
        // one entry per distinct egress medium, in first-seen order.
        let mut layout: Vec<(NodeId, Medium)> = Vec::new();
        for s in states {
            let start = layout.len();
            for &l in &s.egress {
                let medium = net.link(l).medium;
                if !layout[start..].iter().any(|&(_, m)| m == medium) {
                    layout.push((s.node, medium));
                }
            }
        }
        let indices = states
            .iter()
            .map(|s| {
                s.overheard
                    .iter()
                    .map(|(nodes, _)| {
                        layout
                            .iter()
                            .enumerate()
                            .filter(|(_, nm)| nodes.contains(nm))
                            .map(|(i, _)| i as u32)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut egress_pos = vec![0u32; net.link_count()];
        for s in states {
            for (pos, &l) in s.egress.iter().enumerate() {
                egress_pos[l.index()] = pos as u32;
            }
        }
        BroadcastPlan { indices, egress_pos, len: layout.len() }
    }

    /// Planned, allocation-free equivalent of calling
    /// [`LinkPriceState::update_gammas_with_tcp_margin`] on every state:
    /// one slot of Eq. (7)+(8) for the whole network. Returns the total
    /// airtime-margin violations, like summing the per-state calls.
    pub fn update_gammas_with_tcp_margin(
        &self,
        states: &mut [LinkPriceState],
        broadcasts: &[PriceBroadcast],
        alpha: f64,
        delta: f64,
        delta_tcp: f64,
    ) -> usize {
        debug_assert_eq!(broadcasts.len(), self.len, "broadcast layout changed under the plan");
        debug_assert_eq!(states.len(), self.indices.len());
        let mut violations = 0;
        for (s, rows) in states.iter_mut().zip(&self.indices) {
            for (i, row) in rows.iter().enumerate() {
                let mut external = 0.0;
                let mut tcp = s.tcp_receiver;
                for &bi in row {
                    let b = &broadcasts[bi as usize];
                    external += b.airtime_demand;
                    tcp |= b.tcp_receiver;
                }
                let internal: f64 = s.overheard[i].1.iter().map(|&j| s.demand[j]).sum();
                let yl = external + internal;
                let d = if tcp { delta_tcp } else { delta };
                let g = &mut s.gamma[i];
                *g = (*g + alpha * (yl - (1.0 - d))).max(0.0);
                if yl > 1.0 - d {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// Planned equivalent of [`LinkPriceState::price_contribution`] for the
    /// state at `state_index` (the owner of `link`).
    pub fn price_contribution(
        &self,
        net: &Network,
        states: &[LinkPriceState],
        broadcasts: &[PriceBroadcast],
        state_index: usize,
        link: LinkId,
    ) -> f64 {
        // Empty = no slot has broadcast yet (or the scheme never does, e.g.
        // plain single-path TCP): the scanning original sums to zero there.
        debug_assert!(
            broadcasts.len() == self.len || broadcasts.is_empty(),
            "broadcast layout changed under the plan"
        );
        let s = &states[state_index];
        debug_assert_eq!(net.link(link).from, s.node, "state is not the owner of the link");
        let i = self.egress_pos[link.index()] as usize;
        let external: f64 = if broadcasts.is_empty() {
            0.0
        } else {
            self.indices[state_index][i].iter().map(|&bi| broadcasts[bi as usize].gamma_sum).sum()
        };
        let internal: f64 = s.overheard[i].1.iter().map(|&j| s.gamma[j]).sum();
        net.link(link).cost() * (external + internal)
    }
}

/// Accumulates the route price `q_r` hop by hop, as the dedicated header
/// field does on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoutePriceAccumulator {
    q: f64,
}

impl RoutePriceAccumulator {
    /// Fresh accumulator for a new packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one hop's contribution (called by each forwarding node).
    pub fn add_hop(&mut self, contribution: f64) {
        self.q += contribution;
    }

    /// The accumulated `q_r` the destination echoes back.
    pub fn total(&self) -> f64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{CcConfig, MultipathController};
    use crate::problem::CcProblem;
    use crate::utility::ProportionalFair;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, Path, SharedMedium};

    /// Runs the distributed machinery one slot for all nodes and returns the
    /// per-route q_r, mirroring what the packet datapath would compute.
    fn distributed_slot(
        net: &Network,
        states: &mut [LinkPriceState],
        problem: &CcProblem,
        x: &[f64],
        alpha: f64,
    ) -> Vec<f64> {
        // 1. Each node measures egress demands from the current rates.
        let link_rates = problem.link_rates(x);
        for s in states.iter_mut() {
            let node = s.node();
            let egress: Vec<LinkId> = net.out_links(node).map(|l| l.id).collect();
            for l in egress {
                s.set_demand(l, net.link(l).cost() * link_rates[l.index()]);
            }
        }
        // 2. Broadcast and overhear (perfect control channel).
        let broadcasts: Vec<PriceBroadcast> =
            states.iter().flat_map(|s| s.make_broadcasts(net)).collect();
        // 3. Dual updates.
        for s in states.iter_mut() {
            s.update_gammas(&broadcasts, alpha, 0.0);
        }
        // 4. Fresh broadcasts carry the updated γ sums; data packets
        //    forwarded during the slot accumulate prices from these.
        let broadcasts: Vec<PriceBroadcast> =
            states.iter().flat_map(|s| s.make_broadcasts(net)).collect();
        // 5. Header accumulation along each route.
        problem
            .routes
            .iter()
            .map(|path| {
                let mut acc = RoutePriceAccumulator::new();
                for &l in path.links() {
                    let owner = net.link(l).from;
                    let state = states.iter().find(|s| s.node() == owner).unwrap();
                    acc.add_hop(state.price_contribution(net, &broadcasts, l));
                }
                acc.total()
            })
            .collect()
    }

    #[test]
    fn distributed_prices_match_the_paper_formulas() {
        // Drive the distributed machinery and a direct link-indexed
        // evaluation of Eqs. (7)–(9) with the SAME rate trajectory (taken
        // from the centralized controller) and compare the per-route prices
        // q_r slot by slot.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let problem = CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]);

        let mut central = MultipathController::new(&problem, ProportionalFair, CcConfig::default());
        let mut states: Vec<LinkPriceState> =
            s.net.nodes().iter().map(|n| LinkPriceState::new(&s.net, &imap, n.id)).collect();
        // Direct evaluation state: γ per link.
        let mut gamma = vec![0.0_f64; s.net.link_count()];
        let alpha = 0.02;

        for _ in 0..500 {
            let x: Vec<f64> = central.rates().to_vec();
            let q_dist = distributed_slot(&s.net, &mut states, &problem, &x, alpha);

            // Direct Eqs. (7)-(9).
            let link_rates = problem.link_rates(&x);
            let y = problem.domain_airtimes(&imap, &link_rates);
            for (g, &yl) in gamma.iter_mut().zip(&y) {
                *g = (*g + alpha * (yl - 1.0)).max(0.0);
            }
            let q_direct: Vec<f64> = problem
                .routes
                .iter()
                .map(|path| {
                    path.links()
                        .iter()
                        .map(|&l| {
                            let dg: f64 = imap.domain(l).iter().map(|&i| gamma[i.index()]).sum();
                            problem.link_costs[l.index()] * dg
                        })
                        .sum()
                })
                .collect();

            for (a, b) in q_dist.iter().zip(&q_direct) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "distributed {a} vs direct {b}");
            }
            central.step(&problem, &imap);
        }
    }

    #[test]
    fn broadcasts_aggregate_per_medium() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut state = LinkPriceState::new(&s.net, &imap, s.gateway);
        state.set_demand(s.plc_ab, 0.3);
        state.set_demand(s.wifi_ab, 0.5);
        let bs = state.make_broadcasts(&s.net);
        assert_eq!(bs.len(), 2); // one per medium
        let plc = bs.iter().find(|b| b.medium == empower_model::Medium::Plc).unwrap();
        let wifi = bs.iter().find(|b| b.medium == empower_model::Medium::WIFI1).unwrap();
        assert!((plc.airtime_demand - 0.3).abs() < 1e-12);
        assert!((wifi.airtime_demand - 0.5).abs() < 1e-12);
    }

    #[test]
    fn planned_slot_updates_are_bit_identical_to_scanning() {
        use empower_model::topology::testbed22;
        use empower_model::CarrierSense;
        // The 22-node testbed under carrier-sense interference: large,
        // irregular overhearing sets — the regime the plan is for.
        let net = testbed22(3).net;
        let imap = CarrierSense::default().build_map(&net);
        let mut scanning: Vec<LinkPriceState> =
            net.nodes().iter().map(|n| LinkPriceState::new(&net, &imap, n.id)).collect();
        let mut planned = scanning.clone();
        let plan = BroadcastPlan::new(&net, &scanning);
        // Deterministic pseudo-demands, a TCP receiver, and several slots so
        // gammas accumulate through the nonlinearity.
        for slot in 0..5u64 {
            for s in scanning.iter_mut().chain(planned.iter_mut()) {
                s.set_tcp_receiver(s.node().index() == 4);
                let egress: Vec<LinkId> = s.egress.clone();
                for (k, l) in egress.into_iter().enumerate() {
                    let d = ((slot + 1) * (k as u64 * 7 + l.index() as u64 * 13 + 1) % 97) as f64
                        / 97.0;
                    s.set_demand(l, d);
                }
            }
            let mut bcast = Vec::new();
            for s in &scanning {
                s.make_broadcasts_into(&net, &mut bcast);
            }
            let mut viol_scan = 0;
            for s in scanning.iter_mut() {
                viol_scan += s.update_gammas_with_tcp_margin(&bcast, 0.02, 0.05, 0.3);
            }
            let viol_plan =
                plan.update_gammas_with_tcp_margin(&mut planned, &bcast, 0.02, 0.05, 0.3);
            assert_eq!(viol_scan, viol_plan, "slot {slot}: violation counts diverged");
            for (a, b) in scanning.iter().zip(&planned) {
                assert_eq!(a.gamma, b.gamma, "slot {slot}: gammas diverged at node {:?}", a.node);
            }
            // Price contributions from the updated gammas, every link.
            for l in 0..net.link_count() {
                let link = LinkId(l as u32);
                let owner = net.link(link).from.index();
                let direct = scanning[owner].price_contribution(&net, &bcast, link);
                let fast = plan.price_contribution(&net, &planned, &bcast, owner, link);
                assert!(
                    direct.to_bits() == fast.to_bits(),
                    "slot {slot} link {l}: {direct} vs {fast}"
                );
            }
        }
    }

    #[test]
    fn accumulator_sums_hops() {
        let mut acc = RoutePriceAccumulator::new();
        acc.add_hop(0.1);
        acc.add_hop(0.25);
        assert!((acc.total() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn gamma_stays_zero_below_capacity() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut state = LinkPriceState::new(&s.net, &imap, s.gateway);
        state.set_demand(s.wifi_ab, 0.2);
        let bs = state.make_broadcasts(&s.net);
        state.update_gammas(&bs, 0.02, 0.0);
        assert_eq!(state.gamma(s.wifi_ab), 0.0);
    }

    #[test]
    fn gamma_rises_under_overload() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let mut state = LinkPriceState::new(&s.net, &imap, s.gateway);
        state.set_demand(s.wifi_ab, 1.5); // 150 % airtime demand
        let bs = state.make_broadcasts(&s.net);
        state.update_gammas(&bs, 0.02, 0.0);
        assert!((state.gamma(s.wifi_ab) - 0.02 * 0.5).abs() < 1e-12);
    }
}
