//! Flow utility functions.
//!
//! A utility `U_f : ℝ₊ → ℝ₊` is increasing and strictly concave; it encodes
//! the throughput/fairness trade-off. The paper's evaluation uses
//! proportional fairness `U_f(x) = log(1 + x)` throughout (§5.1).

/// An increasing, strictly concave utility with an invertible derivative.
pub trait Utility: std::fmt::Debug + Send + Sync {
    /// `U(x)`.
    fn value(&self, x: f64) -> f64;
    /// `U'(x)`; must be positive and strictly decreasing.
    fn deriv(&self, x: f64) -> f64;
    /// `U'⁻¹(q)`, clamped at 0 (Eq. (10) uses this directly).
    fn deriv_inv(&self, q: f64) -> f64;
}

/// `U(x) = log(1 + x)` — proportional fairness (shifted so `U(0) = 0`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalFair;

impl Utility for ProportionalFair {
    fn value(&self, x: f64) -> f64 {
        (1.0 + x.max(0.0)).ln()
    }

    fn deriv(&self, x: f64) -> f64 {
        1.0 / (1.0 + x.max(0.0))
    }

    fn deriv_inv(&self, q: f64) -> f64 {
        if q <= 0.0 {
            f64::INFINITY
        } else {
            (1.0 / q - 1.0).max(0.0)
        }
    }
}

/// α-fair utility family (Mo & Walrand): `U(x) = x^{1−α}/(1−α)` for α ≠ 1.
/// α → 1 recovers proportional fairness, α → ∞ max-min fairness. The shifted
/// argument `1 + x` keeps it finite at zero like the paper's choice.
#[derive(Debug, Clone, Copy)]
pub struct AlphaFair {
    pub alpha: f64,
}

impl AlphaFair {
    /// Creates an α-fair utility; `alpha` must be positive and ≠ 1 (use
    /// [`ProportionalFair`] for α = 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && (alpha - 1.0).abs() > 1e-9, "use ProportionalFair for α = 1");
        AlphaFair { alpha }
    }
}

impl Utility for AlphaFair {
    fn value(&self, x: f64) -> f64 {
        ((1.0 + x.max(0.0)).powf(1.0 - self.alpha) - 1.0) / (1.0 - self.alpha)
    }

    fn deriv(&self, x: f64) -> f64 {
        (1.0 + x.max(0.0)).powf(-self.alpha)
    }

    fn deriv_inv(&self, q: f64) -> f64 {
        if q <= 0.0 {
            f64::INFINITY
        } else {
            (q.powf(-1.0 / self.alpha) - 1.0).max(0.0)
        }
    }
}

/// Linear "utility" `U(x) = w · x` — **not** strictly concave; provided only
/// for throughput-maximization baselines and tests. `deriv_inv` is a step
/// function: 0 above the weight, +∞ below.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    pub weight: f64,
}

impl Utility for Linear {
    fn value(&self, x: f64) -> f64 {
        self.weight * x
    }

    fn deriv(&self, _x: f64) -> f64 {
        self.weight
    }

    fn deriv_inv(&self, q: f64) -> f64 {
        if q < self.weight {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_inverse<U: Utility>(u: &U, xs: &[f64]) {
        for &x in xs {
            let q = u.deriv(x);
            let back = u.deriv_inv(q);
            assert!((back - x).abs() < 1e-9, "x={x} back={back}");
        }
    }

    #[test]
    fn proportional_fair_inverse_round_trips() {
        check_inverse(&ProportionalFair, &[0.0, 0.5, 1.0, 10.0, 100.0]);
    }

    #[test]
    fn alpha_fair_inverse_round_trips() {
        check_inverse(&AlphaFair::new(2.0), &[0.0, 0.5, 1.0, 10.0, 100.0]);
        check_inverse(&AlphaFair::new(0.5), &[0.0, 0.5, 1.0, 10.0]);
    }

    #[test]
    fn proportional_fair_is_concave_increasing() {
        let u = ProportionalFair;
        let xs = [0.0, 1.0, 5.0, 20.0, 80.0];
        for w in xs.windows(2) {
            assert!(u.value(w[1]) > u.value(w[0]));
            assert!(u.deriv(w[1]) < u.deriv(w[0]));
        }
    }

    #[test]
    fn deriv_inv_handles_zero_price() {
        assert_eq!(ProportionalFair.deriv_inv(0.0), f64::INFINITY);
        assert_eq!(ProportionalFair.deriv_inv(-1.0), f64::INFINITY);
    }

    #[test]
    fn deriv_inv_clamps_high_prices_to_zero() {
        // U'(0) = 1 for proportional fairness: any q ≥ 1 maps to x = 0.
        assert_eq!(ProportionalFair.deriv_inv(2.0), 0.0);
        assert_eq!(AlphaFair::new(2.0).deriv_inv(1.5), 0.0);
    }

    #[test]
    fn alpha_2_matches_closed_form() {
        // α = 2: U'(x) = (1+x)^-2, so U'(1) = 0.25 and U'⁻¹(0.25) = 1.
        let u = AlphaFair::new(2.0);
        assert!((u.deriv(1.0) - 0.25).abs() < 1e-12);
        assert!((u.deriv_inv(0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ProportionalFair")]
    fn alpha_one_is_rejected() {
        AlphaFair::new(1.0);
    }

    #[test]
    fn linear_derivative_is_constant() {
        let u = Linear { weight: 0.3 };
        assert_eq!(u.deriv(0.0), 0.3);
        assert_eq!(u.deriv(100.0), 0.3);
        assert_eq!(u.deriv_inv(0.2), f64::INFINITY);
        assert_eq!(u.deriv_inv(0.4), 0.0);
    }
}
