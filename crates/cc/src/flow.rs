//! Source-side per-flow rate controller.
//!
//! This is the piece of the §4.3 controller that runs *inside one source
//! node*: it owns the flow's `x_r`/`x̄_r` iterates and consumes the route
//! prices `q_r` echoed in acknowledgements. The dual-variable machinery
//! lives in [`crate::distributed::LinkPriceState`] on every node; this type
//! is deliberately ignorant of the network — it sees only prices.

use crate::controller::CcConfig;
use crate::step_size::AdaptiveAlpha;
use crate::utility::Utility;

/// The rate state of one flow at its source.
#[derive(Debug, Clone)]
pub struct FlowController<U: Utility> {
    utility: U,
    config: CcConfig,
    /// Adaptive step size (§6.1 heuristic).
    alpha: AdaptiveAlpha,
    /// Standalone capacity clamp per route.
    caps: Vec<f64>,
    x: Vec<f64>,
    x_bar: Vec<f64>,
    /// Last known price per route (kept when an ACK reports no fresh one).
    q: Vec<f64>,
}

/// A summary of one controller update.
#[derive(Debug, Clone)]
pub struct FlowRates {
    pub per_route: Vec<f64>,
    pub total: f64,
}

impl<U: Utility> FlowController<U> {
    /// Creates the controller for a flow whose routes have standalone
    /// capacities `route_caps` (used to clamp iterates) and whose longest
    /// route has `max_hops` hops (drives the initial step size).
    pub fn new(utility: U, config: CcConfig, route_caps: Vec<f64>, max_hops: usize) -> Self {
        let n = route_caps.len();
        FlowController {
            utility,
            config,
            alpha: AdaptiveAlpha::new(max_hops, n),
            caps: route_caps,
            x: vec![0.0; n],
            x_bar: vec![0.0; n],
            q: vec![0.0; n],
        }
    }

    /// Current per-route rates, Mbps.
    pub fn rates(&self) -> &[f64] {
        &self.x
    }

    /// Current total rate, Mbps.
    pub fn total_rate(&self) -> f64 {
        self.x.iter().sum()
    }

    /// Current step size.
    pub fn alpha(&self) -> f64 {
        self.alpha.alpha()
    }

    /// The last route prices the controller believes (diagnostics).
    pub fn believed_prices(&self) -> &[f64] {
        &self.q
    }

    /// One slot: consume the latest prices (`None` = no update for that
    /// route, keep the previous value) and advance the proximal iteration.
    pub fn on_ack(&mut self, route_prices: &[Option<f64>]) -> FlowRates {
        assert_eq!(route_prices.len(), self.x.len());
        for (q, p) in self.q.iter_mut().zip(route_prices) {
            if let Some(p) = p {
                *q = *p;
            }
        }
        let alpha = self.alpha.alpha();
        let total: f64 = self.x.iter().sum();
        let u_prime = self.utility.deriv(total);
        // Rate-proportional gain boost; see MultipathController::step.
        let boost = (1.0 + total).min(self.config.boost_cap);
        for r in 0..self.x.len() {
            let drive = self.config.gain * boost * (u_prime - self.q[r]);
            let inner = (self.x_bar[r] + drive).max(0.0);
            let nx = ((1.0 - alpha) * self.x[r] + alpha * inner).min(self.caps[r]).max(0.0);
            self.x_bar[r] = (1.0 - alpha) * self.x_bar[r] + alpha * self.x[r];
            self.x[r] = nx;
        }
        let total: f64 = self.x.iter().sum();
        self.alpha.observe(total);
        FlowRates { per_route: self.x.clone(), total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::ProportionalFair;

    #[test]
    fn rates_start_at_zero_and_ramp() {
        let mut c = FlowController::new(ProportionalFair, CcConfig::default(), vec![10.0, 10.0], 2);
        assert_eq!(c.total_rate(), 0.0);
        let r = c.on_ack(&[Some(0.0), Some(0.0)]);
        assert!(r.total > 0.0);
    }

    #[test]
    fn converges_against_a_static_price() {
        // Fixed prices q = U'(x*) pin the equilibrium: with q = 0.1,
        // the unconstrained optimum is total x with 1/(1+x) = 0.1 → x = 9,
        // split across routes (each clamped at 6).
        let mut c = FlowController::new(ProportionalFair, CcConfig::default(), vec![6.0, 6.0], 2);
        for _ in 0..4000 {
            c.on_ack(&[Some(0.1), Some(0.1)]);
        }
        let total = c.total_rate();
        assert!((total - 9.0).abs() < 0.5, "total {total}");
    }

    #[test]
    fn missing_prices_keep_previous_value() {
        let mut c = FlowController::new(ProportionalFair, CcConfig::default(), vec![100.0], 1);
        for _ in 0..500 {
            c.on_ack(&[Some(2.0)]); // price above U'(0)=1 → rate stays 0
        }
        assert!(c.total_rate() < 0.2, "{}", c.total_rate());
        // ACKs stop carrying prices; the controller keeps using q = 2.
        for _ in 0..500 {
            c.on_ack(&[None]);
        }
        assert!(c.total_rate() < 0.2, "{}", c.total_rate());
    }

    #[test]
    fn rates_respect_route_caps() {
        let mut c = FlowController::new(ProportionalFair, CcConfig::default(), vec![3.0, 5.0], 2);
        for _ in 0..2000 {
            c.on_ack(&[Some(0.0), Some(0.0)]);
        }
        assert!(c.rates()[0] <= 3.0 + 1e-9);
        assert!(c.rates()[1] <= 5.0 + 1e-9);
    }

    #[test]
    fn higher_price_moves_traffic_to_the_cheaper_route() {
        let mut c = FlowController::new(ProportionalFair, CcConfig::default(), vec![50.0, 50.0], 2);
        for _ in 0..4000 {
            c.on_ack(&[Some(0.30), Some(0.05)]);
        }
        assert!(c.rates()[1] > c.rates()[0] + 1.0, "{:?}", c.rates());
    }
}
