//! Convergence-time measurement (§5.2.2).
//!
//! The paper reports the number of slots a scheme needs "to reach
//! steady-state ('steady' meaning that the throughput is within 1 % of the
//! final throughput)". This module applies that criterion to a trajectory of
//! per-slot rates.

/// The §5.2.2 criterion.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceCriterion {
    /// Relative tolerance around the final value (0.01 in the paper).
    pub tolerance: f64,
    /// How many trailing slots to average for the "final" value.
    pub final_window: usize,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        ConvergenceCriterion { tolerance: 0.01, final_window: 50 }
    }
}

/// Returns the first slot index from which the trajectory stays within
/// `tolerance` of its final value forever after, or `None` if the final
/// window itself is not steady.
pub fn slots_to_converge(trajectory: &[f64], criterion: ConvergenceCriterion) -> Option<usize> {
    if trajectory.is_empty() {
        return None;
    }
    let window = criterion.final_window.min(trajectory.len());
    let final_value: f64 =
        trajectory[trajectory.len() - window..].iter().sum::<f64>() / window as f64;
    let tol = criterion.tolerance * final_value.abs().max(f64::MIN_POSITIVE);
    // Walk backwards: find the last slot that violates the tolerance band.
    let mut first_steady = 0;
    for (i, &v) in trajectory.iter().enumerate().rev() {
        if (v - final_value).abs() > tol {
            first_steady = i + 1;
            break;
        }
    }
    (first_steady < trajectory.len()).then_some(first_steady)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_ramp_converges_at_the_band_entry() {
        // 0, 1, 2, ..., 99 then flat at 100 for 100 slots.
        let mut traj: Vec<f64> = (0..100).map(|i| i as f64).collect();
        traj.extend(std::iter::repeat_n(100.0, 100));
        let t = slots_to_converge(&traj, ConvergenceCriterion::default()).unwrap();
        // Final = 100 (trailing window is flat); band is ±1; slot 99 has
        // value 99 which is inside, slot 98 (98.0) is outside.
        assert_eq!(t, 99);
    }

    #[test]
    fn flat_trajectory_converges_immediately() {
        let traj = vec![5.0; 200];
        assert_eq!(slots_to_converge(&traj, ConvergenceCriterion::default()), Some(0));
    }

    #[test]
    fn oscillating_tail_never_converges() {
        let traj: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 10.0 } else { 20.0 }).collect();
        assert_eq!(slots_to_converge(&traj, ConvergenceCriterion::default()), None);
    }

    #[test]
    fn late_spike_delays_convergence() {
        let mut traj = vec![10.0; 200];
        traj[100] = 20.0;
        let t = slots_to_converge(&traj, ConvergenceCriterion::default()).unwrap();
        assert_eq!(t, 101);
    }

    #[test]
    fn empty_trajectory_is_none() {
        assert_eq!(slots_to_converge(&[], ConvergenceCriterion::default()), None);
    }

    #[test]
    fn zero_final_value_is_handled() {
        let traj = vec![0.0; 100];
        assert_eq!(slots_to_converge(&traj, ConvergenceCriterion::default()), Some(0));
    }
}
