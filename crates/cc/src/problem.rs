//! The congestion-control problem instance: flows, their routes, and the
//! precomputed link/route incidence structures the controllers iterate over.

use empower_model::{InterferenceMap, LinkId, Network, Path};

/// Index of a route within a [`CcProblem`].
pub type RouteRef = usize;

/// A flow: a source–destination pair that may employ several routes (§4.1).
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Routes available to this flow (`r ∈ f`), as indexes into
    /// [`CcProblem::routes`].
    pub routes: Vec<RouteRef>,
}

/// A fully-indexed problem instance.
///
/// All controllers share this structure; it precomputes for every link the
/// routes crossing it and the standalone capacity `R(P)` of every route,
/// used as a physically-motivated clamp on rate iterates.
#[derive(Debug, Clone)]
pub struct CcProblem {
    /// All routes, across flows.
    pub routes: Vec<Path>,
    /// Flow → route ownership.
    pub flows: Vec<FlowSpec>,
    /// `flow_of[r]` = the flow owning route `r`.
    pub flow_of: Vec<usize>,
    /// `routes_on_link[l]` = routes crossing link `l`.
    pub routes_on_link: Vec<Vec<RouteRef>>,
    /// `R(P)` per route — standalone intra-path capacity, Mbps.
    pub route_caps: Vec<f64>,
    /// Link costs `d_l` snapshot (1/Mbps).
    pub link_costs: Vec<f64>,
}

impl CcProblem {
    /// Builds the problem from per-flow route sets.
    ///
    /// # Panics
    /// Panics if a flow has no routes (callers must drop disconnected flows
    /// first) or a route has zero capacity.
    pub fn new(net: &Network, imap: &InterferenceMap, flow_routes: Vec<Vec<Path>>) -> Self {
        let mut routes = Vec::new();
        let mut flows = Vec::new();
        let mut flow_of = Vec::new();
        for (f, paths) in flow_routes.into_iter().enumerate() {
            assert!(!paths.is_empty(), "flow {f} has no routes");
            let mut refs = Vec::with_capacity(paths.len());
            for p in paths {
                refs.push(routes.len());
                flow_of.push(f);
                routes.push(p);
            }
            flows.push(FlowSpec { routes: refs });
        }
        let mut routes_on_link = vec![Vec::new(); net.link_count()];
        for (r, path) in routes.iter().enumerate() {
            for &l in path.links() {
                routes_on_link[l.index()].push(r);
            }
        }
        let route_caps: Vec<f64> = routes.iter().map(|p| p.capacity(net, imap)).collect();
        for (r, &cap) in route_caps.iter().enumerate() {
            assert!(cap > 0.0, "route {r} has zero capacity: {}", routes[r].render(net));
        }
        let link_costs = net.links().iter().map(|l| l.cost()).collect();
        CcProblem { routes, flows, flow_of, routes_on_link, route_caps, link_costs }
    }

    /// Number of routes.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Traffic rate on each link induced by route rates `x`.
    pub fn link_rates(&self, x: &[f64]) -> Vec<f64> {
        let mut rates = vec![0.0; self.routes_on_link.len()];
        for (r, path) in self.routes.iter().enumerate() {
            for &l in path.links() {
                rates[l.index()] += x[r];
            }
        }
        rates
    }

    /// Aggregate flow rates `x_f = Σ_{r∈f} x_r`.
    pub fn flow_rates(&self, x: &[f64]) -> Vec<f64> {
        let mut rates = vec![0.0; self.flows.len()];
        for (r, &f) in self.flow_of.iter().enumerate() {
            rates[f] += x[r];
        }
        rates
    }

    /// Airtime demand `y_l = Σ_{l'∈I_l} d_{l'} x_{l'}` for every link — the
    /// left-hand side of constraint (2) — given per-link rates.
    pub fn domain_airtimes(&self, imap: &InterferenceMap, link_rates: &[f64]) -> Vec<f64> {
        (0..link_rates.len())
            .map(|i| {
                imap.domain(LinkId(i as u32))
                    .iter()
                    .map(|&l| self.link_costs[l.index()] * link_rates[l.index()])
                    .sum()
            })
            .collect()
    }

    /// True if rates `x` satisfy constraint (3) with margin `delta`.
    pub fn is_feasible(&self, imap: &InterferenceMap, x: &[f64], delta: f64) -> bool {
        let rates = self.link_rates(x);
        self.domain_airtimes(imap, &rates).iter().all(|&y| y <= 1.0 - delta + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    fn problem() -> (CcProblem, InterferenceMap) {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        (CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]), imap)
    }

    #[test]
    fn incidence_structures_are_consistent() {
        let (p, _) = problem();
        assert_eq!(p.route_count(), 2);
        assert_eq!(p.flow_count(), 1);
        assert_eq!(p.flow_of, vec![0, 0]);
        // wifi_bc is on both routes.
        let shared = p.routes_on_link.iter().filter(|rs| rs.len() == 2).count();
        assert_eq!(shared, 1);
    }

    #[test]
    fn route_caps_match_lemma1() {
        let (p, _) = problem();
        assert!((p.route_caps[0] - 10.0).abs() < 1e-9);
        assert!((p.route_caps[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_matches_paper_example() {
        let (p, imap) = problem();
        // 10 on the hybrid route + 6.66 on the WiFi route: exactly feasible.
        assert!(p.is_feasible(&imap, &[10.0, 20.0 / 3.0], 0.0));
        // A little more WiFi traffic is infeasible.
        assert!(!p.is_feasible(&imap, &[10.0, 7.5], 0.0));
        // With a margin, the feasible set shrinks.
        assert!(!p.is_feasible(&imap, &[10.0, 20.0 / 3.0], 0.1));
    }

    #[test]
    fn flow_rates_aggregate_routes() {
        let (p, _) = problem();
        assert_eq!(p.flow_rates(&[10.0, 6.0]), vec![16.0]);
    }

    #[test]
    #[should_panic(expected = "no routes")]
    fn empty_flow_is_rejected() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        CcProblem::new(&s.net, &imap, vec![vec![]]);
    }
}
