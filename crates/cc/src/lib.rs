#![forbid(unsafe_code)]
//! # empower-cc
//!
//! The congestion-control algorithms of EMPoWER (§4 of the paper).
//!
//! Given routes selected by `empower-routing`, the controller decides the
//! rate `x_r` injected on every route so as to maximize aggregate utility
//! `Σ_f U_f(Σ_{r∈f} x_r)` subject to the per-interference-domain airtime
//! constraint
//!
//! ```text
//! Σ_{l'∈I_l} d_{l'} Σ_{r: l'∈r} x_r ≤ 1 − δ     ∀ l ∈ L .     (2)/(3)
//! ```
//!
//! Two controllers are provided:
//!
//! * [`SinglePathController`] — the dual controller of Eqs. (7)–(10), exact
//!   when every flow uses one route;
//! * [`MultipathController`] — the proximal-optimization variant of §4.3
//!   (Eq. (11)), which handles flows with several routes despite the
//!   objective not being strictly concave in `x`.
//!
//! Both are expressed as *slotted* updates — one step per acknowledgement
//! interval (100 ms in the implementation) — and both use only quantities a
//! node can measure or overhear locally: per-link airtime demands, dual
//! prices `γ_l` broadcast per technology, and route prices `q_r` accumulated
//! in the layer-2.5 packet header and echoed by the destination.

pub mod controller;
pub mod convergence;
pub mod distributed;
pub mod flow;
pub mod problem;
pub mod step_size;
pub mod utility;

pub use controller::{CcConfig, ControllerKind, MultipathController, SinglePathController};
pub use convergence::{slots_to_converge, ConvergenceCriterion};
pub use distributed::{BroadcastPlan, LinkPriceState, PriceBroadcast, RoutePriceAccumulator};
pub use flow::{FlowController, FlowRates};
pub use problem::{CcProblem, FlowSpec, RouteRef};
pub use step_size::AdaptiveAlpha;
pub use utility::{AlphaFair, Linear, ProportionalFair, Utility};
