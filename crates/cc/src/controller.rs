//! The slotted congestion controllers of §4.2 (single path) and §4.3
//! (multipath, proximal optimization).
//!
//! Per slot `t` (one acknowledgement interval), with step size `α`:
//!
//! ```text
//! y_l[t]   = Σ_{l'∈I_l} d_{l'} Σ_{s: l'∈s} x_s[t]                     (7)
//! γ_l[t+1] = [γ_l[t] + α (y_l[t] − (1 − δ))]⁺                        (8)
//! q_r[t]   = Σ_{l∈r} d_l Σ_{i∈I_l} γ_i[t]                             (9)
//! ```
//!
//! then the rate update — single path:
//!
//! ```text
//! x_r[t+1] = U'⁻¹_r (q_r[t])                                          (10)
//! ```
//!
//! or multipath (proximal, §4.3):
//!
//! ```text
//! x_r[t+1] = (1−α) x_r[t] + α [ x̄_r[t] + U'_f(Σ_{h∈f} x_h[t]) − q_r[t] ]⁺
//! x̄_r[t+1] = (1−α) x̄_r[t] + α x_r[t]
//! ```
//!
//! Iterates are clamped to each route's standalone capacity `R(P)` — a
//! source cannot usefully inject more than its path can ever carry — which
//! bounds the transient of the single-path controller whose Eq. (10) jumps
//! to `U'⁻¹(0) = ∞` while prices are still zero.

use empower_model::InterferenceMap;

use crate::problem::CcProblem;
use crate::utility::Utility;

/// Which §4 controller to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    SinglePath,
    Multipath,
}

/// Controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// Fixed step size `α` (the paper uses 0.02 as the base; see
    /// [`crate::step_size::AdaptiveAlpha`] for the §6.1 heuristic).
    pub alpha: f64,
    /// Constraint margin `δ ∈ [0, 1]` of Eq. (3).
    pub delta: f64,
    /// Cap on the rate-proportional gain boost `min(1 + x_f, boost_cap)`.
    ///
    /// The boost cancels the 1/(1+x) decay of the proportional-fair
    /// derivative so ramps stay fast at high rates, but it also multiplies
    /// the loop gain; with delayed/noisy prices (the packet simulator, real
    /// hardware) large boosts oscillate. The fluid controller tolerates the
    /// default; the simulator uses a smaller cap.
    pub boost_cap: f64,
    /// Unit-conversion gain on the multipath drive term `U' − q`.
    ///
    /// The paper's `α = 0.02` yields ~90-slot convergence in its
    /// implementation, which implies its rate iterates move on a coarser
    /// unit scale than 1 Mbps (its brute-force sweeps step in 0.25 MB/s).
    /// Scaling the drive term by `gain` changes *only* the transient speed:
    /// the fixed point still satisfies `U'_f = q_r` exactly. The default is
    /// calibrated (together with `boost_cap`) so typical flows converge in the order of 10² slots,
    /// matching §5.2.2.
    pub gain: f64,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig { alpha: 0.02, delta: 0.0, gain: 25.0, boost_cap: 8.0 }
    }
}

/// Shared dual-price machinery: Eqs. (7)–(9).
#[derive(Debug, Clone)]
struct PriceState {
    /// Dual variables `γ_l`.
    gamma: Vec<f64>,
    /// Cumulative γ updates performed (links × slots).
    updates: u64,
    /// Cumulative count of (link, slot) pairs whose airtime demand exceeded
    /// the constraint margin, i.e. `y_l > 1 − δ` (Eq. (8) pushing γ up).
    violations: u64,
}

impl PriceState {
    fn new(link_count: usize) -> Self {
        PriceState { gamma: vec![0.0; link_count], updates: 0, violations: 0 }
    }

    /// One price slot: computes `y_l` from current rates, updates `γ`, and
    /// returns the route prices `q_r`. `external` carries measured traffic
    /// from non-EMPoWER nodes per link (§4.3): it enters the airtime demand
    /// like any other traffic, so the controller converges to the optimal
    /// allocation *under that load* without affecting it.
    fn step(
        &mut self,
        problem: &CcProblem,
        imap: &InterferenceMap,
        x: &[f64],
        external: Option<&[f64]>,
        alpha: f64,
        delta: f64,
    ) -> Vec<f64> {
        let mut link_rates = problem.link_rates(x);
        if let Some(ext) = external {
            for (r, e) in link_rates.iter_mut().zip(ext) {
                *r += e;
            }
        }
        let y = problem.domain_airtimes(imap, &link_rates);
        for (g, &yl) in self.gamma.iter_mut().zip(&y) {
            *g = (*g + alpha * (yl - (1.0 - delta))).max(0.0);
            self.updates += 1;
            if yl > 1.0 - delta {
                self.violations += 1;
            }
        }
        // Σ_{i∈I_l} γ_i per link, then q_r = Σ_{l∈r} d_l · that sum.
        let domain_gamma: Vec<f64> = (0..self.gamma.len())
            .map(|i| {
                imap.domain(empower_model::LinkId(i as u32))
                    .iter()
                    .map(|&l| self.gamma[l.index()])
                    .sum()
            })
            .collect();
        problem
            .routes
            .iter()
            .map(|path| {
                path.links()
                    .iter()
                    .map(|&l| problem.link_costs[l.index()] * domain_gamma[l.index()])
                    .sum()
            })
            .collect()
    }
}

/// The single-path controller (§4.2). Valid when every flow has exactly one
/// route; enforced at construction.
#[derive(Debug, Clone)]
pub struct SinglePathController<U: Utility> {
    config: CcConfig,
    utility: U,
    prices: PriceState,
    x: Vec<f64>,
    /// Measured non-EMPoWER traffic per link, Mbps (§4.3).
    external: Option<Vec<f64>>,
}

impl<U: Utility> SinglePathController<U> {
    /// Creates the controller with rates starting at zero.
    ///
    /// # Panics
    /// Panics if some flow has more than one route.
    pub fn new(problem: &CcProblem, utility: U, config: CcConfig) -> Self {
        assert!(
            problem.flows.iter().all(|f| f.routes.len() == 1),
            "single-path controller requires exactly one route per flow"
        );
        SinglePathController {
            config,
            utility,
            prices: PriceState::new(problem.link_costs.len()),
            x: vec![0.0; problem.route_count()],
            external: None,
        }
    }

    /// Sets the measured external (non-EMPoWER) traffic per link, Mbps.
    pub fn set_external(&mut self, rates: Vec<f64>) {
        self.external = Some(rates);
    }

    /// Current route rates (Mbps).
    pub fn rates(&self) -> &[f64] {
        &self.x
    }

    /// Current dual prices `γ_l`.
    pub fn prices(&self) -> &[f64] {
        &self.prices.gamma
    }

    /// Cumulative γ updates performed so far (links × slots).
    pub fn price_updates(&self) -> u64 {
        self.prices.updates
    }

    /// Cumulative (link, slot) pairs where `y_l > 1 − δ`.
    pub fn margin_violations(&self) -> u64 {
        self.prices.violations
    }

    /// Advances one slot; returns the new rates.
    pub fn step(&mut self, problem: &CcProblem, imap: &InterferenceMap) -> &[f64] {
        let q = self.prices.step(
            problem,
            imap,
            &self.x,
            self.external.as_deref(),
            self.config.alpha,
            self.config.delta,
        );
        for (r, qr) in q.into_iter().enumerate() {
            self.x[r] = self.utility.deriv_inv(qr).min(problem.route_caps[r]);
        }
        &self.x
    }
}

/// The multipath proximal controller (§4.3).
#[derive(Debug, Clone)]
pub struct MultipathController<U: Utility> {
    config: CcConfig,
    utility: U,
    prices: PriceState,
    x: Vec<f64>,
    /// Proximal auxiliary variable `x̄`.
    x_bar: Vec<f64>,
    /// Measured non-EMPoWER traffic per link, Mbps (§4.3).
    external: Option<Vec<f64>>,
}

impl<U: Utility> MultipathController<U> {
    /// Creates the controller with rates starting at zero.
    pub fn new(problem: &CcProblem, utility: U, config: CcConfig) -> Self {
        MultipathController {
            config,
            utility,
            prices: PriceState::new(problem.link_costs.len()),
            x: vec![0.0; problem.route_count()],
            x_bar: vec![0.0; problem.route_count()],
            external: None,
        }
    }

    /// Sets the measured external (non-EMPoWER) traffic per link, Mbps
    /// (§4.3). The controller then converges to the utility optimum of the
    /// *residual* capacity region, leaving the external load untouched.
    pub fn set_external(&mut self, rates: Vec<f64>) {
        self.external = Some(rates);
    }

    /// Current route rates (Mbps).
    pub fn rates(&self) -> &[f64] {
        &self.x
    }

    /// Current dual prices `γ_l`.
    pub fn prices(&self) -> &[f64] {
        &self.prices.gamma
    }

    /// Cumulative γ updates performed so far (links × slots).
    pub fn price_updates(&self) -> u64 {
        self.prices.updates
    }

    /// Cumulative (link, slot) pairs where `y_l > 1 − δ`.
    pub fn margin_violations(&self) -> u64 {
        self.prices.violations
    }

    /// Overrides the step size (used by the adaptive-α heuristic).
    pub fn set_alpha(&mut self, alpha: f64) {
        self.config.alpha = alpha;
    }

    /// Current step size.
    pub fn alpha(&self) -> f64 {
        self.config.alpha
    }

    /// Advances one slot; returns the new rates.
    #[allow(clippy::needless_range_loop)] // r indexes four parallel arrays
    pub fn step(&mut self, problem: &CcProblem, imap: &InterferenceMap) -> &[f64] {
        let alpha = self.config.alpha;
        let q = self.prices.step(
            problem,
            imap,
            &self.x,
            self.external.as_deref(),
            alpha,
            self.config.delta,
        );
        let flow_rates = problem.flow_rates(&self.x);
        for r in 0..problem.route_count() {
            let f = problem.flow_of[r];
            // The gain scales with the operating point: near the optimum
            // `U'` shrinks like 1/(1+x), so a fixed gain would crawl at
            // high rates. `gain·(1+x_f)` keeps the relative step roughly
            // constant without moving the fixed point (which still requires
            // U' = q exactly).
            let boost = (1.0 + flow_rates[f]).min(self.config.boost_cap);
            let drive = self.config.gain * boost * (self.utility.deriv(flow_rates[f]) - q[r]);
            let inner = (self.x_bar[r] + drive).max(0.0);
            let new_x =
                ((1.0 - alpha) * self.x[r] + alpha * inner).min(problem.route_caps[r]).max(0.0);
            self.x_bar[r] = (1.0 - alpha) * self.x_bar[r] + alpha * self.x[r];
            self.x[r] = new_x;
        }
        &self.x
    }

    /// Runs `slots` steps and returns the trajectory of per-flow total
    /// rates, one vector per slot.
    pub fn run_trajectory(
        &mut self,
        problem: &CcProblem,
        imap: &InterferenceMap,
        slots: usize,
    ) -> Vec<Vec<f64>> {
        (0..slots)
            .map(|_| {
                self.step(problem, imap);
                problem.flow_rates(&self.x)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::ProportionalFair;
    use empower_model::topology::{fig1_scenario, fig3_scenario};
    use empower_model::{InterferenceModel, Path, SharedMedium};

    fn fig1_problem() -> (CcProblem, InterferenceMap) {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        (CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]), imap)
    }

    #[test]
    fn multipath_converges_to_fig1_optimum() {
        // Max log(1+x1+x2) subject to the airtime constraints is attained at
        // the corner x = (10, 20/3): total 16.67 Mbps.
        let (p, imap) = fig1_problem();
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        for _ in 0..3000 {
            c.step(&p, &imap);
        }
        let total: f64 = c.rates().iter().sum();
        assert!((total - (10.0 + 20.0 / 3.0)).abs() < 0.3, "total {total}");
        assert!(p.is_feasible(&imap, c.rates(), -0.02), "slightly infeasible is tolerable");
    }

    #[test]
    fn multipath_respects_constraint_margin() {
        let (p, imap) = fig1_problem();
        let mut c = MultipathController::new(
            &p,
            ProportionalFair,
            CcConfig { delta: 0.2, ..Default::default() },
        );
        for _ in 0..8000 {
            c.step(&p, &imap);
        }
        // With δ = 0.2 the airtime budget shrinks to 0.8 per domain.
        let rates = p.link_rates(c.rates());
        let worst = p.domain_airtimes(&imap, &rates).into_iter().fold(0.0, f64::max);
        assert!(worst <= 0.82, "worst domain airtime {worst}");
        let total: f64 = c.rates().iter().sum();
        assert!(total > 10.0, "still uses both mediums: {total}");
    }

    #[test]
    fn single_path_matches_kelly_optimum_on_one_route() {
        // One flow on the hybrid route alone: optimum is x = R(P) = 10.
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let p = CcProblem::new(&s.net, &imap, vec![vec![route1]]);
        let mut c = SinglePathController::new(&p, ProportionalFair, CcConfig::default());
        for _ in 0..5000 {
            c.step(&p, &imap);
        }
        assert!((c.rates()[0] - 10.0).abs() < 0.3, "x = {}", c.rates()[0]);
    }

    #[test]
    #[should_panic(expected = "one route per flow")]
    fn single_path_controller_rejects_multiroute_flows() {
        let (p, _) = fig1_problem();
        SinglePathController::new(&p, ProportionalFair, CcConfig::default());
    }

    #[test]
    fn two_flows_share_a_medium_fairly() {
        // Two single-route flows crossing the same WiFi domain. With equal
        // utilities the proportional-fair split is symmetric.
        let s = fig3_scenario();
        let imap = SharedMedium.build_map(&s.net);
        // Flow A: s→u on WIFI1 (20); Flow B: s→d direct on WIFI1 (10).
        let pa = Path::new(&s.net, vec![s.route1[0]]).unwrap();
        let pb = Path::new(&s.net, s.route3.to_vec()).unwrap();
        let p = CcProblem::new(&s.net, &imap, vec![vec![pa], vec![pb]]);
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        for _ in 0..6000 {
            c.step(&p, &imap);
        }
        let x = c.rates();
        // Proportional fairness on a shared domain: maximize
        // log(1+x1)+log(1+x2) s.t. x1/20 + x2/10 ≤ 1 → x1 = 10.5, x2 = 4.75.
        assert!((x[0] - 10.5).abs() < 0.4, "x1 = {}", x[0]);
        assert!((x[1] - 4.75).abs() < 0.4, "x2 = {}", x[1]);
    }

    #[test]
    fn rates_never_exceed_route_capacity() {
        let (p, imap) = fig1_problem();
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        for _ in 0..3000 {
            c.step(&p, &imap);
            for (r, &x) in c.rates().iter().enumerate() {
                assert!(x <= p.route_caps[r] + 1e-9);
                assert!(x >= 0.0);
            }
        }
    }

    #[test]
    fn trajectory_has_requested_length() {
        let (p, imap) = fig1_problem();
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        let traj = c.run_trajectory(&p, &imap, 50);
        assert_eq!(traj.len(), 50);
        assert_eq!(traj[0].len(), p.flow_count());
        // Rates ramp up from zero.
        assert!(traj[0][0] < traj[49][0]);
    }

    #[test]
    fn idle_network_keeps_prices_at_zero() {
        let (p, imap) = fig1_problem();
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        c.step(&p, &imap);
        // After one step from x = 0: y = 0 < 1, so γ stays 0.
        assert!(c.prices().iter().all(|&g| g == 0.0));
    }
}

#[cfg(test)]
mod external_tests {
    use super::*;
    use crate::utility::ProportionalFair;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, Path, SharedMedium};

    /// §4.3: "if one external node saturates WiFi, EMPoWER converges to an
    /// allocation that never uses WiFi."
    #[test]
    fn saturating_external_wifi_pushes_empower_onto_plc() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let p = CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]);
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        // External node saturates the 15 Mbps WiFi a→b link.
        let mut ext = vec![0.0; s.net.link_count()];
        ext[s.wifi_ab.index()] = 15.0;
        c.set_external(ext);
        for _ in 0..8000 {
            c.step(&p, &imap);
        }
        // Both EMPoWER routes cross WiFi (route 1's second hop does too),
        // so nothing is fully WiFi-free here; but route 2 (WiFi-WiFi) must
        // be completely abandoned and route 1 squeezed to the residual.
        assert!(c.rates()[1] < 0.3, "WiFi-WiFi route should drain: {:?}", c.rates());
        assert!(c.rates()[0] < 1.0, "no WiFi airtime is left for route 1: {:?}", c.rates());
    }

    /// §4.3: external interference consumes part of the region; the
    /// controller fills exactly the remainder.
    #[test]
    fn partial_external_load_leaves_the_residual() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let route2 = Path::new(&s.net, vec![s.wifi_ab, s.wifi_bc]).unwrap();
        let p = CcProblem::new(&s.net, &imap, vec![vec![route1, route2]]);
        let mut c = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        // External load eats 1/3 of the WiFi airtime (5 Mbps on the 15 Mbps
        // link). Residual optimum: x1 = 10 (PLC-bound), WiFi budget
        // 2/3 − x1/30 = 1/3 → x2 = (1/3)/(1/15 + 1/30) = 10/3.
        let mut ext = vec![0.0; s.net.link_count()];
        ext[s.wifi_ab.index()] = 5.0;
        c.set_external(ext);
        for _ in 0..8000 {
            c.step(&p, &imap);
        }
        assert!((c.rates()[0] - 10.0).abs() < 0.3, "{:?}", c.rates());
        assert!((c.rates()[1] - 10.0 / 3.0).abs() < 0.3, "{:?}", c.rates());
    }

    /// With no external load, `set_external(zeros)` changes nothing.
    #[test]
    fn zero_external_load_is_identity() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let route1 = Path::new(&s.net, vec![s.plc_ab, s.wifi_bc]).unwrap();
        let p = CcProblem::new(&s.net, &imap, vec![vec![route1]]);
        let mut a = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        let mut b = MultipathController::new(&p, ProportionalFair, CcConfig::default());
        b.set_external(vec![0.0; s.net.link_count()]);
        for _ in 0..2000 {
            a.step(&p, &imap);
            b.step(&p, &imap);
        }
        assert_eq!(a.rates(), b.rates());
    }
}
