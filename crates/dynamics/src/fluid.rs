//! The fluid-model equivalent of the packet-level driver.
//!
//! Instead of injecting events into a virtual clock, the timeline is cut
//! at every fault instant and the §4.3 equilibrium is solved per segment
//! on the mutated network — the quasi-static view of the same scenario.
//! Useful as a fast predictor of where the packet run should settle
//! between faults, and for scenarios far too long to simulate
//! packet-by-packet.

use empower_core::RunConfig;
use empower_model::{InterferenceMap, Network};
use empower_telemetry::{impl_to_json_struct, Telemetry};

use crate::driver::build_topology;
use crate::injector::{self, NetMutator};
use crate::scenario::{Scenario, ScenarioError};

/// The equilibrium over one constant-topology stretch of the scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FluidSegment {
    /// Segment start, seconds.
    pub from_secs: f64,
    /// Segment end, seconds.
    pub to_secs: f64,
    /// Equilibrium rate per scenario flow, Mb/s (0 = disconnected).
    pub flow_rates: Vec<f64>,
    /// Aggregate proportional-fair utility `Σ log(1 + x_f)`.
    pub utility: f64,
}

impl_to_json_struct!(FluidSegment { from_secs, to_secs, flow_rates, utility });

/// Cuts the scenario at its fault instants and solves each segment's
/// equilibrium on the mutated network.
///
/// # Errors
/// [`ScenarioError`] for events addressing links or nodes the topology
/// does not have.
pub fn fluid_timeline(
    scenario: &Scenario,
    tele: &Telemetry,
) -> Result<Vec<FluidSegment>, ScenarioError> {
    let (net, imap) = build_topology(scenario);
    fluid_timeline_on(scenario, &net, &imap, tele)
}

/// [`fluid_timeline`] on an explicit network.
///
/// # Errors
/// See [`fluid_timeline`].
pub fn fluid_timeline_on(
    scenario: &Scenario,
    net: &Network,
    imap: &InterferenceMap,
    tele: &Telemetry,
) -> Result<Vec<FluidSegment>, ScenarioError> {
    scenario.validate()?;
    let faults = injector::compile(scenario, net, imap)?;
    let config =
        RunConfig::new(scenario.run.scheme).delta(scenario.run.delta).telemetry(tele.clone());
    let flows: Vec<_> = scenario
        .flows
        .iter()
        .map(|f| (empower_model::NodeId(f.src), empower_model::NodeId(f.dst)))
        .collect();

    // Segment boundaries: scenario start, every distinct fault time, the
    // horizon.
    let mut cuts: Vec<f64> = vec![0.0];
    cuts.extend(faults.iter().map(|f| f.at));
    cuts.push(scenario.run.horizon_secs);
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();

    let mut current = net.clone();
    let mut mutator = NetMutator::new(&current);
    let mut applied = 0usize;
    let mut out = Vec::with_capacity(cuts.len().saturating_sub(1));
    for w in cuts.windows(2) {
        let (from, to) = (w[0], w[1]);
        // Apply every fault at or before the segment start.
        while applied < faults.len() && faults[applied].at <= from {
            mutator.apply(&mut current, faults[applied].action);
            applied += 1;
        }
        if to <= from {
            continue;
        }
        let eq = config
            .evaluate_equilibrium(&current, imap, &flows)
            // empower-lint: allow(D005) — the RunConfig built above leaves
            // strict connectivity off, which is evaluate_equilibrium's
            // only error.
            .expect("strict connectivity is off; evaluation cannot fail");
        out.push(FluidSegment {
            from_secs: from,
            to_secs: to,
            flow_rates: eq.flow_rates,
            utility: eq.utility,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        FlowSpec, PatternSpec, Perturbation, RunSpec, Scenario, TimedPerturbation, TopologyKind,
        TopologySpec,
    };
    use empower_core::Scheme;

    fn drop_and_restore() -> Scenario {
        Scenario {
            name: "fluid".into(),
            topology: TopologySpec { kind: TopologyKind::Fig1, seed: 1 },
            run: RunSpec {
                scheme: Scheme::Empower,
                seed: 1,
                horizon_secs: 90.0,
                poll_secs: 0.5,
                delta: 0.0,
                recovery_fraction: 0.9,
            },
            flows: vec![FlowSpec {
                src: 0,
                dst: 2,
                pattern: PatternSpec::Saturated { start: 0.0, stop: 90.0 },
            }],
            events: vec![
                TimedPerturbation {
                    at: 30.0,
                    what: Perturbation::LinkDown { link: 2, both: true },
                },
                TimedPerturbation {
                    at: 60.0,
                    what: Perturbation::LinkUp { link: 2, capacity_mbps: None, both: true },
                },
            ],
            generators: vec![],
        }
    }

    #[test]
    fn segments_follow_the_fault_timeline() {
        let segs = fluid_timeline(&drop_and_restore(), &Telemetry::disabled()).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!((segs[0].from_secs, segs[0].to_secs), (0.0, 30.0));
        assert_eq!((segs[1].from_secs, segs[1].to_secs), (30.0, 60.0));
        assert_eq!((segs[2].from_secs, segs[2].to_secs), (60.0, 90.0));
        // Losing the gateway→extender WiFi link hurts the equilibrium,
        // restoring it brings the rate back exactly.
        assert!(segs[1].flow_rates[0] < segs[0].flow_rates[0] - 1.0);
        assert!((segs[2].flow_rates[0] - segs[0].flow_rates[0]).abs() < 1e-6);
    }
}
