//! The declarative scenario model: a versioned, serializable timeline of
//! network perturbations plus seeded stochastic generators.
//!
//! A scenario is data, not code — it can be hand-written as TOML (or
//! JSON), checked into `examples/`, diffed, and replayed bit-identically.
//! [`crate::injector::compile`] turns it into concrete capacity events on
//! a given network; [`crate::driver::run_scenario`] executes it against
//! the packet-level engine and [`crate::fluid::fluid_timeline`] against
//! the fluid evaluator.

use empower_core::Scheme;
use empower_telemetry::Json;

use crate::toml;

/// The scenario schema version this crate reads and writes. Parsing
/// rejects files with a different major version instead of misreading
/// them.
pub const SCHEMA_VERSION: u64 = 1;

/// A parse/validation error with a dotted path to the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Dotted path of the field (`events[2].link`), empty for
    /// document-level errors.
    pub path: String,
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "scenario: {}", self.message)
        } else {
            write!(f, "scenario: {}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

use crate::schema::{arr_of, join, opt_bool, opt_f64, opt_u64, req_f64, req_str, req_u64, serr};

/// Which base topology the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The paper's Fig. 1 three-node gateway/extender/client example.
    Fig1,
    /// A random residential-class topology (§5.2).
    Residential,
    /// A random enterprise-class topology (§5.2).
    Enterprise,
    /// The simulated 22-node testbed floor (§6).
    Testbed,
}

impl TopologyKind {
    /// Stable lowercase label used in scenario files.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Fig1 => "fig1",
            TopologyKind::Residential => "residential",
            TopologyKind::Enterprise => "enterprise",
            TopologyKind::Testbed => "testbed",
        }
    }

    /// Parses a [`TopologyKind::label`].
    pub fn from_label(s: &str) -> Option<TopologyKind> {
        match s {
            "fig1" => Some(TopologyKind::Fig1),
            "residential" => Some(TopologyKind::Residential),
            "enterprise" => Some(TopologyKind::Enterprise),
            "testbed" => Some(TopologyKind::Testbed),
            _ => None,
        }
    }
}

/// `[topology]`: the network the scenario perturbs.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    pub kind: TopologyKind,
    /// Seed for the random topology classes (ignored by `fig1`).
    pub seed: u64,
}

/// `[run]`: how the scenario is executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Scheme under test (paper label, e.g. `"EMPoWER"` or `"SP"`).
    pub scheme: Scheme,
    /// Engine / generator seed.
    pub seed: u64,
    /// Simulated duration, seconds.
    pub horizon_secs: f64,
    /// Route-monitor polling period, seconds (§3.2's infrequent check).
    pub poll_secs: f64,
    /// Constraint margin δ (§4.3).
    pub delta: f64,
    /// Fraction of the pre-fault baseline throughput that counts as
    /// "reconverged" (see `crate::resilience`).
    pub recovery_fraction: f64,
}

/// `[[flows]]`: one traffic source.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    pub src: u32,
    pub dst: u32,
    pub pattern: PatternSpec,
}

/// The traffic pattern of a scenario flow.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternSpec {
    /// Backlogged UDP between `start` and `stop`.
    Saturated { start: f64, stop: f64 },
    /// One file download of `size_bytes` starting at `start`.
    File { start: f64, size_bytes: u64 },
    /// TCP between `start` and `stop` (`size_bytes = 0` = unbounded).
    Tcp { start: f64, stop: f64, size_bytes: u64 },
}

/// `[[events]]`: one scripted perturbation at an absolute time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedPerturbation {
    /// When the perturbation fires, seconds.
    pub at: f64,
    pub what: Perturbation,
}

/// The perturbation vocabulary.
///
/// Link-addressed variants take a directed link id; with `both = true`
/// (the default in the serialized form) the reverse twin changes too,
/// which is what physical-medium degradation does.
#[derive(Debug, Clone, PartialEq)]
pub enum Perturbation {
    /// Step a link to an absolute capacity.
    Capacity { link: u32, capacity_mbps: f64, both: bool },
    /// Take a link down (capacity 0).
    LinkDown { link: u32, both: bool },
    /// Bring a link back up, at `capacity_mbps` or (None) whatever it had
    /// when the scenario started.
    LinkUp { link: u32, capacity_mbps: Option<f64>, both: bool },
    /// Crash a node: all adjacent links go down.
    NodeDown { node: u32 },
    /// Recover a crashed node: adjacent links return at pre-crash
    /// capacity.
    NodeUp { node: u32 },
    /// A PLC noise burst: every PLC link in the interference domain of
    /// `domain_of` (or *all* PLC links if None) is scaled by `factor` for
    /// `duration_secs`, then restored. Models the §2 electrical-appliance
    /// interference.
    PlcNoise { factor: f64, duration_secs: f64, domain_of: Option<u32> },
    /// An external WiFi interference window: like [`Perturbation::PlcNoise`]
    /// but for WiFi links, optionally restricted to one channel (1 or 2).
    WifiJam { factor: f64, duration_secs: f64, channel: Option<u8>, domain_of: Option<u32> },
    /// Linear capacity drift from the current value to `to_mbps` over
    /// `over_secs`, discretized into `steps` equal steps.
    Drift { link: u32, to_mbps: f64, over_secs: f64, steps: u32, both: bool },
}

impl Perturbation {
    /// Stable lowercase tag used in the serialized `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Perturbation::Capacity { .. } => "capacity",
            Perturbation::LinkDown { .. } => "link_down",
            Perturbation::LinkUp { .. } => "link_up",
            Perturbation::NodeDown { .. } => "node_down",
            Perturbation::NodeUp { .. } => "node_up",
            Perturbation::PlcNoise { .. } => "plc_noise",
            Perturbation::WifiJam { .. } => "wifi_jam",
            Perturbation::Drift { .. } => "drift",
        }
    }
}

/// `[[generators]]`: a seeded stochastic perturbation source, expanded
/// deterministically at compile time (same seed → same event list).
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorSpec {
    /// Markov on/off link churn: exponential up-times of mean
    /// `mean_up_secs`, exponential outages of mean `mean_down_secs`.
    MarkovOnOff {
        link: u32,
        mean_up_secs: f64,
        mean_down_secs: f64,
        from: f64,
        until: Option<f64>,
        both: bool,
    },
    /// Gilbert–Elliott capacity flapping: each `step_secs` the link moves
    /// between a good state (nominal capacity) and a bad state (capacity ×
    /// `bad_factor`) with transition probabilities `p_bad` (good → bad) and
    /// `p_good` (bad → good).
    GilbertElliott {
        link: u32,
        step_secs: f64,
        p_bad: f64,
        p_good: f64,
        bad_factor: f64,
        from: f64,
        until: Option<f64>,
        both: bool,
    },
}

impl GeneratorSpec {
    /// Stable lowercase tag used in the serialized `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            GeneratorSpec::MarkovOnOff { .. } => "markov_onoff",
            GeneratorSpec::GilbertElliott { .. } => "gilbert_elliott",
        }
    }
}

/// A complete scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub topology: TopologySpec,
    pub run: RunSpec,
    pub flows: Vec<FlowSpec>,
    pub events: Vec<TimedPerturbation>,
    pub generators: Vec<GeneratorSpec>,
}

impl Scenario {
    /// Parses a scenario from TOML or JSON (auto-detected: JSON documents
    /// start with `{`).
    pub fn parse_str(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = if text.trim_start().starts_with('{') {
            Json::parse(text).map_err(|e| ScenarioError {
                path: String::new(),
                message: format!("JSON: {e:?}"),
            })?
        } else {
            toml::parse(text)
                .map_err(|e| ScenarioError { path: String::new(), message: e.to_string() })?
        };
        Scenario::from_json(&doc)
    }

    /// Serializes to TOML (the canonical on-disk form).
    pub fn to_toml(&self) -> String {
        toml::to_toml_string(&self.to_json())
    }

    /// Serializes to the JSON tree ([`Scenario::from_json`]'s inverse).
    pub fn to_json(&self) -> Json {
        let mut top: Vec<(String, Json)> = vec![
            ("schema".into(), Json::UInt(SCHEMA_VERSION)),
            ("name".into(), Json::Str(self.name.clone())),
            (
                "topology".into(),
                Json::obj([
                    ("kind", Json::Str(self.topology.kind.label().into())),
                    ("seed", Json::UInt(self.topology.seed)),
                ]),
            ),
            (
                "run".into(),
                Json::obj([
                    ("scheme", Json::Str(self.run.scheme.label().into())),
                    ("seed", Json::UInt(self.run.seed)),
                    ("horizon_secs", Json::Float(self.run.horizon_secs)),
                    ("poll_secs", Json::Float(self.run.poll_secs)),
                    ("delta", Json::Float(self.run.delta)),
                    ("recovery_fraction", Json::Float(self.run.recovery_fraction)),
                ]),
            ),
        ];
        if !self.flows.is_empty() {
            top.push(("flows".into(), Json::Arr(self.flows.iter().map(flow_to_json).collect())));
        }
        if !self.events.is_empty() {
            top.push(("events".into(), Json::Arr(self.events.iter().map(event_to_json).collect())));
        }
        if !self.generators.is_empty() {
            top.push((
                "generators".into(),
                Json::Arr(self.generators.iter().map(generator_to_json).collect()),
            ));
        }
        Json::Obj(top)
    }

    /// Builds a scenario from a JSON tree (as produced by the TOML parser
    /// or [`Json::parse`]).
    pub fn from_json(doc: &Json) -> Result<Scenario, ScenarioError> {
        let schema = req_u64(doc, "schema", "")?;
        if schema != SCHEMA_VERSION {
            return serr(
                "schema",
                format!("unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"),
            );
        }
        let name = req_str(doc, "name", "")?.to_string();
        let topo = doc
            .get("topology")
            .ok_or_else(|| ScenarioError { path: "topology".into(), message: "missing".into() })?;
        let kind_label = req_str(topo, "kind", "topology")?;
        let kind = TopologyKind::from_label(kind_label).ok_or_else(|| ScenarioError {
            path: "topology.kind".into(),
            message: format!("unknown topology {kind_label:?}"),
        })?;
        let topology = TopologySpec { kind, seed: opt_u64(topo, "seed", "topology")?.unwrap_or(1) };
        let run = doc
            .get("run")
            .ok_or_else(|| ScenarioError { path: "run".into(), message: "missing".into() })?;
        let scheme_label = req_str(run, "scheme", "run")?;
        let scheme = Scheme::from_label(scheme_label).ok_or_else(|| ScenarioError {
            path: "run.scheme".into(),
            message: format!("unknown scheme {scheme_label:?}"),
        })?;
        let run = RunSpec {
            scheme,
            seed: opt_u64(run, "seed", "run")?.unwrap_or(1),
            horizon_secs: req_f64(run, "horizon_secs", "run")?,
            poll_secs: opt_f64(run, "poll_secs", "run")?.unwrap_or(0.5),
            delta: opt_f64(run, "delta", "run")?.unwrap_or(0.0),
            recovery_fraction: opt_f64(run, "recovery_fraction", "run")?.unwrap_or(0.9),
        };
        let flows = arr_of(doc, "flows", flow_from_json)?;
        let events = arr_of(doc, "events", event_from_json)?;
        let generators = arr_of(doc, "generators", generator_from_json)?;
        let s = Scenario { name, topology, run, flows, events, generators };
        s.validate()?;
        Ok(s)
    }

    /// Structural validation that needs no network: positive horizon,
    /// non-negative times, sane fractions.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        // Strictly positive and, by the same comparison, not NaN.
        let positive = |x: f64| x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive(self.run.horizon_secs) {
            return serr("run.horizon_secs", "must be > 0");
        }
        if !positive(self.run.poll_secs) {
            return serr("run.poll_secs", "must be > 0");
        }
        if !(0.0..=1.0).contains(&self.run.recovery_fraction) {
            return serr("run.recovery_fraction", "must be in [0, 1]");
        }
        if self.flows.is_empty() {
            return serr("flows", "a scenario needs at least one flow");
        }
        for (i, e) in self.events.iter().enumerate() {
            if !(e.at >= 0.0 && e.at.is_finite()) {
                return serr(format!("events[{i}].at"), "must be a finite time ≥ 0");
            }
            match &e.what {
                Perturbation::Capacity { capacity_mbps, .. } if *capacity_mbps < 0.0 => {
                    return serr(format!("events[{i}].capacity_mbps"), "must be ≥ 0");
                }
                Perturbation::PlcNoise { factor, duration_secs, .. }
                | Perturbation::WifiJam { factor, duration_secs, .. } => {
                    if !(0.0..=1.0).contains(factor) {
                        return serr(format!("events[{i}].factor"), "must be in [0, 1]");
                    }
                    if !positive(*duration_secs) {
                        return serr(format!("events[{i}].duration_secs"), "must be > 0");
                    }
                }
                Perturbation::Drift { over_secs, steps, .. } => {
                    if !positive(*over_secs) {
                        return serr(format!("events[{i}].over_secs"), "must be > 0");
                    }
                    if *steps == 0 {
                        return serr(format!("events[{i}].steps"), "must be ≥ 1");
                    }
                }
                _ => {}
            }
        }
        for (i, g) in self.generators.iter().enumerate() {
            match g {
                GeneratorSpec::MarkovOnOff { mean_up_secs, mean_down_secs, .. } => {
                    if !positive(*mean_up_secs) || !positive(*mean_down_secs) {
                        return serr(format!("generators[{i}]"), "mean times must be > 0");
                    }
                }
                GeneratorSpec::GilbertElliott { step_secs, p_bad, p_good, bad_factor, .. } => {
                    if !positive(*step_secs) {
                        return serr(format!("generators[{i}].step_secs"), "must be > 0");
                    }
                    if !(0.0..=1.0).contains(p_bad) || !(0.0..=1.0).contains(p_good) {
                        return serr(format!("generators[{i}]"), "probabilities must be in [0, 1]");
                    }
                    if !(0.0..=1.0).contains(bad_factor) {
                        return serr(format!("generators[{i}].bad_factor"), "must be in [0, 1]");
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Per-item codecs
// ---------------------------------------------------------------------

fn flow_to_json(f: &FlowSpec) -> Json {
    let mut pairs: Vec<(String, Json)> =
        vec![("src".into(), Json::UInt(f.src as u64)), ("dst".into(), Json::UInt(f.dst as u64))];
    match &f.pattern {
        PatternSpec::Saturated { start, stop } => {
            pairs.push(("pattern".into(), Json::Str("saturated".into())));
            pairs.push(("start".into(), Json::Float(*start)));
            pairs.push(("stop".into(), Json::Float(*stop)));
        }
        PatternSpec::File { start, size_bytes } => {
            pairs.push(("pattern".into(), Json::Str("file".into())));
            pairs.push(("start".into(), Json::Float(*start)));
            pairs.push(("size_bytes".into(), Json::UInt(*size_bytes)));
        }
        PatternSpec::Tcp { start, stop, size_bytes } => {
            pairs.push(("pattern".into(), Json::Str("tcp".into())));
            pairs.push(("start".into(), Json::Float(*start)));
            pairs.push(("stop".into(), Json::Float(*stop)));
            pairs.push(("size_bytes".into(), Json::UInt(*size_bytes)));
        }
    }
    Json::Obj(pairs)
}

fn flow_from_json(v: &Json, path: String) -> Result<FlowSpec, ScenarioError> {
    let src = req_u64(v, "src", &path)? as u32;
    let dst = req_u64(v, "dst", &path)? as u32;
    let pattern = match req_str(v, "pattern", &path)? {
        "saturated" => PatternSpec::Saturated {
            start: opt_f64(v, "start", &path)?.unwrap_or(0.0),
            stop: req_f64(v, "stop", &path)?,
        },
        "file" => PatternSpec::File {
            start: opt_f64(v, "start", &path)?.unwrap_or(0.0),
            size_bytes: req_u64(v, "size_bytes", &path)?,
        },
        "tcp" => PatternSpec::Tcp {
            start: opt_f64(v, "start", &path)?.unwrap_or(0.0),
            stop: req_f64(v, "stop", &path)?,
            size_bytes: opt_u64(v, "size_bytes", &path)?.unwrap_or(0),
        },
        other => {
            return serr(join(&path, "pattern"), format!("unknown pattern {other:?}"));
        }
    };
    Ok(FlowSpec { src, dst, pattern })
}

fn event_to_json(e: &TimedPerturbation) -> Json {
    let mut pairs: Vec<(String, Json)> =
        vec![("at".into(), Json::Float(e.at)), ("kind".into(), Json::Str(e.what.kind().into()))];
    match &e.what {
        Perturbation::Capacity { link, capacity_mbps, both } => {
            pairs.push(("link".into(), Json::UInt(*link as u64)));
            pairs.push(("capacity_mbps".into(), Json::Float(*capacity_mbps)));
            pairs.push(("both".into(), Json::Bool(*both)));
        }
        Perturbation::LinkDown { link, both } => {
            pairs.push(("link".into(), Json::UInt(*link as u64)));
            pairs.push(("both".into(), Json::Bool(*both)));
        }
        Perturbation::LinkUp { link, capacity_mbps, both } => {
            pairs.push(("link".into(), Json::UInt(*link as u64)));
            if let Some(c) = capacity_mbps {
                pairs.push(("capacity_mbps".into(), Json::Float(*c)));
            }
            pairs.push(("both".into(), Json::Bool(*both)));
        }
        Perturbation::NodeDown { node } | Perturbation::NodeUp { node } => {
            pairs.push(("node".into(), Json::UInt(*node as u64)));
        }
        Perturbation::PlcNoise { factor, duration_secs, domain_of } => {
            pairs.push(("factor".into(), Json::Float(*factor)));
            pairs.push(("duration_secs".into(), Json::Float(*duration_secs)));
            if let Some(l) = domain_of {
                pairs.push(("domain_of".into(), Json::UInt(*l as u64)));
            }
        }
        Perturbation::WifiJam { factor, duration_secs, channel, domain_of } => {
            pairs.push(("factor".into(), Json::Float(*factor)));
            pairs.push(("duration_secs".into(), Json::Float(*duration_secs)));
            if let Some(c) = channel {
                pairs.push(("channel".into(), Json::UInt(*c as u64)));
            }
            if let Some(l) = domain_of {
                pairs.push(("domain_of".into(), Json::UInt(*l as u64)));
            }
        }
        Perturbation::Drift { link, to_mbps, over_secs, steps, both } => {
            pairs.push(("link".into(), Json::UInt(*link as u64)));
            pairs.push(("to_mbps".into(), Json::Float(*to_mbps)));
            pairs.push(("over_secs".into(), Json::Float(*over_secs)));
            pairs.push(("steps".into(), Json::UInt(*steps as u64)));
            pairs.push(("both".into(), Json::Bool(*both)));
        }
    }
    Json::Obj(pairs)
}

fn event_from_json(v: &Json, path: String) -> Result<TimedPerturbation, ScenarioError> {
    let at = req_f64(v, "at", &path)?;
    let both = opt_bool(v, "both", true);
    let what = match req_str(v, "kind", &path)? {
        "capacity" => Perturbation::Capacity {
            link: req_u64(v, "link", &path)? as u32,
            capacity_mbps: req_f64(v, "capacity_mbps", &path)?,
            both,
        },
        "link_down" => Perturbation::LinkDown { link: req_u64(v, "link", &path)? as u32, both },
        "link_up" => Perturbation::LinkUp {
            link: req_u64(v, "link", &path)? as u32,
            capacity_mbps: opt_f64(v, "capacity_mbps", &path)?,
            both,
        },
        "node_down" => Perturbation::NodeDown { node: req_u64(v, "node", &path)? as u32 },
        "node_up" => Perturbation::NodeUp { node: req_u64(v, "node", &path)? as u32 },
        "plc_noise" => Perturbation::PlcNoise {
            factor: req_f64(v, "factor", &path)?,
            duration_secs: req_f64(v, "duration_secs", &path)?,
            domain_of: opt_u64(v, "domain_of", &path)?.map(|x| x as u32),
        },
        "wifi_jam" => Perturbation::WifiJam {
            factor: req_f64(v, "factor", &path)?,
            duration_secs: req_f64(v, "duration_secs", &path)?,
            channel: opt_u64(v, "channel", &path)?.map(|x| x as u8),
            domain_of: opt_u64(v, "domain_of", &path)?.map(|x| x as u32),
        },
        "drift" => Perturbation::Drift {
            link: req_u64(v, "link", &path)? as u32,
            to_mbps: req_f64(v, "to_mbps", &path)?,
            over_secs: req_f64(v, "over_secs", &path)?,
            steps: opt_u64(v, "steps", &path)?.unwrap_or(10) as u32,
            both,
        },
        other => return serr(join(&path, "kind"), format!("unknown perturbation {other:?}")),
    };
    Ok(TimedPerturbation { at, what })
}

fn generator_to_json(g: &GeneratorSpec) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("kind".into(), Json::Str(g.kind().into()))];
    match g {
        GeneratorSpec::MarkovOnOff { link, mean_up_secs, mean_down_secs, from, until, both } => {
            pairs.push(("link".into(), Json::UInt(*link as u64)));
            pairs.push(("mean_up_secs".into(), Json::Float(*mean_up_secs)));
            pairs.push(("mean_down_secs".into(), Json::Float(*mean_down_secs)));
            pairs.push(("from".into(), Json::Float(*from)));
            if let Some(u) = until {
                pairs.push(("until".into(), Json::Float(*u)));
            }
            pairs.push(("both".into(), Json::Bool(*both)));
        }
        GeneratorSpec::GilbertElliott {
            link,
            step_secs,
            p_bad,
            p_good,
            bad_factor,
            from,
            until,
            both,
        } => {
            pairs.push(("link".into(), Json::UInt(*link as u64)));
            pairs.push(("step_secs".into(), Json::Float(*step_secs)));
            pairs.push(("p_bad".into(), Json::Float(*p_bad)));
            pairs.push(("p_good".into(), Json::Float(*p_good)));
            pairs.push(("bad_factor".into(), Json::Float(*bad_factor)));
            pairs.push(("from".into(), Json::Float(*from)));
            if let Some(u) = until {
                pairs.push(("until".into(), Json::Float(*u)));
            }
            pairs.push(("both".into(), Json::Bool(*both)));
        }
    }
    Json::Obj(pairs)
}

fn generator_from_json(v: &Json, path: String) -> Result<GeneratorSpec, ScenarioError> {
    let both = opt_bool(v, "both", true);
    match req_str(v, "kind", &path)? {
        "markov_onoff" => Ok(GeneratorSpec::MarkovOnOff {
            link: req_u64(v, "link", &path)? as u32,
            mean_up_secs: req_f64(v, "mean_up_secs", &path)?,
            mean_down_secs: req_f64(v, "mean_down_secs", &path)?,
            from: opt_f64(v, "from", &path)?.unwrap_or(0.0),
            until: opt_f64(v, "until", &path)?,
            both,
        }),
        "gilbert_elliott" => Ok(GeneratorSpec::GilbertElliott {
            link: req_u64(v, "link", &path)? as u32,
            step_secs: req_f64(v, "step_secs", &path)?,
            p_bad: req_f64(v, "p_bad", &path)?,
            p_good: req_f64(v, "p_good", &path)?,
            bad_factor: req_f64(v, "bad_factor", &path)?,
            from: opt_f64(v, "from", &path)?.unwrap_or(0.0),
            until: opt_f64(v, "until", &path)?,
            both,
        }),
        other => serr(join(&path, "kind"), format!("unknown generator {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Scenario {
        Scenario {
            name: "sample".into(),
            topology: TopologySpec { kind: TopologyKind::Fig1, seed: 1 },
            run: RunSpec {
                scheme: Scheme::Empower,
                seed: 7,
                horizon_secs: 60.0,
                poll_secs: 0.5,
                delta: 0.0,
                recovery_fraction: 0.9,
            },
            flows: vec![FlowSpec {
                src: 0,
                dst: 2,
                pattern: PatternSpec::Saturated { start: 0.0, stop: 60.0 },
            }],
            events: vec![
                TimedPerturbation {
                    at: 20.0,
                    what: Perturbation::Capacity { link: 2, capacity_mbps: 1.5, both: true },
                },
                TimedPerturbation {
                    at: 40.0,
                    what: Perturbation::LinkUp { link: 2, capacity_mbps: None, both: true },
                },
            ],
            generators: vec![GeneratorSpec::GilbertElliott {
                link: 4,
                step_secs: 5.0,
                p_bad: 0.2,
                p_good: 0.6,
                bad_factor: 0.5,
                from: 0.0,
                until: Some(50.0),
                both: true,
            }],
        }
    }

    #[test]
    fn toml_round_trip_is_identity() {
        let s = sample();
        let text = s.to_toml();
        let back = Scenario::parse_str(&text).unwrap();
        assert_eq!(back, s, "TOML round trip:\n{text}");
    }

    #[test]
    fn json_round_trip_is_identity() {
        let s = sample();
        let text = s.to_json().to_string_pretty();
        let back = Scenario::parse_str(&text).unwrap();
        assert_eq!(back, s, "JSON round trip:\n{text}");
    }

    #[test]
    fn schema_version_is_enforced() {
        let mut text = sample().to_toml();
        text = text.replace("schema = 1", "schema = 99");
        let err = Scenario::parse_str(&text).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn errors_name_the_field() {
        let text = sample().to_toml().replace("horizon_secs = 60.0", "");
        let err = Scenario::parse_str(&text).unwrap_err();
        assert!(err.to_string().contains("horizon_secs"), "{err}");
        let text = sample().to_toml().replace("\"EMPoWER\"", "\"bogus\"");
        let err = Scenario::parse_str(&text).unwrap_err();
        assert!(err.to_string().contains("scheme"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let mut s = sample();
        s.run.recovery_fraction = 1.5;
        assert!(s.validate().is_err());
        let mut s = sample();
        s.events[0].what =
            Perturbation::PlcNoise { factor: 2.0, duration_secs: 5.0, domain_of: None };
        assert!(s.validate().is_err());
    }
}
