//! A hand-rolled TOML subset, parsed into the workspace's
//! [`Json`] tree (the repo carries no external crates by design).
//!
//! Supported: `key = value` pairs, `[table]` / `[dotted.table]` headers,
//! `[[array.of.tables]]`, basic strings with escapes, integers, floats,
//! booleans, inline arrays, and `#` comments. That covers the whole
//! scenario schema; anything outside it is a parse error, not a silent
//! skip. Floats survive a write → parse round trip exactly (shortest
//! round-trip formatting on both sides).

use empower_telemetry::Json;

/// A TOML syntax error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TOML line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError { line, message: message.into() })
}

/// Parses a TOML document into a [`Json::Obj`] tree. Tables become nested
/// objects, arrays-of-tables become arrays of objects; key order follows
/// the document.
pub fn parse(text: &str) -> Result<Json, TomlError> {
    let mut root = Json::Obj(Vec::new());
    // Path of the table the current `key = value` lines land in.
    let mut current: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let path = parse_key_path(inner, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let path = parse_key_path(inner, lineno)?;
            open_table(&mut root, &path, lineno)?;
            current = path;
        } else {
            let eq = match line.find('=') {
                Some(p) => p,
                None => return err(lineno, format!("expected key = value, got {line:?}")),
            };
            let key = line[..eq].trim();
            if key.is_empty() || !is_bare_key(key) {
                return err(lineno, format!("bad key {key:?} (bare keys only)"));
            }
            let value = parse_value(line[eq + 1..].trim(), lineno)?;
            let table = open_table(&mut root, &current, lineno)?;
            let Json::Obj(pairs) = table else {
                return err(lineno, "internal: table is not an object");
            };
            if pairs.iter().any(|(k, _)| k == key) {
                return err(lineno, format!("duplicate key {key:?}"));
            }
            pairs.push((key.to_string(), value));
        }
    }
    Ok(root)
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn is_bare_key(k: &str) -> bool {
    !k.is_empty() && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_key_path(s: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<String> = s.split('.').map(|p| p.trim().to_string()).collect();
    for p in &parts {
        if !is_bare_key(p) {
            return err(line, format!("bad table name segment {p:?}"));
        }
    }
    Ok(parts)
}

/// Walks `path` from the root, creating empty tables as needed, and errors
/// on conflicts (a scalar where a table is expected).
fn open_table<'a>(
    root: &'a mut Json,
    path: &[String],
    line: usize,
) -> Result<&'a mut Json, TomlError> {
    let mut node = root;
    for seg in path {
        let Json::Obj(pairs) = node else {
            return err(line, format!("{seg:?} is not a table"));
        };
        let idx = match pairs.iter().position(|(k, _)| k == seg) {
            Some(i) => i,
            None => {
                pairs.push((seg.clone(), Json::Obj(Vec::new())));
                pairs.len() - 1
            }
        };
        let slot = &mut pairs[idx].1;
        node = match slot {
            // A table header inside an array-of-tables targets its latest
            // element.
            Json::Arr(items) => match items.last_mut() {
                Some(last) => last,
                None => return err(line, format!("array of tables {seg:?} is empty")),
            },
            other => other,
        };
    }
    Ok(node)
}

/// Appends a fresh element to the array-of-tables at `path`.
fn push_array_table(root: &mut Json, path: &[String], line: usize) -> Result<(), TomlError> {
    let Some((last, parents)) = path.split_last() else {
        return err(line, "array of tables needs a non-empty name");
    };
    let parent = open_table(root, parents, line)?;
    let Json::Obj(pairs) = parent else {
        return err(line, "parent of an array of tables must be a table");
    };
    match pairs.iter_mut().find(|(k, _)| k == last) {
        Some((_, Json::Arr(items))) => items.push(Json::Obj(Vec::new())),
        Some(_) => return err(line, format!("{last:?} is not an array of tables")),
        None => pairs.push((last.clone(), Json::Arr(vec![Json::Obj(Vec::new())]))),
    }
    Ok(())
}

fn parse_value(s: &str, line: usize) -> Result<Json, TomlError> {
    if s.is_empty() {
        return err(line, "missing value");
    }
    if let Some(rest) = s.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(line, "unterminated string");
        };
        return unescape(inner, line).map(Json::Str);
    }
    if s == "true" {
        return Ok(Json::Bool(true));
    }
    if s == "false" {
        return Ok(Json::Bool(false));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return err(line, "unterminated array");
        };
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, line)?);
            }
        }
        return Ok(Json::Arr(items));
    }
    // Numbers: ints stay exact, anything with '.', 'e' or 'E' is a float.
    if s.contains(['.', 'e', 'E']) || s == "inf" || s == "-inf" || s == "nan" {
        if let Ok(f) = s.parse::<f64>() {
            return Ok(Json::Float(f));
        }
    } else if let Ok(i) = s.parse::<i64>() {
        return Ok(Json::Int(i));
    } else if let Ok(u) = s.parse::<u64>() {
        return Ok(Json::UInt(u));
    }
    err(line, format!("cannot parse value {s:?}"))
}

/// Splits an inline-array body on commas that are not inside strings or
/// nested brackets.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut depth, mut in_str, mut escaped, mut start) = (0usize, false, false, 0usize);
    for (i, c) in s.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' if !in_str && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&s[start..]);
    out
}

fn unescape(s: &str, line: usize) -> Result<String, TomlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return err(line, format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Renders a [`Json::Obj`] tree as TOML, the inverse of [`parse`] for the
/// shapes the scenario schema uses: scalars and inline arrays first, then
/// sub-tables as `[headers]`, then arrays of objects as `[[headers]]`.
pub fn to_toml_string(value: &Json) -> String {
    let mut out = String::new();
    write_table(&mut out, value, &mut Vec::new());
    out
}

fn is_table_array(v: &Json) -> bool {
    matches!(v, Json::Arr(items) if !items.is_empty() && items.iter().all(|i| matches!(i, Json::Obj(_))))
}

fn write_table(out: &mut String, table: &Json, path: &mut Vec<String>) {
    let Json::Obj(pairs) = table else { return };
    for (k, v) in pairs {
        match v {
            Json::Obj(_) => {}
            _ if is_table_array(v) => {}
            _ => {
                out.push_str(k);
                out.push_str(" = ");
                write_value(out, v);
                out.push('\n');
            }
        }
    }
    for (k, v) in pairs {
        if let Json::Obj(_) = v {
            path.push(k.clone());
            if !out.is_empty() {
                out.push('\n');
            }
            out.push('[');
            out.push_str(&path.join("."));
            out.push_str("]\n");
            write_table(out, v, path);
            path.pop();
        } else if let (true, Json::Arr(items)) = (is_table_array(v), v) {
            path.push(k.clone());
            for item in items {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str("[[");
                out.push_str(&path.join("."));
                out.push_str("]]\n");
                write_table(out, item, path);
            }
            path.pop();
        }
    }
}

fn write_value(out: &mut String, v: &Json) {
    use std::fmt::Write as _;
    match v {
        Json::Null => out.push_str("\"\""),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Json::Float(f) => {
            if *f == f.trunc() && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(_) => out.push_str("{}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basic_shapes() {
        let doc = r#"
# a comment
schema = 1
name = "drop test"  # trailing comment
ratio = 0.5
on = true

[topology]
kind = "fig1"
seed = 7

[[events]]
at = 40.0
kind = "capacity"
links = [2, 3]

[[events]]
at = 80.0
kind = "link_up"
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("drop test"));
        assert_eq!(v.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("on"), Some(&Json::Bool(true)));
        let topo = v.get("topology").unwrap();
        assert_eq!(topo.get("kind").and_then(Json::as_str), Some("fig1"));
        let Some(Json::Arr(events)) = v.get("events") else { panic!("events array") };
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("at").and_then(Json::as_f64), Some(40.0));
        let Some(Json::Arr(links)) = events[0].get("links") else { panic!("links array") };
        assert_eq!(links.len(), 2);
    }

    #[test]
    fn round_trips_through_the_writer() {
        let doc = Json::obj([
            ("schema", Json::Int(1)),
            ("name", Json::Str("x \"y\"".into())),
            ("f", Json::Float(0.30000000000000004)),
            ("g", Json::Float(3.0)),
            ("topology", Json::obj([("kind", Json::Str("fig1".into())), ("seed", Json::Int(3))])),
            (
                "events",
                Json::Arr(vec![
                    Json::obj([("at", Json::Float(1.5)), ("kind", Json::Str("x".into()))]),
                    Json::obj([("at", Json::Float(2.0)), ("kind", Json::Str("y".into()))]),
                ]),
            ),
        ]);
        let text = to_toml_string(&doc);
        let back = parse(&text).unwrap();
        assert_eq!(back, doc, "write → parse is the identity:\n{text}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb =\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn nested_and_dotted_tables() {
        let doc = "[a.b]\nx = 1\n[a.c]\ny = 2\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().get("x").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").unwrap().get("c").unwrap().get("y").and_then(Json::as_u64), Some(2));
    }
}
