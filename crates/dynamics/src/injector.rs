//! Compiling a [`Scenario`] into concrete, timestamped network faults.
//!
//! Compilation happens against a *baseline* network: `link_up` without an
//! explicit capacity, burst restores, and node recoveries all refer to the
//! capacities the network had at scenario start, and generators expand
//! into a deterministic event list (same seed → same events, down to the
//! byte). The result is medium-agnostic: [`schedule`] pushes the faults
//! onto the packet engine's virtual clock, while [`NetMutator`] replays
//! them against a plain [`Network`] for the fluid evaluators.

use empower_model::rng::{exponential, Rng, SeedableRng, StdRng};
use empower_model::{InterferenceMap, LinkId, Medium, Network, NodeId};
use empower_sim::Simulation;

use crate::scenario::{GeneratorSpec, Perturbation, Scenario, ScenarioError, TimedPerturbation};

/// One primitive mutation of the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Set a directed link to an absolute capacity (0 = down).
    SetCapacity { link: LinkId, capacity_mbps: f64 },
    /// Crash (`up = false`) or recover (`up = true`) a node; adjacent
    /// links follow, recoveries restore pre-crash capacities.
    NodeChange { node: NodeId, up: bool },
}

/// A [`FaultAction`] bound to a point on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledFault {
    /// Fire time, seconds.
    pub at: f64,
    pub action: FaultAction,
    /// True if the action degrades the network relative to the state the
    /// compiler tracked just before it — these open resilience-metric
    /// episodes; restorations and no-ops don't.
    pub disruptive: bool,
}

fn cerr<T>(path: impl Into<String>, message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError { path: path.into(), message: message.into() })
}

fn check_link(net: &Network, id: u32, path: &str) -> Result<LinkId, ScenarioError> {
    let l = LinkId(id);
    if net.try_link(l).is_none() {
        return cerr(path, format!("link {id} does not exist (network has {})", net.link_count()));
    }
    Ok(l)
}

/// Expands a directed link id to itself plus (when `both`) its reverse
/// twin.
fn twins(net: &Network, l: LinkId, both: bool) -> Vec<LinkId> {
    let mut v = vec![l];
    if both {
        if let Some(r) = net.link(l).reverse {
            v.push(r);
        }
    }
    v
}

/// The compiler's working state: current capacities as the event list is
/// unrolled in time order, so `disruptive` and implicit restores are
/// exact.
struct Tracker {
    caps: Vec<f64>,
    baseline: Vec<f64>,
}

impl Tracker {
    fn new(net: &Network) -> Tracker {
        let caps: Vec<f64> = net.links().iter().map(|l| l.capacity_mbps).collect();
        Tracker { baseline: caps.clone(), caps }
    }

    fn set(&mut self, out: &mut Vec<CompiledFault>, at: f64, link: LinkId, cap: f64) {
        let old = self.caps[link.index()];
        self.caps[link.index()] = cap;
        out.push(CompiledFault {
            at,
            action: FaultAction::SetCapacity { link, capacity_mbps: cap },
            disruptive: cap < old,
        });
    }
}

/// Compiles the scenario's scripted events and generators into a single
/// time-sorted fault list against `net`'s baseline capacities.
///
/// # Errors
/// [`ScenarioError`] when an event names a link or node the network does
/// not have, or a jam/noise burst matches no link.
pub fn compile(
    scenario: &Scenario,
    net: &Network,
    imap: &InterferenceMap,
) -> Result<Vec<CompiledFault>, ScenarioError> {
    let horizon = scenario.run.horizon_secs;
    // Expand generators first so everything is sorted together.
    let mut timed: Vec<TimedPerturbation> = scenario.events.clone();
    for (i, g) in scenario.generators.iter().enumerate() {
        expand_generator(g, i, scenario.run.seed, horizon, &mut timed);
    }
    // Stable sort: simultaneous events keep scenario order (events before
    // generator output, generators in declaration order).
    timed.sort_by(|a, b| a.at.total_cmp(&b.at));

    let mut tracker = Tracker::new(net);
    let mut out: Vec<CompiledFault> = Vec::new();
    let mut node_up = vec![true; net.node_count()];
    for (i, e) in timed.iter().enumerate() {
        let path = format!("events[{i}]");
        match &e.what {
            Perturbation::Capacity { link, capacity_mbps, both } => {
                let l = check_link(net, *link, &path)?;
                for t in twins(net, l, *both) {
                    let cap = resolve_capacity(*capacity_mbps, tracker.baseline[t.index()]);
                    tracker.set(&mut out, e.at, t, cap);
                }
            }
            Perturbation::LinkDown { link, both } => {
                let l = check_link(net, *link, &path)?;
                for t in twins(net, l, *both) {
                    tracker.set(&mut out, e.at, t, 0.0);
                }
            }
            Perturbation::LinkUp { link, capacity_mbps, both } => {
                let l = check_link(net, *link, &path)?;
                for t in twins(net, l, *both) {
                    let cap = capacity_mbps.unwrap_or(tracker.baseline[t.index()]);
                    tracker.set(&mut out, e.at, t, cap);
                }
            }
            Perturbation::NodeDown { node } | Perturbation::NodeUp { node } => {
                let up = matches!(e.what, Perturbation::NodeUp { .. });
                if *node as usize >= net.node_count() {
                    return cerr(path, format!("node {node} does not exist"));
                }
                let n = NodeId(*node);
                // Track adjacent capacities so later `disruptive` flags
                // stay accurate.
                for link in net.links() {
                    if link.from == n || link.to == n {
                        let idx = link.id.index();
                        tracker.caps[idx] = if up { tracker.baseline[idx] } else { 0.0 };
                    }
                }
                let disruptive = !up && node_up[n.index()];
                node_up[n.index()] = up;
                out.push(CompiledFault {
                    at: e.at,
                    action: FaultAction::NodeChange { node: n, up },
                    disruptive,
                });
            }
            Perturbation::PlcNoise { factor, duration_secs, domain_of } => {
                let links = medium_burst_links(net, imap, *domain_of, &path, |m| m.is_plc())?;
                for l in links {
                    let cap = tracker.caps[l.index()];
                    tracker.set(&mut out, e.at, l, cap * factor);
                    tracker.set(&mut out, e.at + duration_secs, l, cap);
                }
            }
            Perturbation::WifiJam { factor, duration_secs, channel, domain_of } => {
                let links = medium_burst_links(net, imap, *domain_of, &path, |m| match channel {
                    Some(c) => m == Medium::Wifi { channel: *c },
                    None => m.is_wifi(),
                })?;
                for l in links {
                    let cap = tracker.caps[l.index()];
                    tracker.set(&mut out, e.at, l, cap * factor);
                    tracker.set(&mut out, e.at + duration_secs, l, cap);
                }
            }
            Perturbation::Drift { link, to_mbps, over_secs, steps, both } => {
                let l = check_link(net, *link, &path)?;
                for t in twins(net, l, *both) {
                    let from = tracker.caps[t.index()];
                    for k in 1..=*steps {
                        let frac = k as f64 / *steps as f64;
                        let cap = from + (to_mbps - from) * frac;
                        tracker.set(&mut out, e.at + over_secs * frac, t, cap);
                    }
                }
            }
        }
    }
    // Burst restores and drift steps may land out of order relative to
    // later scripted events; sort once more (stable, so simultaneous
    // faults keep emission order).
    out.sort_by(|a, b| a.at.total_cmp(&b.at));
    out.retain(|f| f.at <= horizon);
    Ok(out)
}

/// The links a PLC-noise / WiFi-jam burst hits: all links of the medium,
/// or just the interference domain of `domain_of`.
fn medium_burst_links(
    net: &Network,
    imap: &InterferenceMap,
    domain_of: Option<u32>,
    path: &str,
    medium_matches: impl Fn(Medium) -> bool,
) -> Result<Vec<LinkId>, ScenarioError> {
    let links: Vec<LinkId> = match domain_of {
        Some(id) => {
            let l = check_link(net, id, path)?;
            let mut v = imap.domain(l).to_vec();
            if !v.contains(&l) {
                v.push(l);
            }
            v.sort();
            v.retain(|&x| medium_matches(net.link(x).medium));
            v
        }
        None => net.links().iter().filter(|l| medium_matches(l.medium)).map(|l| l.id).collect(),
    };
    if links.is_empty() {
        return cerr(path, "burst matches no link of that medium");
    }
    Ok(links)
}

/// Deterministically unrolls one generator into timed perturbations.
/// The stream depends only on `(run_seed, index, spec)`.
fn expand_generator(
    g: &GeneratorSpec,
    index: usize,
    run_seed: u64,
    horizon: f64,
    out: &mut Vec<TimedPerturbation>,
) {
    // Decorrelate generators sharing a run seed.
    let mut rng = StdRng::seed_from_u64(run_seed ^ (0x9e37_79b9 + index as u64));
    match *g {
        GeneratorSpec::MarkovOnOff { link, mean_up_secs, mean_down_secs, from, until, both } => {
            let until = until.unwrap_or(horizon).min(horizon);
            let mut t = from;
            loop {
                t += exponential(&mut rng, mean_up_secs);
                if t >= until {
                    break;
                }
                out.push(TimedPerturbation { at: t, what: Perturbation::LinkDown { link, both } });
                t += exponential(&mut rng, mean_down_secs);
                // A downed link always comes back, even if the up-event
                // lands past `until`: churn shouldn't end a scenario with
                // the link dead unless the horizon itself cuts it off.
                out.push(TimedPerturbation {
                    at: t.min(until),
                    what: Perturbation::LinkUp { link, capacity_mbps: None, both },
                });
            }
        }
        GeneratorSpec::GilbertElliott {
            link,
            step_secs,
            p_bad,
            p_good,
            bad_factor,
            from,
            until,
            both,
        } => {
            let until = until.unwrap_or(horizon).min(horizon);
            let mut bad = false;
            let mut t = from;
            while t < until {
                let flip: f64 = rng.gen();
                let p = if bad { p_good } else { p_bad };
                if flip < p {
                    bad = !bad;
                    let what = if bad {
                        // Relative to the *baseline* capacity, so repeated
                        // visits to the bad state do not compound.
                        Perturbation::Capacity { link, capacity_mbps: f64::NAN, both }
                    } else {
                        Perturbation::LinkUp { link, capacity_mbps: None, both }
                    };
                    // NAN marks "baseline × bad_factor"; patched below
                    // because the baseline is only known at compile time.
                    out.push(TimedPerturbation { at: t, what });
                }
                t += step_secs;
            }
            if bad {
                out.push(TimedPerturbation {
                    at: until,
                    what: Perturbation::LinkUp { link, capacity_mbps: None, both },
                });
            }
            // Resolve the NAN placeholders into a scale factor the compiler
            // understands: rewrite them as Drift-free absolute capacities is
            // impossible here (no net), so encode via a dedicated marker.
            for e in out.iter_mut() {
                if let Perturbation::Capacity { capacity_mbps, .. } = &mut e.what {
                    if capacity_mbps.is_nan() {
                        *capacity_mbps = -bad_factor;
                    }
                }
            }
        }
    }
}

/// Pushes the compiled faults onto the packet engine's event queue.
pub fn schedule(sim: &mut Simulation, faults: &[CompiledFault]) {
    for f in faults {
        match f.action {
            FaultAction::SetCapacity { link, capacity_mbps } => {
                sim.schedule_link_change(f.at, link, capacity_mbps);
            }
            FaultAction::NodeChange { node, up } => sim.schedule_node_change(f.at, node, up),
        }
    }
}

/// Negative capacities are Gilbert–Elliott "scale the baseline" markers
/// (see [`expand_generator`]); [`compile`] resolves them against the
/// baseline so compiled faults are always absolute.
fn resolve_capacity(encoded: f64, baseline: f64) -> f64 {
    if encoded < 0.0 {
        baseline * -encoded
    } else {
        encoded
    }
}

/// Replays [`FaultAction`]s onto a plain [`Network`] for the fluid
/// evaluators: applies the same semantics as the engine's event handlers
/// (node crashes save capacities, recoveries restore them).
pub struct NetMutator {
    /// Capacity each link had when its node crashed.
    crash_saved: Vec<Option<f64>>,
}

impl NetMutator {
    pub fn new(net: &Network) -> NetMutator {
        NetMutator { crash_saved: vec![None; net.link_count()] }
    }

    /// Applies one fault to `net`.
    pub fn apply(&mut self, net: &mut Network, action: FaultAction) {
        match action {
            FaultAction::SetCapacity { link, capacity_mbps } => {
                self.crash_saved[link.index()] = None;
                net.set_capacity(link, capacity_mbps);
            }
            FaultAction::NodeChange { node, up } => {
                let adjacent: Vec<LinkId> = net
                    .links()
                    .iter()
                    .filter(|l| l.from == node || l.to == node)
                    .map(|l| l.id)
                    .collect();
                for l in adjacent {
                    if up {
                        if let Some(cap) = self.crash_saved[l.index()].take() {
                            net.set_capacity(l, cap);
                        }
                    } else {
                        let link = net.link(l);
                        if link.is_alive() && self.crash_saved[l.index()].is_none() {
                            self.crash_saved[l.index()] = Some(link.capacity_mbps);
                        }
                        net.set_capacity(l, 0.0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FlowSpec, PatternSpec, RunSpec, Scenario, TopologyKind, TopologySpec};
    use empower_core::Scheme;
    use empower_model::topology::fig1_scenario;
    use empower_model::{InterferenceModel, SharedMedium};

    fn base(events: Vec<TimedPerturbation>, generators: Vec<GeneratorSpec>) -> Scenario {
        Scenario {
            name: "t".into(),
            topology: TopologySpec { kind: TopologyKind::Fig1, seed: 1 },
            run: RunSpec {
                scheme: Scheme::Empower,
                seed: 3,
                horizon_secs: 100.0,
                poll_secs: 0.5,
                delta: 0.0,
                recovery_fraction: 0.9,
            },
            flows: vec![FlowSpec {
                src: 0,
                dst: 2,
                pattern: PatternSpec::Saturated { start: 0.0, stop: 100.0 },
            }],
            events,
            generators,
        }
    }

    #[test]
    fn link_down_expands_to_both_directions_and_is_disruptive() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let sc = base(
            vec![TimedPerturbation {
                at: 10.0,
                what: Perturbation::LinkDown { link: 2, both: true },
            }],
            vec![],
        );
        let faults = compile(&sc, &s.net, &imap).unwrap();
        assert_eq!(faults.len(), 2);
        let twin = s.net.link(LinkId(2)).reverse.unwrap();
        assert!(faults.iter().all(|f| f.disruptive && f.at == 10.0));
        assert!(faults.iter().any(|f| matches!(
            f.action,
            FaultAction::SetCapacity { link, capacity_mbps } if link == twin && capacity_mbps == 0.0
        )));
    }

    #[test]
    fn link_up_without_capacity_restores_the_baseline() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let sc = base(
            vec![
                TimedPerturbation {
                    at: 10.0,
                    what: Perturbation::Capacity { link: 0, capacity_mbps: 2.0, both: false },
                },
                TimedPerturbation {
                    at: 20.0,
                    what: Perturbation::LinkUp { link: 0, capacity_mbps: None, both: false },
                },
            ],
            vec![],
        );
        let faults = compile(&sc, &s.net, &imap).unwrap();
        let baseline = s.net.link(LinkId(0)).capacity_mbps;
        assert_eq!(faults.len(), 2);
        assert!(faults[0].disruptive && !faults[1].disruptive);
        assert!(matches!(
            faults[1].action,
            FaultAction::SetCapacity { capacity_mbps, .. } if capacity_mbps == baseline
        ));
    }

    #[test]
    fn bursts_restore_after_their_duration() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let sc = base(
            vec![TimedPerturbation {
                at: 10.0,
                what: Perturbation::PlcNoise { factor: 0.5, duration_secs: 5.0, domain_of: None },
            }],
            vec![],
        );
        let faults = compile(&sc, &s.net, &imap).unwrap();
        // fig1 has one PLC duplex pair → 2 directed links × (degrade,
        // restore).
        assert_eq!(faults.len(), 4);
        let degrades: Vec<_> = faults.iter().filter(|f| f.at == 10.0).collect();
        let restores: Vec<_> = faults.iter().filter(|f| f.at == 15.0).collect();
        assert_eq!((degrades.len(), restores.len()), (2, 2));
        assert!(degrades.iter().all(|f| f.disruptive));
        assert!(restores.iter().all(|f| !f.disruptive));
    }

    #[test]
    fn generator_expansion_is_deterministic() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let sc = base(
            vec![],
            vec![GeneratorSpec::MarkovOnOff {
                link: 4,
                mean_up_secs: 10.0,
                mean_down_secs: 2.0,
                from: 0.0,
                until: None,
                both: true,
            }],
        );
        let a = compile(&sc, &s.net, &imap).unwrap();
        let b = compile(&sc, &s.net, &imap).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a 100 s horizon with 10 s mean up-time churns");
        // Different seed → different stream.
        let mut sc2 = sc.clone();
        sc2.run.seed = 4;
        let c = compile(&sc2, &s.net, &imap).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn node_crash_and_recovery_round_trip_in_the_mutator() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let sc = base(
            vec![
                TimedPerturbation { at: 10.0, what: Perturbation::NodeDown { node: 1 } },
                TimedPerturbation { at: 20.0, what: Perturbation::NodeUp { node: 1 } },
            ],
            vec![],
        );
        let faults = compile(&sc, &s.net, &imap).unwrap();
        assert_eq!(faults.len(), 2);
        assert!(faults[0].disruptive && !faults[1].disruptive);
        let mut net = s.net.clone();
        let before: Vec<f64> = net.links().iter().map(|l| l.capacity_mbps).collect();
        let mut m = NetMutator::new(&net);
        m.apply(&mut net, faults[0].action);
        // Every extender-adjacent link is down (fig1: all of them).
        assert!(net.links().iter().all(|l| !l.is_alive()));
        m.apply(&mut net, faults[1].action);
        let after: Vec<f64> = net.links().iter().map(|l| l.capacity_mbps).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn unknown_links_are_compile_errors() {
        let s = fig1_scenario();
        let imap = SharedMedium.build_map(&s.net);
        let sc = base(
            vec![TimedPerturbation {
                at: 1.0,
                what: Perturbation::LinkDown { link: 99, both: true },
            }],
            vec![],
        );
        let err = compile(&sc, &s.net, &imap).unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
    }
}
