//! Resilience metrics: how the stack rides out a fault.
//!
//! Each *disruptive* compiled fault (see
//! [`crate::injector::CompiledFault::disruptive`]) opens an episode, and
//! the driver measures four things the paper's §6.4 recovery narrative
//! cares about:
//!
//! * **time to detect** — virtual seconds from the fault to the first
//!   [`RouteMonitor`](empower_core::RouteMonitor) trigger;
//! * **time to reconverge** — seconds until aggregate goodput is back to
//!   `recovery_fraction` of the pre-fault baseline (sustained for
//!   [`RECONVERGE_WINDOW_SECS`]);
//! * **throughput-dip area** — Mbit of goodput lost versus the baseline
//!   between fault and reconvergence (the integral of the Fig. 12 dip);
//! * **packets lost** — frames dropped in the network during the
//!   transient.

use empower_telemetry::impl_to_json_struct;

/// Seconds of pre-fault throughput averaged into the baseline.
pub const BASELINE_WINDOW_SECS: usize = 10;
/// Consecutive seconds that must clear the recovery bar to count as
/// reconverged (one good second can be a queue-drain artefact).
pub const RECONVERGE_WINDOW_SECS: usize = 3;

/// The per-fault resilience record, emitted into the `--metrics`
/// manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMetrics {
    /// When the fault fired (virtual seconds).
    pub fault_at_secs: f64,
    /// Mean aggregate goodput over the [`BASELINE_WINDOW_SECS`] before the
    /// fault, Mb/s.
    pub baseline_mbps: f64,
    /// Seconds until the first route-monitor trigger at or after the
    /// fault; `None` if no monitor fired before the horizon.
    pub time_to_detect_secs: Option<f64>,
    /// Seconds until goodput sustained `recovery_fraction × baseline`;
    /// `None` if it never did before the horizon.
    pub time_to_reconverge_secs: Option<f64>,
    /// Goodput lost versus the baseline between fault and reconvergence
    /// (or the horizon), Mbit.
    pub dip_area_mbit: f64,
    /// Frames dropped in the network during the same window.
    pub packets_lost: u64,
}

impl_to_json_struct!(FaultMetrics {
    fault_at_secs,
    baseline_mbps,
    time_to_detect_secs,
    time_to_reconverge_secs,
    dip_area_mbit,
    packets_lost,
});

/// Computes one episode's metrics from the run's raw observations.
///
/// * `series` — aggregate goodput per whole second, `series[s]` covering
///   `[s, s+1)`;
/// * `detections` — route-monitor trigger times, ascending;
/// * `drops` — `(time, cumulative packets dropped in network)` samples,
///   ascending in time.
pub fn episode_metrics(
    fault_at: f64,
    series: &[f64],
    detections: &[f64],
    drops: &[(f64, u64)],
    recovery_fraction: f64,
) -> FaultMetrics {
    let baseline_mbps = baseline(series, fault_at);
    let time_to_detect_secs = detections.iter().find(|&&t| t >= fault_at).map(|&t| t - fault_at);
    let reconverged_at = reconverge_time(series, fault_at, recovery_fraction * baseline_mbps);
    let window_end = reconverged_at.unwrap_or(series.len() as f64);
    let dip_area_mbit = dip_area(series, fault_at, window_end, baseline_mbps);
    let packets_lost =
        cumulative_after(drops, window_end).saturating_sub(cumulative_before(drops, fault_at));
    FaultMetrics {
        fault_at_secs: fault_at,
        baseline_mbps,
        time_to_detect_secs,
        time_to_reconverge_secs: reconverged_at.map(|t| t - fault_at),
        dip_area_mbit,
        packets_lost,
    }
}

/// The distinct fire times of the disruptive faults, ascending — one
/// episode each (simultaneous twin-link faults collapse into one).
pub fn episode_times(faults: &[crate::injector::CompiledFault]) -> Vec<f64> {
    let mut times: Vec<f64> = faults.iter().filter(|f| f.disruptive).map(|f| f.at).collect();
    times.sort_by(f64::total_cmp);
    times.dedup();
    times
}

/// Mean goodput over the seconds `[fault − BASELINE_WINDOW, fault)`.
fn baseline(series: &[f64], fault_at: f64) -> f64 {
    let end = (fault_at.floor() as usize).min(series.len());
    let start = end.saturating_sub(BASELINE_WINDOW_SECS);
    if end == start {
        return 0.0;
    }
    series[start..end].iter().sum::<f64>() / (end - start) as f64
}

/// First time ≥ `fault_at` where the next [`RECONVERGE_WINDOW_SECS`]
/// seconds all exist and average at least `bar`.
fn reconverge_time(series: &[f64], fault_at: f64, bar: f64) -> Option<f64> {
    let from = fault_at.ceil() as usize;
    for s in from..series.len().saturating_sub(RECONVERGE_WINDOW_SECS - 1) {
        let window = &series[s..s + RECONVERGE_WINDOW_SECS];
        if window.iter().sum::<f64>() / RECONVERGE_WINDOW_SECS as f64 >= bar {
            return Some(s as f64);
        }
    }
    None
}

/// `Σ max(0, baseline − series[s])` over whole seconds in
/// `[fault_at, end)` — Mbit, since the bins are one second wide.
fn dip_area(series: &[f64], fault_at: f64, end: f64, baseline: f64) -> f64 {
    let from = fault_at.floor() as usize;
    let to = (end.ceil() as usize).min(series.len());
    series[from.min(series.len())..to].iter().map(|&r| (baseline - r).max(0.0)).sum()
}

/// The cumulative drop count just before `t` (last sample strictly before
/// `t`, 0 before the first sample) — the episode's starting point, so
/// drops at the fault instant itself (queue drains) are counted in.
fn cumulative_before(drops: &[(f64, u64)], t: f64) -> u64 {
    drops.iter().take_while(|&&(at, _)| at < t).last().map_or(0, |&(_, n)| n)
}

/// The cumulative drop count once `t` has been observed (first sample at
/// or after `t`, falling back to the last sample) — the episode's end
/// point; sampling is coarser than the reconvergence estimate, so the
/// next sample is the first one that has seen the whole transient.
fn cumulative_after(drops: &[(f64, u64)], t: f64) -> u64 {
    drops.iter().find(|&&(at, _)| at >= t).or(drops.last()).map_or(0, |&(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_dip_and_recovery_is_measured() {
        // 10 s at 16 Mb/s, fault at 10, five seconds at 4, back to 15.
        let mut series = vec![16.0; 10];
        series.extend([4.0; 5]);
        series.extend([15.0; 10]);
        let m = episode_metrics(10.0, &series, &[10.5], &[(9.5, 3), (16.0, 45)], 0.9);
        assert!((m.baseline_mbps - 16.0).abs() < 1e-9);
        assert_eq!(m.time_to_detect_secs, Some(0.5));
        // 15 ≥ 0.9 × 16 = 14.4 first holds at s = 15.
        assert_eq!(m.time_to_reconverge_secs, Some(5.0));
        assert!((m.dip_area_mbit - 5.0 * 12.0).abs() < 1e-9, "{}", m.dip_area_mbit);
        assert_eq!(m.packets_lost, 42);
    }

    #[test]
    fn a_fault_with_no_recovery_reports_none() {
        let mut series = vec![10.0; 5];
        series.extend([1.0; 10]);
        let m = episode_metrics(5.0, &series, &[], &[], 0.9);
        assert_eq!(m.time_to_detect_secs, None);
        assert_eq!(m.time_to_reconverge_secs, None);
        assert!((m.dip_area_mbit - 10.0 * 9.0).abs() < 1e-9);
    }

    #[test]
    fn episodes_collapse_simultaneous_twin_faults() {
        use crate::injector::{CompiledFault, FaultAction};
        use empower_model::LinkId;
        let f = |at: f64, link: u32, disruptive: bool| CompiledFault {
            at,
            action: FaultAction::SetCapacity { link: LinkId(link), capacity_mbps: 0.0 },
            disruptive,
        };
        let faults = [f(10.0, 2, true), f(10.0, 3, true), f(40.0, 2, false), f(50.0, 0, true)];
        assert_eq!(episode_times(&faults), vec![10.0, 50.0]);
    }
}
