//! Executing a scenario against the packet-level engine.
//!
//! The driver owns the §3.2 control loop the engine itself deliberately
//! does not have: it polls each flow's
//! [`RouteMonitor`](empower_core::RouteMonitor) every `run.poll_secs` of
//! virtual time, recomputes routes when the monitor triggers, swaps them
//! into the running simulation (fresh congestion-controller state, as
//! [`Simulation::replace_routes`] specifies), and keeps retrying
//! disconnected flows until the topology lets them back in. Everything it
//! observes — fault times, detections, reroutes, drop samples — feeds the
//! [`crate::resilience`] metrics.

use empower_core::{EmpowerError, RouteMonitor, RunConfig};
use empower_model::rng::{SeedableRng, StdRng};
use empower_model::topology::{enterprise, fig1_scenario, residential, testbed22};
use empower_model::{CarrierSense, InterferenceMap, InterferenceModel, Network, SharedMedium};
use empower_sim::{SimConfig, SimReport, TrafficPattern};
use empower_telemetry::{CounterType, Telemetry};

use crate::injector::{self, CompiledFault};
use crate::resilience::{episode_metrics, episode_times, FaultMetrics};
use crate::scenario::{PatternSpec, Scenario, ScenarioError, TopologyKind};

/// One route replacement the driver performed.
#[derive(Debug, Clone, PartialEq)]
pub struct Reroute {
    /// Scenario flow index.
    pub flow: usize,
    /// Virtual time of the poll that triggered it.
    pub at: f64,
    /// The monitor's reason label (`"link-failure"`, `"capacity-shift"`)
    /// or `"reconnected"` for a flow coming back from disconnection.
    pub reason: String,
    /// Number of routes installed (0 = the flow went disconnected).
    pub routes: usize,
}

/// Everything a scenario run produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The engine's end-of-run report.
    pub report: SimReport,
    /// The compiled fault list that was injected.
    pub faults: Vec<CompiledFault>,
    /// Per-episode resilience metrics, in fault order.
    pub resilience: Vec<FaultMetrics>,
    /// Every route change the driver performed.
    pub reroutes: Vec<Reroute>,
    /// Aggregate goodput per whole second, summed over flows.
    pub aggregate_series: Vec<f64>,
    /// Scenario flow index → engine flow index (`None` = never had a
    /// route).
    pub flow_mapping: Vec<Option<usize>>,
}

/// Builds the scenario's base network and interference map.
///
/// `fig1` uses the paper's shared-medium worst case; the randomized
/// classes and the testbed use carrier-sense interference, matching the
/// §5/§6 experiment runners.
pub fn build_topology(scenario: &Scenario) -> (Network, InterferenceMap) {
    match scenario.topology.kind {
        TopologyKind::Fig1 => {
            let s = fig1_scenario();
            let imap = SharedMedium.build_map(&s.net);
            (s.net, imap)
        }
        TopologyKind::Residential => {
            let mut rng = StdRng::seed_from_u64(scenario.topology.seed);
            let t = residential(&mut rng);
            let imap = CarrierSense::default().build_map(&t.net);
            (t.net, imap)
        }
        TopologyKind::Enterprise => {
            let mut rng = StdRng::seed_from_u64(scenario.topology.seed);
            let t = enterprise(&mut rng);
            let imap = CarrierSense::default().build_map(&t.net);
            (t.net, imap)
        }
        TopologyKind::Testbed => {
            let t = testbed22(scenario.topology.seed);
            let imap = CarrierSense::default().build_map(&t.net);
            (t.net, imap)
        }
    }
}

fn pattern(p: &PatternSpec) -> TrafficPattern {
    match *p {
        PatternSpec::Saturated { start, stop } => TrafficPattern::SaturatedUdp { start, stop },
        PatternSpec::File { start, size_bytes } => {
            TrafficPattern::FileDownload { start, size_bytes }
        }
        PatternSpec::Tcp { start, stop, size_bytes } => {
            TrafficPattern::Tcp { start, stop, size_bytes }
        }
    }
}

/// Per-flow monitor state across polls.
enum FlowWatch {
    /// Routes installed; the monitor watches their links.
    Monitoring(RouteMonitor),
    /// No route exists right now; retry every poll.
    Disconnected,
}

/// Runs the scenario on its own declared topology.
///
/// # Errors
/// [`ScenarioError`] if an event addresses a link or node the topology
/// does not have, or no flow resolves a node id.
pub fn run_scenario(
    scenario: &Scenario,
    tele: &Telemetry,
) -> Result<ScenarioOutcome, ScenarioError> {
    let (net, imap) = build_topology(scenario);
    run_scenario_on(scenario, &net, &imap, tele)
}

/// Runs the scenario on an explicit network (tests, custom topologies).
///
/// # Errors
/// See [`run_scenario`].
pub fn run_scenario_on(
    scenario: &Scenario,
    net: &Network,
    imap: &InterferenceMap,
    tele: &Telemetry,
) -> Result<ScenarioOutcome, ScenarioError> {
    scenario.validate()?;
    for (i, f) in scenario.flows.iter().enumerate() {
        for (label, id) in [("src", f.src), ("dst", f.dst)] {
            if id as usize >= net.node_count() {
                return Err(ScenarioError {
                    path: format!("flows[{i}].{label}"),
                    message: format!("node {id} does not exist"),
                });
            }
        }
    }
    let faults = injector::compile(scenario, net, imap)?;

    let config =
        RunConfig::new(scenario.run.scheme).delta(scenario.run.delta).telemetry(tele.clone());
    let sim_config =
        SimConfig { delta: scenario.run.delta, seed: scenario.run.seed, ..SimConfig::default() };
    let flows: Vec<_> = scenario
        .flows
        .iter()
        .map(|f| (empower_model::NodeId(f.src), empower_model::NodeId(f.dst), pattern(&f.pattern)))
        .collect();
    let (mut sim, flow_mapping) = config
        .build_simulation(net, imap, &flows, sim_config)
        // empower-lint: allow(D005) — the RunConfig built above leaves
        // strict connectivity off, which is build_simulation's only error.
        .expect("strict connectivity is off; build cannot fail");
    injector::schedule(&mut sim, &faults);

    // One monitor per engine-mapped flow, watching the routes the builder
    // just installed (recomputed here — route computation is
    // deterministic, so these are the installed ones).
    let mut watches: Vec<(usize, usize, FlowWatch)> = Vec::new();
    for (scn_idx, mapped) in flow_mapping.iter().enumerate() {
        let Some(engine_idx) = *mapped else { continue };
        let (src, dst, _) = flows[scn_idx];
        let watch = match config.routes(net, imap, src, dst) {
            Ok(routes) => FlowWatch::Monitoring(config.monitor(net, src, dst, &routes)),
            Err(_) => FlowWatch::Disconnected,
        };
        watches.push((scn_idx, engine_idx, watch));
    }

    let horizon = scenario.run.horizon_secs;
    let poll = scenario.run.poll_secs;
    let reroute_counter = tele.counter("dynamics/reroutes", CounterType::Packets);
    let mut reroutes: Vec<Reroute> = Vec::new();
    let mut detections: Vec<f64> = Vec::new();
    let mut drops: Vec<(f64, u64)> = Vec::new();

    let mut tick = 1u64;
    loop {
        let t = (tick as f64 * poll).min(horizon);
        sim.run_until(t);
        let polled = sim.report(t);
        let in_network_drops: u64 = polled.flows.iter().map(|f| f.dropped_in_network).sum();
        drops.push((t, in_network_drops));

        for (scn_idx, engine_idx, watch) in &mut watches {
            match watch {
                FlowWatch::Monitoring(monitor) => {
                    let Ok(Some(reason)) = monitor.try_check(sim.network()) else { continue };
                    detections.push(t);
                    tele.event(
                        "dynamics",
                        "detected",
                        &[("flow", (*scn_idx as u64).into()), ("reason", reason.label().into())],
                    );
                    match monitor.recompute_after(sim.network(), imap, reason) {
                        Ok(routes) => {
                            let installed = sim.replace_routes(*engine_idx, routes.paths());
                            reroute_counter.inc();
                            reroutes.push(Reroute {
                                flow: *scn_idx,
                                at: t,
                                reason: reason.label().to_string(),
                                routes: installed,
                            });
                            if installed == 0 {
                                *watch = FlowWatch::Disconnected;
                            }
                        }
                        Err(EmpowerError::Disconnected { .. }) => {
                            reroutes.push(Reroute {
                                flow: *scn_idx,
                                at: t,
                                reason: reason.label().to_string(),
                                routes: 0,
                            });
                            *watch = FlowWatch::Disconnected;
                        }
                        Err(_) => {}
                    }
                }
                FlowWatch::Disconnected => {
                    let (src, dst, _) = flows[*scn_idx];
                    let Ok(routes) = config.routes(sim.network(), imap, src, dst) else {
                        continue;
                    };
                    let installed = sim.replace_routes(*engine_idx, routes.paths());
                    if installed == 0 {
                        continue;
                    }
                    reroute_counter.inc();
                    reroutes.push(Reroute {
                        flow: *scn_idx,
                        at: t,
                        reason: "reconnected".to_string(),
                        routes: installed,
                    });
                    *watch =
                        FlowWatch::Monitoring(config.monitor(sim.network(), src, dst, &routes));
                }
            }
        }
        if t >= horizon {
            break;
        }
        tick += 1;
    }

    let report = sim.report(horizon);
    let mut aggregate_series = vec![0.0f64; horizon.ceil() as usize];
    for f in &report.flows {
        for (s, &r) in f.throughput_series.iter().enumerate() {
            if s < aggregate_series.len() {
                aggregate_series[s] += r;
            }
        }
    }

    let resilience: Vec<FaultMetrics> = episode_times(&faults)
        .into_iter()
        .map(|fault_at| {
            episode_metrics(
                fault_at,
                &aggregate_series,
                &detections,
                &drops,
                scenario.run.recovery_fraction,
            )
        })
        .collect();
    record_resilience(tele, &resilience);

    Ok(ScenarioOutcome { report, faults, resilience, reroutes, aggregate_series, flow_mapping })
}

/// Publishes the per-episode metrics as telemetry gauges
/// (`dynamics/episodeN/...`, millisecond-rounded where the unit is time,
/// so snapshots stay bit-stable across platforms).
fn record_resilience(tele: &Telemetry, resilience: &[FaultMetrics]) {
    for (i, m) in resilience.iter().enumerate() {
        let gauge = |name: &str, v: u64| {
            tele.counter(format!("dynamics/episode{i}/{name}"), CounterType::Gauge).set(v);
        };
        gauge("fault_at_ms", (m.fault_at_secs * 1e3).round() as u64);
        gauge("baseline_kbps", (m.baseline_mbps * 1e3).round() as u64);
        if let Some(d) = m.time_to_detect_secs {
            gauge("time_to_detect_ms", (d * 1e3).round() as u64);
        }
        if let Some(r) = m.time_to_reconverge_secs {
            gauge("time_to_reconverge_ms", (r * 1e3).round() as u64);
        }
        gauge("dip_area_kbit", (m.dip_area_mbit * 1e3).round() as u64);
        gauge("packets_lost", m.packets_lost);
    }
}
