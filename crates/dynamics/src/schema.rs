//! Shared helpers for versioned TOML/JSON scenario schemas.
//!
//! The dynamics scenario codec ([`crate::scenario`]) and the workload DSL
//! (`empower-workload`) follow the same conventions: a `schema` version
//! field checked on parse, dotted field paths in every error, required/
//! optional typed field accessors, and arrays of tables decoded
//! element-wise with indexed paths (`clients[2].rate_mbps`). This module
//! is those conventions as code, so sibling schemas stay consistent
//! instead of re-implementing field plumbing.

use empower_telemetry::Json;

use crate::scenario::ScenarioError;

/// Shorthand for a failed schema lookup at `path`.
pub fn serr<T>(path: impl Into<String>, message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError { path: path.into(), message: message.into() })
}

/// Joins a dotted field path with a key (`events[2]` + `link` →
/// `events[2].link`).
pub fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Required string field.
pub fn req_str<'a>(v: &'a Json, key: &str, path: &str) -> Result<&'a str, ScenarioError> {
    v.get(key).and_then(Json::as_str).ok_or_else(|| ScenarioError {
        path: join(path, key),
        message: "missing or not a string".into(),
    })
}

/// Required numeric field.
pub fn req_f64(v: &Json, key: &str, path: &str) -> Result<f64, ScenarioError> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| ScenarioError {
        path: join(path, key),
        message: "missing or not a number".into(),
    })
}

/// Required non-negative integer field.
pub fn req_u64(v: &Json, key: &str, path: &str) -> Result<u64, ScenarioError> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| ScenarioError {
        path: join(path, key),
        message: "missing or not a non-negative integer".into(),
    })
}

/// Optional numeric field (present ⇒ must be a number).
pub fn opt_f64(v: &Json, key: &str, path: &str) -> Result<Option<f64>, ScenarioError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| ScenarioError { path: join(path, key), message: "not a number".into() }),
    }
}

/// Optional non-negative integer field (present ⇒ must be an integer).
pub fn opt_u64(v: &Json, key: &str, path: &str) -> Result<Option<u64>, ScenarioError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| ScenarioError {
            path: join(path, key),
            message: "not a non-negative integer".into(),
        }),
    }
}

/// Optional boolean field with a default (non-booleans fall back too).
pub fn opt_bool(v: &Json, key: &str, default: bool) -> bool {
    match v.get(key) {
        Some(Json::Bool(b)) => *b,
        _ => default,
    }
}

/// Optional string field (present ⇒ must be a string).
pub fn opt_str<'a>(v: &'a Json, key: &str, path: &str) -> Result<Option<&'a str>, ScenarioError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| ScenarioError { path: join(path, key), message: "not a string".into() }),
    }
}

/// Decodes the optional array of tables at `key` element-wise, handing each
/// decoder its indexed path (`key[i]`). A missing key is an empty list.
pub fn arr_of<T>(
    doc: &Json,
    key: &str,
    f: impl Fn(&Json, String) -> Result<T, ScenarioError>,
) -> Result<Vec<T>, ScenarioError> {
    match doc.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => {
            items.iter().enumerate().map(|(i, item)| f(item, format!("{key}[{i}]"))).collect()
        }
        Some(_) => serr(key, "not an array"),
    }
}

/// Checks the document's `schema` field against the expected major version;
/// a missing or mismatched version is a parse error, not a silent misread.
pub fn check_schema_version(doc: &Json, expected: u64) -> Result<(), ScenarioError> {
    let v = req_u64(doc, "schema", "")?;
    if v != expected {
        return serr(
            "schema",
            format!("unsupported schema version {v} (this crate reads {expected})"),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_join_with_dots() {
        assert_eq!(join("", "schema"), "schema");
        assert_eq!(join("events[2]", "link"), "events[2].link");
    }

    #[test]
    fn required_fields_report_dotted_paths() {
        let doc = Json::obj([("name", Json::Str("x".into()))]);
        let e = req_f64(&doc, "at", "events[0]").unwrap_err();
        assert_eq!(e.path, "events[0].at");
        assert!(req_str(&doc, "name", "").is_ok());
    }

    #[test]
    fn optional_fields_distinguish_missing_from_mistyped() {
        let doc = Json::obj([("rate", Json::Str("fast".into()))]);
        assert_eq!(opt_f64(&doc, "absent", "").unwrap(), None);
        assert!(opt_f64(&doc, "rate", "clients[0]").is_err());
        assert_eq!(opt_str(&doc, "rate", "").unwrap(), Some("fast"));
        assert!(opt_bool(&doc, "absent", true));
    }

    #[test]
    fn arrays_decode_with_indexed_paths() {
        let doc = Json::obj([(
            "xs",
            Json::Arr(vec![Json::obj([("v", Json::UInt(1))]), Json::obj([("w", Json::UInt(2))])]),
        )]);
        let e = arr_of(&doc, "xs", |item, path| req_u64(item, "v", &path)).unwrap_err();
        assert_eq!(e.path, "xs[1].v");
    }

    #[test]
    fn schema_versions_gate_parsing() {
        let ok = Json::obj([("schema", Json::UInt(1))]);
        assert!(check_schema_version(&ok, 1).is_ok());
        assert!(check_schema_version(&ok, 2).is_err());
        assert!(check_schema_version(&Json::Obj(Vec::new()), 1).is_err());
    }
}
