#![forbid(unsafe_code)]
//! Scenario-driven network dynamics and fault injection for the EMPoWER
//! reproduction.
//!
//! The paper's story is ultimately about *change*: PLC capacity collapses
//! when an appliance switches on, WiFi links fade, nodes reboot — and the
//! hybrid stack is judged by how it rides these out (§3.2's route
//! recomputation, §6.4's recovery behaviour). This crate makes that
//! testable with three layers:
//!
//! 1. **Scenario model** ([`scenario`]) — a declarative, versioned
//!    timeline of perturbations (capacity steps and drifts, link and node
//!    outages, PLC-noise and WiFi-jam bursts) plus seeded stochastic
//!    generators (Markov on/off churn, Gilbert–Elliott flapping),
//!    serialized as TOML ([`toml`]) or JSON. Same file, same seed → same
//!    run, byte for byte.
//! 2. **Injector** ([`injector`]) — compiles a scenario against a concrete
//!    network into timestamped [`injector::FaultAction`]s, then either
//!    schedules them on the packet engine's virtual clock or replays them
//!    onto a plain [`Network`](empower_model::Network) for the fluid
//!    evaluators ([`fluid`]).
//! 3. **Resilience metrics** ([`resilience`]) — the driver ([`driver`])
//!    polls a [`RouteMonitor`](empower_core::RouteMonitor) per flow while
//!    the scenario unfolds, reroutes on triggers, and distils each fault
//!    into time-to-detect, time-to-reconverge, throughput-dip area and
//!    packets lost.
//!
//! ```
//! use empower_dynamics::{run_scenario, Scenario};
//! use empower_telemetry::Telemetry;
//!
//! let text = r#"
//! schema = 1
//! name = "wifi backhaul drop"
//!
//! [topology]
//! kind = "fig1"
//!
//! [run]
//! scheme = "EMPoWER"
//! horizon_secs = 30.0
//!
//! [[flows]]
//! src = 0
//! dst = 2
//! pattern = "saturated"
//! stop = 30.0
//!
//! [[events]]
//! at = 10.0
//! kind = "link_down"
//! link = 2
//! "#;
//! let scenario = Scenario::parse_str(text).unwrap();
//! let outcome = run_scenario(&scenario, &Telemetry::disabled()).unwrap();
//! assert_eq!(outcome.resilience.len(), 1);
//! ```

pub mod driver;
pub mod fluid;
pub mod injector;
pub mod resilience;
pub mod scenario;
pub mod schema;
pub mod toml;

pub use driver::{run_scenario, run_scenario_on, Reroute, ScenarioOutcome};
pub use fluid::{fluid_timeline, fluid_timeline_on, FluidSegment};
pub use injector::{compile, schedule, CompiledFault, FaultAction, NetMutator};
pub use resilience::{episode_metrics, episode_times, FaultMetrics};
pub use scenario::{
    FlowSpec, GeneratorSpec, PatternSpec, Perturbation, RunSpec, Scenario, ScenarioError,
    TimedPerturbation, TopologyKind, TopologySpec, SCHEMA_VERSION,
};
pub use toml::{to_toml_string, TomlError};
