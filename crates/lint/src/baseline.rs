//! The baseline ratchet: a checked-in inventory of grandfathered
//! violations that may only shrink.
//!
//! Each line grants `<rule> <count> <file>` pre-existing violations. At
//! report time, per-(file, rule) groups within their allowance move from
//! the failing list to the informational `baselined` list; groups that
//! *exceed* their allowance fail wholesale (no partial credit — the diff
//! that added the new site must remove it). When a run passes with fewer
//! violations than allowed, [`Baseline::tightened`] yields the shrunken
//! file to write back, so the ceiling follows the cleanup down
//! automatically and new code always enters at zero.

use std::collections::BTreeMap;

use crate::report::Report;
use crate::rules::Violation;

/// Parsed baseline: allowed violation count per (file, rule name).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parses baseline text. Lines are `<rule> <count> <file>`; blank
    /// lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(count), Some(file), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<rule> <count> <file>`, got `{line}`",
                    idx + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
            if count == 0 {
                return Err(format!(
                    "baseline line {}: zero-count entries must be deleted, not kept",
                    idx + 1
                ));
            }
            if entries.insert((file.to_string(), rule.to_string()), count).is_some() {
                return Err(format!(
                    "baseline line {}: duplicate entry for {rule} in {file}",
                    idx + 1
                ));
            }
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline in its canonical sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# empower-lint baseline: grandfathered violations, `<rule> <count> <file>`.\n\
             # Counts may only decrease; `--baseline` rewrites this file when they do.\n",
        );
        for ((file, rule), count) in &self.entries {
            out.push_str(&format!("{rule} {count} {file}\n"));
        }
        out
    }

    /// True when the baseline grants nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies the ratchet to `report`: moves within-allowance groups to
    /// `report.baselined`, leaves the rest failing, and returns the
    /// tightened baseline reflecting what this run actually needed.
    pub fn apply(&self, report: &mut Report) -> Baseline {
        let mut groups: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
        for v in report.violations.drain(..) {
            groups.entry((v.file.clone(), v.rule.name().to_string())).or_default().push(v);
        }
        let mut tightened = BTreeMap::new();
        for (key, group) in groups {
            let allowed = self.entries.get(&key).copied().unwrap_or(0);
            if group.len() <= allowed {
                tightened.insert(key, group.len());
                report.baselined.extend(group);
            } else {
                // Over the allowance: the whole group fails, and the
                // ratchet keeps (not raises) the old ceiling.
                if allowed > 0 {
                    tightened.insert(key, allowed);
                }
                report.violations.extend(group);
            }
        }
        tightened.retain(|_, count| *count > 0);
        Baseline { entries: tightened }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn violation(rule: Rule, file: &str, line: u32) -> Violation {
        Violation { rule, file: file.into(), line, message: "m".into() }
    }

    fn report_with(violations: Vec<Violation>) -> Report {
        Report { violations, ..Report::default() }
    }

    #[test]
    fn parse_and_render_round_trip() {
        let text = "# header\nD005 2 crates/x/src/lib.rs\nD001 1 crates/y/src/lib.rs\n";
        let b = Baseline::parse(text).expect("valid");
        let rendered = b.render();
        assert!(rendered.contains("D001 1 crates/y/src/lib.rs\n"));
        assert_eq!(Baseline::parse(&rendered).expect("round-trip"), b);
        assert!(Baseline::parse("D005 two f.rs\n").is_err());
        assert!(Baseline::parse("D005 0 f.rs\n").is_err());
        assert!(Baseline::parse("D005 1 f.rs\nD005 1 f.rs\n").is_err());
        assert!(Baseline::parse("D005 1\n").is_err());
    }

    #[test]
    fn within_allowance_is_baselined_and_tightens() {
        let b = Baseline::parse("D005 3 f.rs\n").unwrap();
        let mut r =
            report_with(vec![violation(Rule::D005, "f.rs", 1), violation(Rule::D005, "f.rs", 9)]);
        let tightened = b.apply(&mut r);
        assert!(r.violations.is_empty(), "within allowance: nothing fails");
        assert_eq!(r.baselined.len(), 2);
        // The ratchet follows the cleanup down: 3 allowed, 2 used.
        assert_eq!(tightened, Baseline::parse("D005 2 f.rs\n").unwrap());
    }

    #[test]
    fn adding_a_violation_fails_the_whole_group() {
        let b = Baseline::parse("D005 1 f.rs\n").unwrap();
        let mut r =
            report_with(vec![violation(Rule::D005, "f.rs", 1), violation(Rule::D005, "f.rs", 9)]);
        let tightened = b.apply(&mut r);
        assert_eq!(r.violations.len(), 2, "over allowance: no partial credit");
        assert!(r.baselined.is_empty());
        assert_eq!(tightened, b, "a failing run never loosens the ceiling");
    }

    #[test]
    fn clean_groups_vanish_from_the_tightened_baseline() {
        let b = Baseline::parse("D005 2 f.rs\nD001 1 g.rs\n").unwrap();
        let mut r = report_with(vec![violation(Rule::D001, "g.rs", 3)]);
        let tightened = b.apply(&mut r);
        assert!(r.violations.is_empty());
        assert_eq!(tightened, Baseline::parse("D001 1 g.rs\n").unwrap());
        // New code enters at zero: an empty baseline stays empty.
        let empty = Baseline::default();
        let mut clean = report_with(Vec::new());
        assert!(empty.apply(&mut clean).is_empty());
    }
}
