//! The domain lint rules (D001–D006) and the suppression-pragma machinery.
//!
//! Every rule is deliberately *syntactic*: the lexer guarantees that
//! comments and string literals cannot produce false positives, test-only
//! regions (`#[cfg(test)]` / `#[test]` items) are excluded, and anything
//! the rules cannot see (e.g. a `HashMap` hidden behind a type alias) is a
//! documented limitation, not a soundness requirement — the gate's job is
//! to keep the *existing* determinism contract from regressing silently.

use std::fmt;

use crate::lexer::{lex, Lexed, TokKind};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Nondeterministic collection (`HashMap`/`HashSet`) in a deterministic
    /// crate.
    D001,
    /// Wall-clock time (`Instant::now` / `SystemTime`) outside the bench
    /// harness.
    D002,
    /// RNG construction not derived from a passed-in seed.
    D003,
    /// Float ordering via `partial_cmp().unwrap()/.expect()` instead of
    /// `total_cmp`.
    D004,
    /// `unwrap()` / `expect()` / `panic!` in a library crate's non-test
    /// code.
    D005,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    D006,
    /// A malformed suppression pragma (unknown rule id or missing reason).
    P001,
}

/// All enforceable rules, in report order.
pub const ALL_RULES: [Rule; 7] =
    [Rule::D001, Rule::D002, Rule::D003, Rule::D004, Rule::D005, Rule::D006, Rule::P001];

impl Rule {
    /// The canonical `Dxxx` name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::P001 => "P001",
        }
    }

    /// Parses a `Dxxx` name (as written in a pragma).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description used in summaries.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D001 => "nondeterministic collection iteration (HashMap/HashSet)",
            Rule::D002 => "wall-clock time outside the bench harness",
            Rule::D003 => "RNG not derived from a passed-in seed",
            Rule::D004 => "float ordering via partial_cmp().unwrap()",
            Rule::D005 => "unwrap()/expect()/panic! in library non-test code",
            Rule::D006 => "missing #![forbid(unsafe_code)] in crate root",
            Rule::P001 => "malformed empower-lint pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// What the walker knows about a file before the rules run.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path, used verbatim in diagnostics.
    pub path: String,
    /// Cargo package name, e.g. `empower-sim`.
    pub crate_name: String,
    /// True for `lib.rs` and `main.rs`/`src/bin/*.rs` roots (D006 scope).
    pub is_crate_root: bool,
    /// True for binary targets (`src/bin/**`, `main.rs`) — CLI surfaces may
    /// fail fast, so D005 does not apply.
    pub is_bin: bool,
}

/// Crates whose whole purpose is wall-clock measurement: D002 exempt.
const WALL_CLOCK_CRATES: [&str; 1] = ["empower-bench"];

/// Crates exempt from the no-panic rule: the bench harness aborts on
/// malformed sweeps by design, and the testbed binaries are figure
/// reproduction scripts, not servable library surface.
const PANIC_EXEMPT_CRATES: [&str; 1] = ["empower-bench"];

/// Lints `src` as the file described by `ctx`. This is the whole analysis
/// for one file; the binary's walker and the fixture tests both call it.
pub fn lint_source(ctx: &FileContext, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let mut out = Vec::new();
    let pragmas = collect_pragmas(ctx, &lexed, &mut out);
    let test_lines = test_line_spans(&lexed);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);

    let mut push = |rule: Rule, line: u32, message: String| {
        if pragmas.suppresses(rule, line) {
            return;
        }
        out.push(Violation { rule, file: ctx.path.clone(), line, message });
    };

    // --- Token-stream rules -------------------------------------------
    for i in 0..lexed.tokens.len() {
        let line = lexed.tokens[i].line;
        let TokKind::Ident(ident) = &lexed.tokens[i].kind else { continue };
        if in_test(line) {
            continue;
        }
        match ident.as_str() {
            // D001 — any appearance of a hash container in non-test code.
            // Iteration-site detection would need type inference; banning
            // the type forces either an ordered container or a pragma that
            // documents why iteration order cannot escape.
            "HashMap" | "HashSet" => push(
                Rule::D001,
                line,
                format!(
                    "`{ident}` in deterministic crate `{}` — use BTreeMap/BTreeSet (or \
                     document why iteration order cannot escape with `// empower-lint: \
                     allow(D001) — <reason>`)",
                    ctx.crate_name
                ),
            ),
            // D002 — wall-clock reads.
            "Instant" | "SystemTime" => {
                if WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
                    continue;
                }
                // `Instant` as a bare ident could be a re-export; both the
                // type and `::now` construction are equally off-limits in
                // deterministic crates, so flag the ident itself.
                push(
                    Rule::D002,
                    line,
                    format!(
                        "wall-clock `{ident}` outside the bench harness — simulated \
                         components must take time from the virtual clock"
                    ),
                );
            }
            // D003 — entropy-seeded RNG construction.
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => push(
                Rule::D003,
                line,
                format!(
                    "`{ident}` constructs an RNG from ambient entropy — derive every \
                     RNG from a seed carried by the scenario/config"
                ),
            ),
            // D004 — partial_cmp(..).unwrap()/.expect(..).
            "partial_cmp" => {
                if let Some((term_line, method)) = call_then_unwrap(&lexed, i) {
                    push(
                        Rule::D004,
                        term_line,
                        format!(
                            "`partial_cmp(..).{method}()` — use `f64::total_cmp` for \
                             deterministic, panic-free float ordering"
                        ),
                    );
                }
            }
            // D005 — panicking operators in library code.
            "unwrap" | "expect" => {
                if ctx.is_bin || PANIC_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
                    continue;
                }
                // Only method calls: `.unwrap(` / `.expect(`. This leaves
                // `unwrap_or`/`unwrap_or_else` (total) and local idents
                // alone; the lexer split means we must look at neighbors.
                let method_call = i > 0
                    && lexed.punct(i - 1, '.')
                    && lexed.punct(i + 1, '(')
                    // `.unwrap()` after `partial_cmp` is already D004;
                    // don't double-report the same token.
                    && !follows_partial_cmp(&lexed, i)
                    // `.expect(..)?` propagates an error instead of
                    // panicking — a same-named fallible method (e.g. a
                    // parser's `expect(token)`), not `Option::expect`.
                    && !call_propagates(&lexed, i);
                if method_call {
                    push(
                        Rule::D005,
                        line,
                        format!(
                            "`.{ident}()` in library crate `{}` — return the crate's \
                             error type (or justify the invariant with a pragma)",
                            ctx.crate_name
                        ),
                    );
                }
            }
            "panic" => {
                if ctx.is_bin || PANIC_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
                    continue;
                }
                if lexed.punct(i + 1, '!') {
                    push(
                        Rule::D005,
                        line,
                        format!(
                            "`panic!` in library crate `{}` — route the failure through \
                             an error type",
                            ctx.crate_name
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // --- D006: crate roots must forbid unsafe code --------------------
    if ctx.is_crate_root && !has_forbid_unsafe(&lexed) && !pragmas.suppresses(Rule::D006, 1) {
        out.push(Violation {
            rule: Rule::D006,
            file: ctx.path.clone(),
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// True when the `.unwrap`/`.expect` at ident index `i` closes a
/// `partial_cmp(...)` call (so D004 owns the diagnostic).
fn follows_partial_cmp(lexed: &Lexed, i: usize) -> bool {
    // Walk back over `)` ... `(` to the ident that owns the call.
    if i < 2 || !lexed.punct(i - 2, ')') {
        return false;
    }
    let mut depth = 0usize;
    let mut j = i - 2;
    loop {
        match &lexed.tokens[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return j >= 1 && lexed.ident(j - 1) == Some("partial_cmp");
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
}

/// True when the call starting at ident index `i` (with `(` at `i + 1`) is
/// immediately followed by `?` — error propagation, not a panic site.
fn call_propagates(lexed: &Lexed, i: usize) -> bool {
    if !lexed.punct(i + 1, '(') {
        return false;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < lexed.tokens.len() {
        match &lexed.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return lexed.punct(j + 1, '?');
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// If ident index `i` starts a call `ident(...)` whose value is immediately
/// `.unwrap()`d or `.expect(..)`ed, returns the line of the terminal method
/// and its name.
fn call_then_unwrap(lexed: &Lexed, i: usize) -> Option<(u32, &'static str)> {
    if !lexed.punct(i + 1, '(') {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < lexed.tokens.len() {
        match &lexed.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j + 2 >= lexed.tokens.len() || !lexed.punct(j + 1, '.') {
        return None;
    }
    match lexed.ident(j + 2) {
        Some("unwrap") if lexed.punct(j + 3, '(') => Some((lexed.tokens[j + 2].line, "unwrap")),
        Some("expect") if lexed.punct(j + 3, '(') => Some((lexed.tokens[j + 2].line, "expect")),
        _ => None,
    }
}

/// True if the token stream contains the inner attribute
/// `#![forbid(unsafe_code)]` (possibly alongside other forbids).
fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    for i in 0..lexed.tokens.len() {
        if lexed.punct(i, '#')
            && lexed.punct(i + 1, '!')
            && lexed.punct(i + 2, '[')
            && lexed.ident(i + 3) == Some("forbid")
        {
            // Scan the attribute body for `unsafe_code`.
            let mut j = i + 4;
            while j < lexed.tokens.len() && !lexed.punct(j, ']') {
                if lexed.ident(j) == Some("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

/// Line spans (inclusive) of test-only items: any item annotated
/// `#[cfg(test)]`, `#[test]`, or `#[bench]`, including the whole body of a
/// `#[cfg(test)] mod tests { ... }`.
fn test_line_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !(lexed.punct(i, '#') && lexed.punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's identifiers up to the matching `]`.
        let start_line = toks[i].line;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) => idents.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr =
            (idents.contains(&"test") || idents.contains(&"bench")) && !idents.contains(&"not");
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while lexed.punct(j, '#') && lexed.punct(j + 1, '[') {
            let mut d = 1usize;
            j += 2;
            while j < toks.len() && d > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // The item body: first `{` at depth 0 (fn/mod/impl/struct), or a
        // `;` first for `use`/unit items.
        let mut body_depth = 0usize;
        let mut end_line = start_line;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct(';') if body_depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                TokKind::Punct('{') => body_depth += 1,
                TokKind::Punct('}') => {
                    body_depth -= 1;
                    if body_depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

/// Parsed suppression pragmas for one file.
#[derive(Debug, Default)]
struct Pragmas {
    /// (rule, first line, last line): the inclusive line range a pragma
    /// suppresses — its own line through the first line after the comment
    /// block it opens (so a pragma whose explanation wraps onto further
    /// `//` lines still covers the code beneath).
    line_allows: Vec<(Rule, u32, u32)>,
    /// Whole-file allowances.
    file_allows: Vec<Rule>,
}

impl Pragmas {
    fn suppresses(&self, rule: Rule, line: u32) -> bool {
        self.file_allows.contains(&rule)
            || self.line_allows.iter().any(|&(r, lo, hi)| r == rule && lo <= line && line <= hi)
    }
}

/// The pragma grammar, kept deliberately rigid so suppressions stay
/// greppable and always carry a reason:
///
/// ```text
/// // empower-lint: allow(D001) — iteration order never escapes: keys only
/// // empower-lint: allow-file(D002, D003) — bench-only helper module
/// ```
///
/// A pragma on its own line covers the comment block it opens plus the
/// first line after it (so explanations may wrap onto further comment
/// lines); a trailing pragma covers its own line. The em-dash may be
/// written `—`, `--`, or `-`.
fn collect_pragmas(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Violation>) -> Pragmas {
    const TAG: &str = "empower-lint:";
    let mut pragmas = Pragmas::default();
    for c in &lexed.comments {
        let Some(pos) = c.text.find(TAG) else { continue };
        let rest = c.text[pos + TAG.len()..].trim_start();
        let mut bad = |msg: String| {
            out.push(Violation {
                rule: Rule::P001,
                file: ctx.path.clone(),
                line: c.line,
                message: msg,
            });
        };
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            bad(format!(
                "unrecognized pragma `{}` (expected `allow(..)` or `allow-file(..)`)",
                rest.trim()
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(close) = rest.find(')') else {
            bad("pragma rule list is not closed with `)`".to_string());
            continue;
        };
        let Some(list) = rest.strip_prefix('(').map(|r| &r[..close - 1]) else {
            bad("pragma is missing its `(rule, ..)` list".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for part in list.split(',') {
            match Rule::parse(part.trim()) {
                Some(r) => rules.push(r),
                None => {
                    bad(format!("unknown rule `{}` in pragma", part.trim()));
                    ok = false;
                }
            }
        }
        // The reason is mandatory: a separator dash plus non-empty text.
        let after = rest[close + 1..].trim_start();
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|d| after.strip_prefix(d))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            bad("pragma carries no reason — write `… — <why this site is sound>`".to_string());
            ok = false;
        }
        if !ok {
            continue;
        }
        // Extend coverage through contiguous comment lines, so a pragma
        // whose reason wraps still reaches the code line beneath it.
        let mut end = c.line;
        while lexed.comments.iter().any(|other| other.line == end + 1) {
            end += 1;
        }
        for r in rules {
            if file_wide {
                pragmas.file_allows.push(r);
            } else {
                pragmas.line_allows.push((r, c.line, end + 1));
            }
        }
    }
    pragmas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileContext {
        FileContext {
            path: "crates/x/src/lib.rs".into(),
            crate_name: "empower-x".into(),
            is_crate_root: false,
            is_bin: false,
        }
    }

    fn rules_of(src: &str) -> Vec<Rule> {
        lint_source(&ctx(), src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hash_containers_are_flagged_outside_tests() {
        assert_eq!(rules_of("use std::collections::HashMap;\n"), vec![Rule::D001]);
        assert!(rules_of("#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n").is_empty());
    }

    #[test]
    fn pragma_suppresses_line_and_next() {
        let src = "// empower-lint: allow(D001) — probe-order only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(rules_of(src).is_empty());
        let trailing =
            "use std::collections::HashMap; // empower-lint: allow(D001) — not iterated\n";
        assert!(rules_of(trailing).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_itself_a_violation() {
        let src = "// empower-lint: allow(D001)\nuse std::collections::HashMap;\n";
        let got = rules_of(src);
        assert!(got.contains(&Rule::P001));
        assert!(got.contains(&Rule::D001), "a reasonless pragma must not suppress");
    }

    #[test]
    fn partial_cmp_unwrap_is_d004_not_d005() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n";
        assert_eq!(rules_of(src), vec![Rule::D004]);
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).expect(\"finite\"); }\n";
        assert_eq!(rules_of(src), vec![Rule::D004]);
    }

    #[test]
    fn defining_partial_cmp_is_fine() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> \
                   { self.v.partial_cmp(&o.v) } }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        assert!(rules_of("fn f(x: Option<u32>) -> u32 { x.unwrap_or(1) }\n").is_empty());
        assert_eq!(rules_of("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"), vec![Rule::D005]);
    }

    #[test]
    fn propagated_expect_is_not_flagged() {
        // A fallible same-named method (e.g. a parser's `expect(token)`)
        // whose error is propagated with `?` is not a panic site.
        assert!(
            rules_of("fn f(p: &mut P) -> Result<(), E> { p.expect(b'[')?; Ok(()) }\n").is_empty()
        );
        assert_eq!(
            rules_of("fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n"),
            vec![Rule::D005]
        );
    }

    #[test]
    fn pragma_reason_may_wrap_onto_following_comment_lines() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // empower-lint: allow(D005) — a reason that wraps\n\
                   // onto a second comment line before the code.\n\
                   x.unwrap()\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn wall_clock_and_entropy() {
        assert_eq!(rules_of("fn f() { let t = Instant::now(); }\n"), vec![Rule::D002]);
        assert_eq!(rules_of("fn f() { let r = thread_rng(); }\n"), vec![Rule::D003]);
        let bench = FileContext { crate_name: "empower-bench".into(), ..ctx() };
        assert!(lint_source(&bench, "fn f() { let t = Instant::now(); }\n").is_empty());
    }

    #[test]
    fn crate_roots_need_forbid_unsafe() {
        let root = FileContext { is_crate_root: true, ..ctx() };
        let got = lint_source(&root, "pub fn f() {}\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, Rule::D006);
        assert!(lint_source(&root, "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn bins_may_panic_but_not_use_hash_containers() {
        let bin = FileContext { is_bin: true, ..ctx() };
        let src = "fn main() { let x: Option<u32> = None; x.unwrap(); }\n";
        assert!(lint_source(&bin, src).is_empty());
        assert_eq!(lint_source(&bin, "use std::collections::HashSet;\n")[0].rule, Rule::D001);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_of(src), vec![Rule::D005]);
    }
}
