//! The domain lint rules (D001–D011) and the suppression-pragma machinery.
//!
//! Every rule is deliberately *syntactic*: the lexer guarantees that
//! comments and string literals cannot produce false positives, test-only
//! regions (`#[cfg(test)]` / `#[test]` items) are excluded, and anything
//! the rules cannot see (e.g. a `HashMap` hidden behind a type alias) is a
//! documented limitation, not a soundness requirement — the gate's job is
//! to keep the *existing* determinism contract from regressing silently.
//!
//! The concurrency rules (D007–D010) additionally consult the phase-1
//! [`WorkspaceIndex`]: names are resolved through each file's `use` map
//! (so a wireless `channel` field never trips D007, while an aliased
//! `mpsc::channel` always does), and in-code `sanction(..)` pragmas mark
//! the one blessed implementation of each otherwise-forbidden pattern.

use std::collections::BTreeSet;
use std::fmt;

use crate::index::{canonicalize, collect_imports, env_reads, path_ending_at, WorkspaceIndex};
use crate::lexer::{lex, Lexed, TokKind};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Nondeterministic collection (`HashMap`/`HashSet`) in a deterministic
    /// crate.
    D001,
    /// Wall-clock time (`Instant::now` / `SystemTime`) outside the bench
    /// harness.
    D002,
    /// RNG construction not derived from a passed-in seed.
    D003,
    /// Float ordering via `partial_cmp().unwrap()/.expect()` instead of
    /// `total_cmp`.
    D004,
    /// `unwrap()` / `expect()` / `panic!` in a library crate's non-test
    /// code.
    D005,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    D006,
    /// Unordered cross-thread result collection: `std::sync::mpsc`
    /// channels or completion-order merges into a shared locked
    /// collection.
    D007,
    /// `Ordering::Relaxed` on a read-modify-write atomic operation
    /// outside the sanctioned work-cursor idiom.
    D008,
    /// Detached `thread::spawn` — the `JoinHandle` is dropped instead of
    /// joined or scoped.
    D009,
    /// `Mutex`/`RwLock` introduced into a hot-path crate without a
    /// justification pragma.
    D010,
    /// Undeclared ambient config: an `EMPOWER_*` env read missing from
    /// `crates/lint/env_registry.toml`.
    D011,
    /// A malformed suppression pragma (unknown rule id or missing reason).
    P001,
}

/// All enforceable rules, in report order.
pub const ALL_RULES: [Rule; 12] = [
    Rule::D001,
    Rule::D002,
    Rule::D003,
    Rule::D004,
    Rule::D005,
    Rule::D006,
    Rule::D007,
    Rule::D008,
    Rule::D009,
    Rule::D010,
    Rule::D011,
    Rule::P001,
];

impl Rule {
    /// The canonical `Dxxx` name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::D007 => "D007",
            Rule::D008 => "D008",
            Rule::D009 => "D009",
            Rule::D010 => "D010",
            Rule::D011 => "D011",
            Rule::P001 => "P001",
        }
    }

    /// Parses a `Dxxx` name (as written in a pragma).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description used in summaries.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D001 => "nondeterministic collection iteration (HashMap/HashSet)",
            Rule::D002 => "wall-clock time outside the bench harness",
            Rule::D003 => "RNG not derived from a passed-in seed",
            Rule::D004 => "float ordering via partial_cmp().unwrap()",
            Rule::D005 => "unwrap()/expect()/panic! in library non-test code",
            Rule::D006 => "missing #![forbid(unsafe_code)] in crate root",
            Rule::D007 => {
                "unordered cross-thread result collection (mpsc / completion-order merge)"
            }
            Rule::D008 => "Ordering::Relaxed read-modify-write outside the sanctioned work cursor",
            Rule::D009 => "detached thread::spawn (JoinHandle dropped, not joined or scoped)",
            Rule::D010 => "Mutex/RwLock in a hot-path crate without justification",
            Rule::D011 => "EMPOWER_* env read not declared in crates/lint/env_registry.toml",
            Rule::P001 => "malformed empower-lint pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// What the walker knows about a file before the rules run.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path, used verbatim in diagnostics.
    pub path: String,
    /// Cargo package name, e.g. `empower-sim`.
    pub crate_name: String,
    /// True for `lib.rs` and `main.rs`/`src/bin/*.rs` roots (D006 scope).
    pub is_crate_root: bool,
    /// True for binary targets (`src/bin/**`, `main.rs`) — CLI surfaces may
    /// fail fast, so D005 does not apply.
    pub is_bin: bool,
    /// True for test/example scaffolding (`tests/**`, `examples/**`):
    /// only the ambient-config rule (D011) and pragma hygiene (P001)
    /// apply there — scaffolding may thread, lock, and panic freely, but
    /// it must not read undeclared `EMPOWER_*` knobs, because those are
    /// exactly the env vars CI and the docs have to know about.
    pub is_scaffold: bool,
}

/// Crates whose whole purpose is wall-clock measurement: D002 exempt.
const WALL_CLOCK_CRATES: [&str; 1] = ["empower-bench"];

/// Crates exempt from the no-panic rule: the bench harness aborts on
/// malformed sweeps by design, and the testbed binaries are figure
/// reproduction scripts, not servable library surface.
const PANIC_EXEMPT_CRATES: [&str; 1] = ["empower-bench"];

/// Crates on the per-event / per-packet fast path: a lock there
/// serializes exactly the code the perf gates budget, so D010 demands an
/// in-source justification.
const HOT_PATH_CRATES: [&str; 3] = ["empower-sim", "empower-datapath", "empower-cc"];

/// Atomic read-modify-write methods D008 inspects for `Relaxed`. Plain
/// `load`/`store` are absent on purpose: relaxed reads of a counter are
/// fine, it is the *update* side that turns scheduling order into state.
const RMW_METHODS: [&str; 12] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];

/// Lints `src` as the file described by `ctx`, building a throwaway
/// one-file index first (so sanction pragmas inside `src` still apply,
/// and their P001s are reported). Fixture tests and single-file callers
/// use this; the workspace walker builds one shared index and calls
/// [`lint_source_indexed`] instead.
pub fn lint_source(ctx: &FileContext, src: &str) -> Vec<Violation> {
    let mut index = WorkspaceIndex::default();
    let mut out = index.add_file(ctx, src);
    out.extend(lint_source_indexed(ctx, src, &index));
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Phase 2 of the workspace analysis: lints one file against the
/// already-built [`WorkspaceIndex`] (sanctioned idioms, env registry).
pub fn lint_source_indexed(ctx: &FileContext, src: &str, index: &WorkspaceIndex) -> Vec<Violation> {
    let lexed = lex(src);
    let imports = collect_imports(&lexed);
    let mut out = Vec::new();
    let pragmas = collect_pragmas(ctx, &lexed, &mut out);
    let test_lines = test_line_spans(&lexed);
    let in_test = |line: u32| test_lines.iter().any(|&(a, b)| line >= a && line <= b);
    // D007 resolves several idents per use site (`mpsc::channel` hits on
    // both segments); report each line once.
    let mut d007_lines: BTreeSet<u32> = BTreeSet::new();

    let mut push = |rule: Rule, line: u32, message: String| {
        if pragmas.suppresses(rule, line) || index.sanction_covers(&ctx.path, rule, line) {
            return;
        }
        out.push(Violation { rule, file: ctx.path.clone(), line, message });
    };

    // Test/example scaffolding: only ambient-config hygiene applies.
    if ctx.is_scaffold {
        lint_env_reads(ctx, &lexed, &imports, index, &mut push);
        out.sort_by_key(|a| (a.line, a.rule));
        return out;
    }

    // --- Token-stream rules -------------------------------------------
    for i in 0..lexed.tokens.len() {
        let line = lexed.tokens[i].line;
        let TokKind::Ident(ident) = &lexed.tokens[i].kind else { continue };
        if in_test(line) {
            continue;
        }
        match ident.as_str() {
            // D001 — any appearance of a hash container in non-test code.
            // Iteration-site detection would need type inference; banning
            // the type forces either an ordered container or a pragma that
            // documents why iteration order cannot escape.
            "HashMap" | "HashSet" => push(
                Rule::D001,
                line,
                format!(
                    "`{ident}` in deterministic crate `{}` — use BTreeMap/BTreeSet (or \
                     document why iteration order cannot escape with `// empower-lint: \
                     allow(D001) — <reason>`)",
                    ctx.crate_name
                ),
            ),
            // D002 — wall-clock reads.
            "Instant" | "SystemTime" => {
                if WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
                    continue;
                }
                // `Instant` as a bare ident could be a re-export; both the
                // type and `::now` construction are equally off-limits in
                // deterministic crates, so flag the ident itself.
                push(
                    Rule::D002,
                    line,
                    format!(
                        "wall-clock `{ident}` outside the bench harness — simulated \
                         components must take time from the virtual clock"
                    ),
                );
            }
            // D003 — entropy-seeded RNG construction.
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => push(
                Rule::D003,
                line,
                format!(
                    "`{ident}` constructs an RNG from ambient entropy — derive every \
                     RNG from a seed carried by the scenario/config"
                ),
            ),
            // D004 — partial_cmp(..).unwrap()/.expect(..).
            "partial_cmp" => {
                if let Some((term_line, method)) = call_then_unwrap(&lexed, i) {
                    push(
                        Rule::D004,
                        term_line,
                        format!(
                            "`partial_cmp(..).{method}()` — use `f64::total_cmp` for \
                             deterministic, panic-free float ordering"
                        ),
                    );
                }
            }
            // D005 — panicking operators in library code.
            "unwrap" | "expect" => {
                if ctx.is_bin || PANIC_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
                    continue;
                }
                // Only method calls: `.unwrap(` / `.expect(`. This leaves
                // `unwrap_or`/`unwrap_or_else` (total) and local idents
                // alone; the lexer split means we must look at neighbors.
                let method_call = i > 0
                    && lexed.punct(i - 1, '.')
                    && lexed.punct(i + 1, '(')
                    // `.unwrap()` after `partial_cmp` is already D004;
                    // don't double-report the same token.
                    && !follows_partial_cmp(&lexed, i)
                    // `.expect(..)?` propagates an error instead of
                    // panicking — a same-named fallible method (e.g. a
                    // parser's `expect(token)`), not `Option::expect`.
                    && !call_propagates(&lexed, i);
                if method_call {
                    push(
                        Rule::D005,
                        line,
                        format!(
                            "`.{ident}()` in library crate `{}` — return the crate's \
                             error type (or justify the invariant with a pragma)",
                            ctx.crate_name
                        ),
                    );
                }
            }
            "panic" => {
                if ctx.is_bin || PANIC_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
                    continue;
                }
                if lexed.punct(i + 1, '!') {
                    push(
                        Rule::D005,
                        line,
                        format!(
                            "`panic!` in library crate `{}` — route the failure through \
                             an error type",
                            ctx.crate_name
                        ),
                    );
                }
            }
            // D009 — free-function std::thread::spawn whose JoinHandle is
            // discarded. Method spawns (`scope.spawn`) are the scoped
            // API and carry no detach risk.
            "spawn" => {
                if !lexed.punct(i + 1, '(') || (i > 0 && lexed.punct(i - 1, '.')) {
                    continue;
                }
                let (head, segs) = path_ending_at(&lexed, i);
                if canonicalize(&imports, ctx, &segs) != ["std", "thread", "spawn"] {
                    continue;
                }
                let Some(close) = matching_close(&lexed, i + 1) else { continue };
                // Detached: the call is a whole statement (`spawn(..);`
                // at statement start) or explicitly discarded
                // (`let _ = spawn(..);`). Anything that binds, chains, or
                // returns the handle keeps it joinable.
                let at_stmt_start = head == 0
                    || [';', '{', '}'].iter().any(|&p| lexed.punct(head - 1, p))
                    || (lexed.punct(head.wrapping_sub(1), '=')
                        && lexed.ident(head.wrapping_sub(2)) == Some("_"));
                if lexed.punct(close + 1, ';') && at_stmt_start {
                    push(
                        Rule::D009,
                        line,
                        "detached `thread::spawn` — the JoinHandle is dropped, so the \
                         thread outlives every determinism barrier; join it or use \
                         `thread::scope`"
                            .to_string(),
                    );
                }
            }
            // D010 — locks on the per-event/per-packet fast path.
            "Mutex" | "RwLock" if HOT_PATH_CRATES.contains(&ctx.crate_name.as_str()) => {
                push(
                    Rule::D010,
                    line,
                    format!(
                        "`{ident}` in hot-path crate `{}` — a lock serializes the \
                         code the perf gates budget; restructure, or justify with \
                         `// empower-lint: allow(D010) — <reason>`",
                        ctx.crate_name
                    ),
                );
            }
            // D007 — std::sync::mpsc in any form. Resolution, not the
            // bare word, decides: a wireless `channel` field never
            // canonicalizes into std::sync::mpsc, while an import, an
            // aliased call, or the fully qualified path always does.
            m if resolves_to_mpsc(&lexed, &imports, ctx, i, m) && d007_lines.insert(line) => {
                push(Rule::D007, line, d007_message(ident, index));
            }
            // D008 — relaxed read-modify-write: the return value reflects
            // scheduling order, which must never feed observable state.
            m if RMW_METHODS.contains(&m) => {
                if !lexed.punct(i + 1, '(') {
                    continue;
                }
                let Some(close) = matching_close(&lexed, i + 1) else { continue };
                if (i + 2..close).any(|j| lexed.ident(j) == Some("Relaxed")) {
                    let idiom = index
                        .sanctioned_idiom(Rule::D008)
                        .map(|s| format!(" (the one sanctioned use is `{}`)", s.item))
                        .unwrap_or_default();
                    push(
                        Rule::D008,
                        line,
                        format!(
                            "`{ident}(Ordering::Relaxed)` — a relaxed read-modify-write \
                             leaks scheduling order into its return value; use \
                             AcqRel/SeqCst or the sanctioned work-cursor idiom{idiom}"
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // --- D007(b): completion-order merges inside spawned closures -----
    // `lock().push(..)` (or insert/extend) inside any `spawn(..)` call
    // argument appends results in whatever order workers finish.
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        let is_spawn = lexed.ident(i) == Some("spawn") && lexed.punct(i + 1, '(');
        if !is_spawn || in_test(lexed.tokens[i].line) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(&lexed, i + 1) else { break };
        let locks =
            (i + 2..close).any(|j| lexed.ident(j) == Some("lock") && lexed.punct(j + 1, '('));
        let merge = (i + 2..close).find(|&j| {
            matches!(lexed.ident(j), Some("push" | "insert" | "extend"))
                && lexed.punct(j.wrapping_sub(1), '.')
                && lexed.punct(j + 1, '(')
        });
        if locks {
            if let Some(j) = merge {
                push(Rule::D007, lexed.tokens[j].line, d007_merge_message(index));
            }
        }
        i = close + 1;
    }

    // --- D011: ambient config must be declared ------------------------
    lint_env_reads(ctx, &lexed, &imports, index, &mut push);

    // --- D006: crate roots must forbid unsafe code --------------------
    if ctx.is_crate_root && !has_forbid_unsafe(&lexed) && !pragmas.suppresses(Rule::D006, 1) {
        out.push(Violation {
            rule: Rule::D006,
            file: ctx.path.clone(),
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// True when the ident at token `i` canonicalizes into `std::sync::mpsc`
/// through the file's import map (D007's resolution test). The cheap
/// checks run first: an ident can only reach mpsc if it is imported, is
/// `mpsc` itself, or sits in a `::` path.
fn resolves_to_mpsc(
    lexed: &Lexed,
    imports: &std::collections::BTreeMap<String, Vec<String>>,
    ctx: &FileContext,
    i: usize,
    ident: &str,
) -> bool {
    let qualified = i >= 2 && lexed.punct(i - 1, ':') && lexed.punct(i - 2, ':');
    if ident != "mpsc" && !qualified && !imports.contains_key(ident) {
        return false;
    }
    let (_, segs) = path_ending_at(lexed, i);
    let canon = canonicalize(imports, ctx, &segs);
    canon.len() >= 3 && canon[0] == "std" && canon[1] == "sync" && canon[2] == "mpsc"
}

fn d007_message(ident: &str, index: &WorkspaceIndex) -> String {
    format!(
        "`{ident}` resolves into std::sync::mpsc — channel receive order is worker \
         completion order, which breaks byte-identical manifests{}",
        sanctioned_hint(index)
    )
}

fn d007_merge_message(index: &WorkspaceIndex) -> String {
    format!(
        "worker results merged in completion order (`lock()` + push/insert/extend \
         inside `spawn`) — write into index-addressed slots instead{}",
        sanctioned_hint(index)
    )
}

/// Names the blessed merge idiom in D007 diagnostics, resolved from the
/// index (never from a hard-coded filename).
fn sanctioned_hint(index: &WorkspaceIndex) -> String {
    index
        .sanctioned_idiom(Rule::D007)
        .map(|s| format!("; the sanctioned merge idiom is `{}`", s.item))
        .unwrap_or_default()
}

/// D011: every resolved `std::env::var`/`var_os` read of an `EMPOWER_*`
/// knob must be declared in `crates/lint/env_registry.toml`; non-literal
/// names cannot be checked and are rejected outright. Deliberately not
/// test-gated — tests are precisely where ad-hoc knobs sneak in.
fn lint_env_reads(
    ctx: &FileContext,
    lexed: &Lexed,
    imports: &std::collections::BTreeMap<String, Vec<String>>,
    index: &WorkspaceIndex,
    push: &mut impl FnMut(Rule, u32, String),
) {
    for read in env_reads(lexed, imports, ctx) {
        match read.name.as_deref() {
            Some(name) if name.starts_with("EMPOWER_") => {
                if !index.env_registered(name) {
                    push(
                        Rule::D011,
                        read.line,
                        format!(
                            "`{name}` is read here but not declared in \
                             crates/lint/env_registry.toml — register the knob (name, \
                             reader, default, purpose) so CI and the docs stay in sync"
                        ),
                    );
                }
            }
            Some(_) => {}
            None => push(
                Rule::D011,
                read.line,
                "ambient config read with a non-literal name — EMPOWER_* knobs must be \
                 read by literal name so the registry check can see them"
                    .to_string(),
            ),
        }
    }
}

/// Index of the `)` matching the `(` at token index `open`.
pub(crate) fn matching_close(lexed: &Lexed, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < lexed.tokens.len() {
        match &lexed.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// True when the `.unwrap`/`.expect` at ident index `i` closes a
/// `partial_cmp(...)` call (so D004 owns the diagnostic).
fn follows_partial_cmp(lexed: &Lexed, i: usize) -> bool {
    // Walk back over `)` ... `(` to the ident that owns the call.
    if i < 2 || !lexed.punct(i - 2, ')') {
        return false;
    }
    let mut depth = 0usize;
    let mut j = i - 2;
    loop {
        match &lexed.tokens[j].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    return j >= 1 && lexed.ident(j - 1) == Some("partial_cmp");
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
}

/// True when the call starting at ident index `i` (with `(` at `i + 1`) is
/// immediately followed by `?` — error propagation, not a panic site.
fn call_propagates(lexed: &Lexed, i: usize) -> bool {
    if !lexed.punct(i + 1, '(') {
        return false;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < lexed.tokens.len() {
        match &lexed.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return lexed.punct(j + 1, '?');
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// If ident index `i` starts a call `ident(...)` whose value is immediately
/// `.unwrap()`d or `.expect(..)`ed, returns the line of the terminal method
/// and its name.
fn call_then_unwrap(lexed: &Lexed, i: usize) -> Option<(u32, &'static str)> {
    if !lexed.punct(i + 1, '(') {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < lexed.tokens.len() {
        match &lexed.tokens[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j + 2 >= lexed.tokens.len() || !lexed.punct(j + 1, '.') {
        return None;
    }
    match lexed.ident(j + 2) {
        Some("unwrap") if lexed.punct(j + 3, '(') => Some((lexed.tokens[j + 2].line, "unwrap")),
        Some("expect") if lexed.punct(j + 3, '(') => Some((lexed.tokens[j + 2].line, "expect")),
        _ => None,
    }
}

/// True if the token stream contains the inner attribute
/// `#![forbid(unsafe_code)]` (possibly alongside other forbids).
fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    for i in 0..lexed.tokens.len() {
        if lexed.punct(i, '#')
            && lexed.punct(i + 1, '!')
            && lexed.punct(i + 2, '[')
            && lexed.ident(i + 3) == Some("forbid")
        {
            // Scan the attribute body for `unsafe_code`.
            let mut j = i + 4;
            while j < lexed.tokens.len() && !lexed.punct(j, ']') {
                if lexed.ident(j) == Some("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

/// Line spans (inclusive) of test-only items: any item annotated
/// `#[cfg(test)]`, `#[test]`, or `#[bench]`, including the whole body of a
/// `#[cfg(test)] mod tests { ... }`.
fn test_line_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !(lexed.punct(i, '#') && lexed.punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's identifiers up to the matching `]`.
        let start_line = toks[i].line;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                TokKind::Ident(s) => idents.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr =
            (idents.contains(&"test") || idents.contains(&"bench")) && !idents.contains(&"not");
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while lexed.punct(j, '#') && lexed.punct(j + 1, '[') {
            let mut d = 1usize;
            j += 2;
            while j < toks.len() && d > 0 {
                match &toks[j].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // The item body: first `{` at depth 0 (fn/mod/impl/struct), or a
        // `;` first for `use`/unit items.
        let mut body_depth = 0usize;
        let mut end_line = start_line;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct(';') if body_depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                TokKind::Punct('{') => body_depth += 1,
                TokKind::Punct('}') => {
                    body_depth -= 1;
                    if body_depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

/// Parsed suppression pragmas for one file.
#[derive(Debug, Default)]
struct Pragmas {
    /// (rule, first line, last line): the inclusive line range a pragma
    /// suppresses — its own line through the first line after the comment
    /// block it opens (so a pragma whose explanation wraps onto further
    /// `//` lines still covers the code beneath).
    line_allows: Vec<(Rule, u32, u32)>,
    /// Whole-file allowances.
    file_allows: Vec<Rule>,
}

impl Pragmas {
    fn suppresses(&self, rule: Rule, line: u32) -> bool {
        self.file_allows.contains(&rule)
            || self.line_allows.iter().any(|&(r, lo, hi)| r == rule && lo <= line && line <= hi)
    }
}

/// The pragma grammar, kept deliberately rigid so suppressions stay
/// greppable and always carry a reason:
///
/// ```text
/// // empower-lint: allow(D001) — iteration order never escapes: keys only
/// // empower-lint: allow-file(D002, D003) — bench-only helper module
/// ```
///
/// A pragma on its own line covers the comment block it opens plus the
/// first line after it (so explanations may wrap onto further comment
/// lines); a trailing pragma covers its own line. The em-dash may be
/// written `—`, `--`, or `-`.
fn collect_pragmas(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Violation>) -> Pragmas {
    let mut pragmas = Pragmas::default();
    for c in &lexed.comments {
        let Some(rest) = pragma_body(&c.text) else { continue };
        let rest = rest.trim_start();
        // `sanction(..)` pragmas are item-level and validated while the
        // phase-1 index is built (index.rs), not here.
        if rest.starts_with("sanction") {
            continue;
        }
        let mut bad = |msg: String| {
            out.push(Violation {
                rule: Rule::P001,
                file: ctx.path.clone(),
                line: c.line,
                message: msg,
            });
        };
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            bad(format!(
                "unrecognized pragma `{}` (expected `allow(..)`, `allow-file(..)`, or \
                 `sanction(..)`)",
                rest.trim()
            ));
            continue;
        };
        let parsed = match parse_rule_list_and_reason(rest) {
            Ok(p) => p,
            Err(msgs) => {
                for m in msgs {
                    bad(m);
                }
                continue;
            }
        };
        // Extend coverage through contiguous comment lines, so a pragma
        // whose reason wraps still reaches the code line beneath it.
        let end = crate::index::comment_block_end(lexed, c.line);
        for r in parsed.rules {
            if file_wide {
                pragmas.file_allows.push(r);
            } else {
                pragmas.line_allows.push((r, c.line, end + 1));
            }
        }
    }
    pragmas
}

/// The payload of a pragma comment, or `None` if the comment is not a
/// pragma. The tag must *open* the comment (after the `//`/`//!`/`/*`
/// markers and doc-prose bullets), so documentation that merely quotes
/// the syntax in backticks is not mistaken for a real pragma.
pub(crate) fn pragma_body(text: &str) -> Option<&str> {
    const TAG: &str = "empower-lint:";
    text.trim_start_matches(|ch: char| matches!(ch, '/' | '!' | '*') || ch.is_whitespace())
        .strip_prefix(TAG)
}

/// A parsed pragma body: the rule list and the mandatory reason.
pub(crate) struct ParsedPragma {
    pub rules: Vec<Rule>,
    pub reason: String,
}

/// Parses the `(Dxxx, ..) — <reason>` tail shared by every pragma form
/// (`allow`, `allow-file`, `sanction`). Returns every problem found, so a
/// pragma with an unknown rule *and* a missing reason reports both.
pub(crate) fn parse_rule_list_and_reason(body: &str) -> Result<ParsedPragma, Vec<String>> {
    let body = body.trim_start();
    let Some(close) = body.find(')') else {
        return Err(vec!["pragma rule list is not closed with `)`".to_string()]);
    };
    let Some(list) = body.strip_prefix('(').map(|r| &r[..close - 1]) else {
        return Err(vec!["pragma is missing its `(rule, ..)` list".to_string()]);
    };
    let mut errors = Vec::new();
    let mut rules = Vec::new();
    for part in list.split(',') {
        match Rule::parse(part.trim()) {
            Some(r) => rules.push(r),
            None => errors.push(format!("unknown rule `{}` in pragma", part.trim())),
        }
    }
    // The reason is mandatory: a separator dash plus non-empty text.
    let after = body[close + 1..].trim_start();
    let reason =
        ["—", "--", "-"].iter().find_map(|d| after.strip_prefix(d)).map(str::trim).unwrap_or("");
    if reason.is_empty() {
        errors.push("pragma carries no reason — write `… — <why this site is sound>`".to_string());
    }
    if errors.is_empty() {
        Ok(ParsedPragma { rules, reason: reason.to_string() })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileContext {
        FileContext {
            path: "crates/x/src/lib.rs".into(),
            crate_name: "empower-x".into(),
            is_crate_root: false,
            is_bin: false,
            is_scaffold: false,
        }
    }

    fn rules_of(src: &str) -> Vec<Rule> {
        lint_source(&ctx(), src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hash_containers_are_flagged_outside_tests() {
        assert_eq!(rules_of("use std::collections::HashMap;\n"), vec![Rule::D001]);
        assert!(rules_of("#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n").is_empty());
    }

    #[test]
    fn pragma_suppresses_line_and_next() {
        let src = "// empower-lint: allow(D001) — probe-order only, never iterated\n\
                   use std::collections::HashMap;\n";
        assert!(rules_of(src).is_empty());
        let trailing =
            "use std::collections::HashMap; // empower-lint: allow(D001) — not iterated\n";
        assert!(rules_of(trailing).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_itself_a_violation() {
        let src = "// empower-lint: allow(D001)\nuse std::collections::HashMap;\n";
        let got = rules_of(src);
        assert!(got.contains(&Rule::P001));
        assert!(got.contains(&Rule::D001), "a reasonless pragma must not suppress");
    }

    #[test]
    fn partial_cmp_unwrap_is_d004_not_d005() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n";
        assert_eq!(rules_of(src), vec![Rule::D004]);
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b).expect(\"finite\"); }\n";
        assert_eq!(rules_of(src), vec![Rule::D004]);
    }

    #[test]
    fn defining_partial_cmp_is_fine() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> \
                   { self.v.partial_cmp(&o.v) } }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        assert!(rules_of("fn f(x: Option<u32>) -> u32 { x.unwrap_or(1) }\n").is_empty());
        assert_eq!(rules_of("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n"), vec![Rule::D005]);
    }

    #[test]
    fn propagated_expect_is_not_flagged() {
        // A fallible same-named method (e.g. a parser's `expect(token)`)
        // whose error is propagated with `?` is not a panic site.
        assert!(
            rules_of("fn f(p: &mut P) -> Result<(), E> { p.expect(b'[')?; Ok(()) }\n").is_empty()
        );
        assert_eq!(
            rules_of("fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n"),
            vec![Rule::D005]
        );
    }

    #[test]
    fn pragma_reason_may_wrap_onto_following_comment_lines() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // empower-lint: allow(D005) — a reason that wraps\n\
                   // onto a second comment line before the code.\n\
                   x.unwrap()\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn wall_clock_and_entropy() {
        assert_eq!(rules_of("fn f() { let t = Instant::now(); }\n"), vec![Rule::D002]);
        assert_eq!(rules_of("fn f() { let r = thread_rng(); }\n"), vec![Rule::D003]);
        let bench = FileContext { crate_name: "empower-bench".into(), ..ctx() };
        assert!(lint_source(&bench, "fn f() { let t = Instant::now(); }\n").is_empty());
    }

    #[test]
    fn crate_roots_need_forbid_unsafe() {
        let root = FileContext { is_crate_root: true, ..ctx() };
        let got = lint_source(&root, "pub fn f() {}\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, Rule::D006);
        assert!(lint_source(&root, "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn bins_may_panic_but_not_use_hash_containers() {
        let bin = FileContext { is_bin: true, ..ctx() };
        let src = "fn main() { let x: Option<u32> = None; x.unwrap(); }\n";
        assert!(lint_source(&bin, src).is_empty());
        assert_eq!(lint_source(&bin, "use std::collections::HashSet;\n")[0].rule, Rule::D001);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_of(src), vec![Rule::D005]);
    }

    #[test]
    fn mpsc_fires_only_through_resolution() {
        // A wireless channel field or a local fn named `channel` never
        // resolves into std::sync::mpsc.
        assert!(rules_of("fn f(l: &Link) -> u8 { l.channel }\n").is_empty());
        assert!(rules_of("fn channel(w: u8) -> u8 { w }\n").is_empty());
        // The import, the aliased call, and the qualified form all do.
        assert_eq!(rules_of("use std::sync::mpsc;\n"), vec![Rule::D007]);
        let aliased = "use std::sync::mpsc::channel as chan;\n\
                       fn f() { let (tx, rx) = chan(); }\n";
        assert_eq!(rules_of(aliased), vec![Rule::D007, Rule::D007]);
        assert_eq!(
            rules_of("fn f() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); }\n"),
            vec![Rule::D007]
        );
    }

    #[test]
    fn completion_order_merge_inside_spawn_is_d007() {
        let src = "fn f(s: &Scope, out: &Mutex<Vec<u32>>) {\n\
                   s.spawn(|| {\n\
                   if let Ok(mut m) = out.lock() { m.push(1); }\n\
                   });\n}\n";
        let got = lint_source(&ctx(), src);
        assert_eq!(got.iter().map(|v| v.rule).collect::<Vec<_>>(), vec![Rule::D007]);
        assert_eq!(got[0].line, 3);
        // Index-addressed writes under the same lock are the sanctioned
        // shape: no push/insert/extend, no violation.
        let indexed = "fn f(s: &Scope, slots: &[Mutex<Option<u32>>]) {\n\
                       s.spawn(|| {\n\
                       if let Ok(mut slot) = slots[0].lock() { *slot = Some(1); }\n\
                       });\n}\n";
        assert!(rules_of(indexed).is_empty());
    }

    #[test]
    fn relaxed_rmw_is_d008_but_loads_are_not() {
        let src = "fn f(c: &AtomicUsize) -> usize { c.fetch_add(1, Ordering::Relaxed) }\n";
        assert_eq!(rules_of(src), vec![Rule::D008]);
        assert!(
            rules_of("fn f(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) }\n").is_empty()
        );
        assert!(rules_of("fn f(c: &AtomicUsize) -> usize { c.fetch_add(1, Ordering::AcqRel) }\n")
            .is_empty());
        // `Vec::swap` shares a name with the atomic RMW; no `Relaxed`
        // argument, no violation.
        assert!(rules_of("fn f(v: &mut Vec<u32>) { v.swap(0, 1); }\n").is_empty());
    }

    #[test]
    fn sanction_pragma_exempts_the_marked_item_only() {
        let src = "/// empower-lint: sanction(D008) — the cursor only distributes indices.\n\
                   pub fn cursor(c: &AtomicUsize) -> usize {\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n\
                   pub fn stray(c: &AtomicUsize) -> usize {\n\
                   c.fetch_add(1, Ordering::Relaxed)\n\
                   }\n";
        let got = lint_source(&ctx(), src);
        assert_eq!(got.len(), 1, "only the unsanctioned fn fires: {got:?}");
        assert_eq!((got[0].rule, got[0].line), (Rule::D008, 6));
    }

    #[test]
    fn detached_spawn_is_d009_bound_and_scoped_are_not() {
        assert_eq!(
            rules_of("use std::thread;\nfn f() { thread::spawn(|| ()); }\n"),
            vec![Rule::D009]
        );
        assert_eq!(rules_of("fn f() { let _ = std::thread::spawn(|| ()); }\n"), vec![Rule::D009]);
        let joined = "use std::thread;\n\
                      fn f() { let h = thread::spawn(|| ()); let _r = h.join(); }\n";
        assert!(rules_of(joined).is_empty());
        assert!(rules_of("fn f() { std::thread::spawn(|| ()).join().ok(); }\n").is_empty());
        assert!(rules_of("fn f(s: &Scope) { s.spawn(|| ()); }\n").is_empty());
        // A local `spawn` that does not resolve to std::thread is fine.
        assert!(rules_of("fn spawn_all() { spawn(1); }\nfn spawn(n: u32) {}\n").is_empty());
    }

    #[test]
    fn locks_fire_only_in_hot_path_crates() {
        let src = "use std::sync::Mutex;\nstruct S { m: Mutex<u32> }\n";
        assert!(rules_of(src).is_empty(), "empower-x is not hot-path");
        let hot = FileContext { crate_name: "empower-sim".into(), ..ctx() };
        let got = lint_source(&hot, src);
        assert_eq!(got.iter().map(|v| v.rule).collect::<Vec<_>>(), vec![Rule::D010, Rule::D010]);
        let allowed = "// empower-lint: allow(D010) — config-time only, never per event\n\
                       use std::sync::Mutex;\n";
        assert!(lint_source(&hot, allowed).is_empty());
    }

    #[test]
    fn env_reads_need_registration_even_in_tests() {
        let src = "#[test]\nfn t() { std::env::var(\"EMPOWER_MYSTERY\").ok(); }\n";
        assert_eq!(rules_of(src), vec![Rule::D011]);
        // Registered knobs pass; non-EMPOWER vars are out of scope.
        let mut index = WorkspaceIndex::default();
        index.set_env_registry(["EMPOWER_MYSTERY".to_string()]);
        assert!(lint_source_indexed(&ctx(), src, &index).is_empty());
        assert!(rules_of("fn f() { std::env::var(\"PATH\").ok(); }\n").is_empty());
        // Non-literal names defeat the registry check: rejected outright.
        assert_eq!(rules_of("fn f(n: &str) { std::env::var(n).ok(); }\n"), vec![Rule::D011]);
    }

    #[test]
    fn scaffold_files_get_only_ambient_config_rules() {
        let scaffold = FileContext { is_scaffold: true, ..ctx() };
        let src = "use std::sync::mpsc;\n\
                   fn t(x: Option<u32>) -> u32 {\n\
                   std::thread::spawn(|| ());\n\
                   std::env::var(\"EMPOWER_MYSTERY\").ok();\n\
                   x.unwrap()\n}\n";
        let got = lint_source(&scaffold, src);
        assert_eq!(got.iter().map(|v| v.rule).collect::<Vec<_>>(), vec![Rule::D011]);
    }
}
