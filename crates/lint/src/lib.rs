#![forbid(unsafe_code)]
//! # empower-lint
//!
//! The workspace's determinism & invariant static-analysis gate.
//!
//! The EMPoWER stack promises that seed-identical runs produce
//! byte-identical telemetry manifests (ci.sh compares two runs of the same
//! scenario). That promise is only as strong as the code conventions
//! backing it, so this crate machine-checks them. It walks every `.rs`
//! file of the workspace with a self-contained lexer (the build is
//! dependency-free by design — no `syn`), builds a lightweight
//! module/`use`-resolution index over all crates (phase 1), then enforces
//! eleven domain lints with that cross-file context (phase 2):
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | D001 | `HashMap`/`HashSet` in deterministic, non-test code |
//! | D002 | wall-clock time (`Instant::now`, `SystemTime`) outside bench |
//! | D003 | RNG construction from ambient entropy (`thread_rng`, …) |
//! | D004 | float ordering via `partial_cmp().unwrap()` |
//! | D005 | `unwrap()`/`expect()`/`panic!` in library non-test code |
//! | D006 | missing `#![forbid(unsafe_code)]` in a crate root |
//! | D007 | unordered cross-thread result collection (mpsc, completion-order merges) |
//! | D008 | `Ordering::Relaxed` read-modify-write outside the sanctioned work cursor |
//! | D009 | detached `thread::spawn` (JoinHandle dropped, not joined/scoped) |
//! | D010 | `Mutex`/`RwLock` in a hot-path crate without justification |
//! | D011 | `EMPOWER_*` env read not declared in `crates/lint/env_registry.toml` |
//!
//! Intentional exceptions are documented in place:
//!
//! ```text
//! // empower-lint: allow(D001) — keys-only lookup table, never iterated
//! ```
//!
//! and the concurrency rules additionally honour item-level sanctions —
//! `/// empower-lint: sanction(D007, D008) — <why>` marks the one blessed
//! implementation of an otherwise-forbidden pattern, which diagnostics
//! then point at *by resolved path*, never by filename. A pragma without
//! a reason is itself an error (P001). Grandfathered violations live in a
//! `--baseline` ratchet file whose counts may only decrease. See
//! DESIGN.md §7 (determinism rules) and §12 (concurrency rules).
//!
//! ## Usage
//!
//! ```text
//! cargo run -p empower-lint                       # lint, exit 1 on findings
//! cargo run -p empower-lint -- --json             # SARIF-style output
//! cargo run -p empower-lint -- --sarif out.sarif  # text + artifact file
//! cargo run -p empower-lint -- --baseline crates/lint/baseline.lint
//! cargo run -p empower-lint -- --env-table        # registry → markdown
//! ```
//!
//! The library surface ([`lint_source`], [`lint_workspace`]) is what the
//! fixture tests and the binary share.

mod baseline;
mod env_registry;
mod index;
mod lexer;
mod report;
mod rules;
mod walk;

pub use baseline::Baseline;
pub use env_registry::{parse as parse_env_registry, EnvKnob, EnvRegistry, Reader};
pub use index::{EnvReadSite, PubItem, Sanction, WorkspaceIndex, SANCTIONABLE};
pub use lexer::{lex, Lexed, TokKind, Token};
pub use report::Report;
pub use rules::{lint_source, lint_source_indexed, FileContext, Rule, Violation, ALL_RULES};
pub use walk::{
    collect_contexts, lint_workspace, load_registry, workspace_env_reads, WalkError,
    ENV_REGISTRY_PATH,
};
