#![forbid(unsafe_code)]
//! # empower-lint
//!
//! The workspace's determinism & invariant static-analysis gate.
//!
//! The EMPoWER stack promises that seed-identical runs produce
//! byte-identical telemetry manifests (ci.sh compares two runs of the same
//! scenario). That promise is only as strong as the code conventions
//! backing it, so this crate machine-checks them. It walks every `.rs`
//! file of the workspace with a self-contained lexer (the build is
//! dependency-free by design — no `syn`) and enforces six domain lints:
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | D001 | `HashMap`/`HashSet` in deterministic, non-test code |
//! | D002 | wall-clock time (`Instant::now`, `SystemTime`) outside bench |
//! | D003 | RNG construction from ambient entropy (`thread_rng`, …) |
//! | D004 | float ordering via `partial_cmp().unwrap()` |
//! | D005 | `unwrap()`/`expect()`/`panic!` in library non-test code |
//! | D006 | missing `#![forbid(unsafe_code)]` in a crate root |
//!
//! Intentional exceptions are documented in place:
//!
//! ```text
//! // empower-lint: allow(D001) — keys-only lookup table, never iterated
//! ```
//!
//! A pragma without a reason is itself an error (P001). See DESIGN.md §7
//! for each rule's rationale and the suppression policy.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p empower-lint            # lint the workspace, exit 1 on findings
//! cargo run -p empower-lint -- --json  # machine-readable output
//! ```
//!
//! The library surface ([`lint_source`], [`lint_workspace`]) is what the
//! fixture tests and the binary share.

mod lexer;
mod report;
mod rules;
mod walk;

pub use lexer::{lex, Lexed, TokKind, Token};
pub use report::Report;
pub use rules::{lint_source, FileContext, Rule, Violation, ALL_RULES};
pub use walk::{lint_workspace, WalkError};
