#![forbid(unsafe_code)]
//! `empower-lint` — the workspace determinism & invariant gate.
//!
//! ```text
//! empower-lint [--json] [ROOT]
//! ```
//!
//! Lints every workspace `.rs` file under `ROOT` (default: the current
//! directory, or its nearest ancestor containing `crates/`). Exit codes:
//! 0 = clean, 1 = violations found, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use empower_lint::lint_workspace;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: empower-lint [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("empower-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("empower-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The nearest ancestor of the current directory that contains `crates/`
/// (so `cargo run -p empower-lint` works from anywhere in the repo).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
