#![forbid(unsafe_code)]
//! `empower-lint` — the workspace determinism & invariant gate.
//!
//! ```text
//! empower-lint [--json] [--sarif PATH] [--baseline PATH] [--env-table] [ROOT]
//! ```
//!
//! Lints every workspace `.rs` file under `ROOT` (default: the current
//! directory, or its nearest ancestor containing `crates/`).
//!
//! * `--json` — print the SARIF-style document to stdout instead of text;
//! * `--sarif PATH` — additionally write the SARIF document to `PATH`
//!   (the CI artifact), keeping text on stdout;
//! * `--baseline PATH` — apply the ratchet file: grandfathered violations
//!   within their per-(file, rule) allowance don't fail, and when a
//!   passing run needs less than the file grants, the file is rewritten
//!   tighter;
//! * `--env-table` — print the `EMPOWER_*` knob registry as the markdown
//!   table EXPERIMENTS.md embeds, then exit.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use empower_lint::{lint_workspace, load_registry, Baseline};

fn main() -> ExitCode {
    let mut json = false;
    let mut env_table = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--env-table" => env_table = true,
            "--sarif" => match args.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => return usage_error("--sarif needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: empower-lint [--json] [--sarif PATH] [--baseline PATH] \
                     [--env-table] [ROOT]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag `{other}` (try --help)"));
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);

    if env_table {
        return match load_registry(&root) {
            Ok(registry) => {
                print!("{}", registry.render_markdown_table());
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e.to_string()),
        };
    }

    let mut report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => return io_error(&e.to_string()),
    };

    if let Some(path) = &baseline_path {
        // A missing baseline file means an empty baseline (new gates
        // start at zero); it is only ever written when it tightens.
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => return io_error(&format!("{}: {e}", path.display())),
        };
        let tightened = baseline.apply(&mut report);
        if report.ok() && tightened != baseline {
            if let Err(e) = std::fs::write(path, tightened.render()) {
                return io_error(&format!("{}: cannot rewrite baseline: {e}", path.display()));
            }
            eprintln!("empower-lint: baseline tightened: {}", path.display());
        }
    }

    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            return io_error(&format!("{}: cannot write SARIF artifact: {e}", path.display()));
        }
    }
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("empower-lint: {msg}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("empower-lint: {msg}");
    ExitCode::from(2)
}

/// The nearest ancestor of the current directory that contains `crates/`
/// (so `cargo run -p empower-lint` works from anywhere in the repo).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
