//! The workspace walker: finds every lintable `.rs` file, classifies it
//! (crate name, crate root, binary target, test/example scaffolding), and
//! runs the two-phase analysis — phase 1 builds the [`WorkspaceIndex`]
//! (pub items, sanctioned idioms, env registry) over every file, phase 2
//! lints each file with that cross-file context.
//!
//! Scope policy:
//!
//! * `src/` files get the full rule set (D001–D011);
//! * `tests/`, `examples/` directories are *scaffold* scope — only the
//!   ambient-config rule (D011) and pragma hygiene (P001) apply, because
//!   undeclared `EMPOWER_*` knobs hide in test gates first;
//! * `benches/` directories and the lint's own `fixtures/` corpus are
//!   never visited;
//! * `target/`, hidden directories — build artifacts.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::env_registry::{self, EnvRegistry};
use crate::index::WorkspaceIndex;
use crate::report::Report;
use crate::rules::{lint_source_indexed, FileContext};

/// Why the walk itself (not the lint) failed.
#[derive(Debug)]
pub enum WalkError {
    /// The root does not look like the workspace (no `crates/` directory).
    NotAWorkspace(PathBuf),
    /// Filesystem error while walking or reading.
    Io(PathBuf, io::Error),
    /// The ambient-config registry is missing or malformed — D011 cannot
    /// run without it, and a silently-skipped rule is worse than a hard
    /// stop.
    Registry(PathBuf, String),
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NotAWorkspace(p) => {
                write!(f, "{} does not contain a `crates/` directory", p.display())
            }
            WalkError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            WalkError::Registry(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for WalkError {}

/// Directory names that are never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "benches", "fixtures"];

/// Repo-relative path of the ambient-config registry D011 enforces.
pub const ENV_REGISTRY_PATH: &str = "crates/lint/env_registry.toml";

/// Lints the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Files are visited in sorted path order, so the
/// report itself is deterministic.
pub fn lint_workspace(root: &Path) -> Result<Report, WalkError> {
    let contexts = collect_contexts(root)?;
    let registry = load_registry(root)?;

    // Phase 1: index every file (pub items, sanction pragmas), install
    // the env registry. Malformed sanction pragmas surface as P001 here.
    let mut index = WorkspaceIndex::default();
    index.set_env_registry(registry.names());
    let mut report = Report::default();
    let mut sources = Vec::with_capacity(contexts.len());
    for ctx in &contexts {
        let src = fs::read_to_string(root.join(&ctx.path))
            .map_err(|e| WalkError::Io(root.join(&ctx.path), e))?;
        report.violations.extend(index.add_file(ctx, &src));
        sources.push(src);
    }

    // Phase 2: lint each file against the finished index.
    for (ctx, src) in contexts.iter().zip(&sources) {
        report.violations.extend(lint_source_indexed(ctx, src, &index));
        report.files_scanned += 1;
    }
    report.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Every resolved `std::env::var`/`var_os` read site in the workspace's
/// Rust code, as `(repo-relative file, site)`. The registry round-trip
/// test uses this to prove every declared rust-read knob is actually
/// read somewhere (the converse — every read is declared — is D011).
pub fn workspace_env_reads(root: &Path) -> Result<Vec<(String, crate::EnvReadSite)>, WalkError> {
    let contexts = collect_contexts(root)?;
    let mut out = Vec::new();
    for ctx in &contexts {
        let src = fs::read_to_string(root.join(&ctx.path))
            .map_err(|e| WalkError::Io(root.join(&ctx.path), e))?;
        let lexed = crate::lexer::lex(&src);
        let imports = crate::index::collect_imports(&lexed);
        for site in crate::index::env_reads(&lexed, &imports, ctx) {
            out.push((ctx.path.clone(), site));
        }
    }
    Ok(out)
}

/// Loads and validates the ambient-config registry.
pub fn load_registry(root: &Path) -> Result<EnvRegistry, WalkError> {
    let path = root.join(ENV_REGISTRY_PATH);
    let text = fs::read_to_string(&path).map_err(|e| {
        WalkError::Registry(path.clone(), format!("cannot read the env registry: {e}"))
    })?;
    env_registry::parse(&text).map_err(|e| WalkError::Registry(path, e))
}

/// Collects every lintable file of the workspace, classified and in
/// sorted path order.
pub fn collect_contexts(root: &Path) -> Result<Vec<FileContext>, WalkError> {
    if !root.join("crates").is_dir() {
        return Err(WalkError::NotAWorkspace(root.to_path_buf()));
    }
    let mut contexts: Vec<FileContext> = Vec::new();
    let mut add_package = |dir: &Path, crate_name: &str| -> Result<(), WalkError> {
        for (sub, scaffold) in [("src", false), ("tests", true), ("examples", true)] {
            let mut files = Vec::new();
            collect_rs(&dir.join(sub), &mut files)?;
            contexts.extend(files.iter().map(|f| classify(f, root, crate_name, scaffold)));
        }
        Ok(())
    };
    for dir in read_dir_sorted(&root.join("crates"))?.into_iter().filter(|p| p.is_dir()) {
        let crate_name = format!(
            "empower-{}",
            dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
        );
        add_package(&dir, &crate_name)?;
    }
    // The workspace root package (`empower-repro`).
    add_package(root, "empower-repro")?;

    contexts.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(contexts)
}

/// Builds the [`FileContext`] for one file. Crate roots are `src/lib.rs`
/// and every binary root (`src/main.rs`, `src/bin/*.rs`) — each is the root
/// of its own compilation unit, so D006 applies to all of them.
fn classify(file: &Path, root: &Path, crate_name: &str, is_scaffold: bool) -> FileContext {
    let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
    let is_bin = !is_scaffold && (rel.contains("src/bin/") || rel.ends_with("src/main.rs"));
    let is_crate_root = is_bin || (!is_scaffold && rel.ends_with("src/lib.rs"));
    FileContext {
        path: rel,
        crate_name: crate_name.to_string(),
        is_crate_root,
        is_bin,
        is_scaffold,
    }
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, WalkError> {
    let rd = fs::read_dir(dir).map_err(|e| WalkError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| WalkError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`] and
/// hidden directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WalkError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_roots_bins_and_scaffold() {
        let root = Path::new("/repo");
        let lib = classify(Path::new("/repo/crates/sim/src/lib.rs"), root, "empower-sim", false);
        assert!(lib.is_crate_root && !lib.is_bin && !lib.is_scaffold);
        assert_eq!(lib.path, "crates/sim/src/lib.rs");
        let module =
            classify(Path::new("/repo/crates/sim/src/engine.rs"), root, "empower-sim", false);
        assert!(!module.is_crate_root && !module.is_bin);
        let bin = classify(Path::new("/repo/src/bin/empower.rs"), root, "empower-repro", false);
        assert!(bin.is_crate_root && bin.is_bin);
        let test =
            classify(Path::new("/repo/crates/sim/tests/equivalence.rs"), root, "empower-sim", true);
        assert!(test.is_scaffold && !test.is_crate_root && !test.is_bin);
    }

    #[test]
    fn missing_workspace_is_reported() {
        let err = lint_workspace(Path::new("/definitely/not/here")).unwrap_err();
        assert!(matches!(err, WalkError::NotAWorkspace(_)));
    }
}
