//! The workspace walker: finds every lintable `.rs` file, classifies it
//! (crate name, crate root, binary target), and runs the rules.
//!
//! Scope policy — what is *not* linted, and why:
//!
//! * `tests/`, `benches/` directories — test scaffolding may use hash
//!   containers and unwrap freely (same as `#[cfg(test)]` modules);
//! * `fixtures/` directories — the lint's own violating fixture corpus;
//! * `target/`, hidden directories — build artifacts.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::report::Report;
use crate::rules::{lint_source, FileContext};

/// Why the walk itself (not the lint) failed.
#[derive(Debug)]
pub enum WalkError {
    /// The root does not look like the workspace (no `crates/` directory).
    NotAWorkspace(PathBuf),
    /// Filesystem error while walking or reading.
    Io(PathBuf, io::Error),
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NotAWorkspace(p) => {
                write!(f, "{} does not contain a `crates/` directory", p.display())
            }
            WalkError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for WalkError {}

/// Directory names that are never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "tests", "benches", "fixtures"];

/// Lints the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`). Files are visited in sorted path order, so the
/// report itself is deterministic.
pub fn lint_workspace(root: &Path) -> Result<Report, WalkError> {
    if !root.join("crates").is_dir() {
        return Err(WalkError::NotAWorkspace(root.to_path_buf()));
    }
    let mut contexts: Vec<FileContext> = Vec::new();
    for dir in read_dir_sorted(&root.join("crates"))?.into_iter().filter(|p| p.is_dir()) {
        let crate_name = format!(
            "empower-{}",
            dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
        );
        let mut files = Vec::new();
        collect_rs(&dir.join("src"), &mut files)?;
        contexts.extend(files.iter().map(|f| classify(f, root, &crate_name)));
    }
    // The workspace root package (`empower-repro`).
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    contexts.extend(files.iter().map(|f| classify(f, root, "empower-repro")));

    contexts.sort_by(|a, b| a.path.cmp(&b.path));
    let mut report = Report::default();
    for ctx in contexts {
        let src = fs::read_to_string(root.join(&ctx.path))
            .map_err(|e| WalkError::Io(root.join(&ctx.path), e))?;
        report.violations.extend(lint_source(&ctx, &src));
        report.files_scanned += 1;
    }
    report.violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Builds the [`FileContext`] for one file. Crate roots are `src/lib.rs`
/// and every binary root (`src/main.rs`, `src/bin/*.rs`) — each is the root
/// of its own compilation unit, so D006 applies to all of them.
fn classify(file: &Path, root: &Path, crate_name: &str) -> FileContext {
    let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
    let is_bin = rel.contains("src/bin/") || rel.ends_with("src/main.rs");
    let is_crate_root = is_bin || rel.ends_with("src/lib.rs");
    FileContext { path: rel, crate_name: crate_name.to_string(), is_crate_root, is_bin }
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, WalkError> {
    let rd = fs::read_dir(dir).map_err(|e| WalkError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| WalkError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`] and
/// hidden directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WalkError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_roots_and_bins() {
        let root = Path::new("/repo");
        let lib = classify(Path::new("/repo/crates/sim/src/lib.rs"), root, "empower-sim");
        assert!(lib.is_crate_root && !lib.is_bin);
        assert_eq!(lib.path, "crates/sim/src/lib.rs");
        let module = classify(Path::new("/repo/crates/sim/src/engine.rs"), root, "empower-sim");
        assert!(!module.is_crate_root && !module.is_bin);
        let bin = classify(Path::new("/repo/src/bin/empower.rs"), root, "empower-repro");
        assert!(bin.is_crate_root && bin.is_bin);
    }

    #[test]
    fn missing_workspace_is_reported() {
        let err = lint_workspace(Path::new("/definitely/not/here")).unwrap_err();
        assert!(matches!(err, WalkError::NotAWorkspace(_)));
    }
}
