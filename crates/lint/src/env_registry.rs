//! The ambient-config registry: `crates/lint/env_registry.toml` declares
//! every `EMPOWER_*` environment variable the repo reads, in Rust or in
//! `ci.sh`. Rule D011 fails any read of an undeclared knob, and the
//! `--env-table` flag renders the registry as the markdown table
//! EXPERIMENTS.md embeds — one source of truth for code, CI, and docs.
//!
//! The format is a deliberately tiny TOML subset (`schema = 1`, then
//! `[[knob]]` blocks of `key = "value"` lines), parsed here with no
//! dependency so the lint stays buildable first in a cold workspace.

use std::fmt;

/// Who reads a knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reader {
    /// Read via `std::env` in Rust code (D011 checks these sites).
    Rust,
    /// Expanded by `ci.sh` (the registry round-trip test checks these).
    Shell,
    /// Read in both places.
    Both,
}

impl fmt::Display for Reader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Reader::Rust => "Rust",
            Reader::Shell => "ci.sh",
            Reader::Both => "Rust + ci.sh",
        })
    }
}

/// One declared knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnob {
    /// The variable name, e.g. `EMPOWER_EQUIV_TOPOLOGIES`.
    pub name: String,
    pub reader: Reader,
    /// Human-readable default (empty = unset by default).
    pub default: String,
    /// One-line purpose, rendered into the docs table.
    pub purpose: String,
}

/// The parsed, validated registry.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EnvRegistry {
    pub knobs: Vec<EnvKnob>,
}

impl EnvRegistry {
    /// All declared names, for the D011 membership check.
    pub fn names(&self) -> impl Iterator<Item = String> + '_ {
        self.knobs.iter().map(|k| k.name.clone())
    }

    /// The knob entry for `name`, if declared.
    pub fn get(&self, name: &str) -> Option<&EnvKnob> {
        self.knobs.iter().find(|k| k.name == name)
    }

    /// Renders the registry as the markdown table EXPERIMENTS.md embeds.
    pub fn render_markdown_table(&self) -> String {
        let mut out = String::from("| knob | read by | default | purpose |\n|---|---|---|---|\n");
        for k in &self.knobs {
            let default =
                if k.default.is_empty() { "unset".to_string() } else { k.default.clone() };
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                k.name, k.reader, default, k.purpose
            ));
        }
        out
    }
}

/// Parses and validates registry text. Errors carry the 1-based line.
pub fn parse(text: &str) -> Result<EnvRegistry, String> {
    let mut knobs: Vec<EnvKnob> = Vec::new();
    let mut current: Option<(u32, PartialKnob)> = None;
    let mut saw_schema = false;

    fn finish(cur: Option<(u32, PartialKnob)>, knobs: &mut Vec<EnvKnob>) -> Result<(), String> {
        if let Some((at, p)) = cur {
            knobs.push(p.finish(at)?);
        }
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[knob]]" {
            finish(current.take(), &mut knobs)?;
            current = Some((lineno, PartialKnob::default()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`, got `{line}`"));
        };
        let (key, value) = (key.trim(), value.trim());
        if key == "schema" {
            if value != "1" {
                return Err(format!("line {lineno}: unsupported schema `{value}` (expected 1)"));
            }
            saw_schema = true;
            continue;
        }
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("line {lineno}: value of `{key}` must be double-quoted"));
        };
        let Some((_, knob)) = current.as_mut() else {
            return Err(format!("line {lineno}: `{key}` appears before any [[knob]] block"));
        };
        let slot = match key {
            "name" => &mut knob.name,
            "reader" => &mut knob.reader,
            "default" => &mut knob.default,
            "purpose" => &mut knob.purpose,
            _ => return Err(format!("line {lineno}: unknown key `{key}`")),
        };
        if slot.is_some() {
            return Err(format!("line {lineno}: duplicate key `{key}`"));
        }
        *slot = Some(value.to_string());
    }
    finish(current.take(), &mut knobs)?;

    if !saw_schema {
        return Err("registry must declare `schema = 1`".to_string());
    }
    for pair in knobs.windows(2) {
        if pair[0].name >= pair[1].name {
            return Err(format!(
                "knobs must be unique and sorted by name: `{}` then `{}`",
                pair[0].name, pair[1].name
            ));
        }
    }
    Ok(EnvRegistry { knobs })
}

#[derive(Default)]
struct PartialKnob {
    name: Option<String>,
    reader: Option<String>,
    default: Option<String>,
    purpose: Option<String>,
}

impl PartialKnob {
    fn finish(self, at: u32) -> Result<EnvKnob, String> {
        let req = |field: Option<String>, key: &str| {
            field.ok_or_else(|| format!("knob at line {at}: missing required key `{key}`"))
        };
        let name = req(self.name, "name")?;
        if !name.starts_with("EMPOWER_") {
            return Err(format!("knob at line {at}: `{name}` must start with EMPOWER_"));
        }
        let reader = match req(self.reader, "reader")?.as_str() {
            "rust" => Reader::Rust,
            "shell" => Reader::Shell,
            "both" => Reader::Both,
            other => {
                return Err(format!(
                    "knob at line {at}: reader `{other}` must be rust, shell, or both"
                ))
            }
        };
        Ok(EnvKnob {
            name,
            reader,
            default: req(self.default, "default")?,
            purpose: req(self.purpose, "purpose")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "schema = 1\n\n\
        # comment\n\
        [[knob]]\n\
        name = \"EMPOWER_A\"\n\
        reader = \"rust\"\n\
        default = \"50\"\n\
        purpose = \"topology sweep width\"\n\n\
        [[knob]]\n\
        name = \"EMPOWER_B\"\n\
        reader = \"shell\"\n\
        default = \"\"\n\
        purpose = \"skip gate\"\n";

    #[test]
    fn round_trips_a_valid_registry() {
        let reg = parse(GOOD).expect("valid registry");
        assert_eq!(reg.knobs.len(), 2);
        assert_eq!(reg.knobs[0].name, "EMPOWER_A");
        assert_eq!(reg.knobs[0].reader, Reader::Rust);
        assert!(reg.get("EMPOWER_B").is_some());
        assert!(reg.get("EMPOWER_C").is_none());
        let table = reg.render_markdown_table();
        assert!(table.contains("| `EMPOWER_A` | Rust | 50 | topology sweep width |"));
        assert!(table.contains("| `EMPOWER_B` | ci.sh | unset | skip gate |"));
    }

    #[test]
    fn rejects_malformed_registries() {
        assert!(parse("").unwrap_err().contains("schema"));
        assert!(parse(GOOD.replace("EMPOWER_B", "EMPOWER_0").as_str())
            .unwrap_err()
            .contains("sorted"));
        assert!(parse(GOOD.replace("\"rust\"", "\"python\"").as_str())
            .unwrap_err()
            .contains("reader"));
        let unprefixed = GOOD.replace("EMPOWER_A", "OTHER_A");
        assert!(parse(&unprefixed).unwrap_err().contains("EMPOWER_"));
        let missing = GOOD.replace("purpose = \"topology sweep width\"\n", "");
        assert!(parse(&missing).unwrap_err().contains("purpose"));
        let dup = format!("{GOOD}name = \"EMPOWER_X\"\n");
        assert!(parse(&dup).unwrap_err().contains("duplicate"));
    }
}
